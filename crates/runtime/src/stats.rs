//! Lightweight concurrent server statistics: flow counts and a
//! log-scaled latency histogram, cheap enough to stay on in production
//! (the benchmark harness reads throughput and latency from here).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets: bucket `i` holds samples in
/// `[2^i, 2^(i+1))` microseconds; bucket 0 holds `< 2 µs`.
const BUCKETS: usize = 40;

/// Concurrent latency histogram with power-of-two microsecond buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, d: Duration) {
        let ns = d.as_nanos() as u64;
        let us = (ns / 1_000).max(1);
        let bucket = (63 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency, or zero when empty.
    pub fn mean(&self) -> Duration {
        let c = self.count();
        if c == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.total_ns.load(Ordering::Relaxed) / c)
    }

    /// Largest sample seen.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns.load(Ordering::Relaxed))
    }

    /// Approximate quantile (`q` in `[0, 1]`) from bucket boundaries:
    /// returns the upper edge of the bucket containing the quantile.
    pub fn quantile(&self, q: f64) -> Duration {
        let c = self.count();
        if c == 0 {
            return Duration::ZERO;
        }
        let target = ((c as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Duration::from_micros(1u64 << (i + 1));
            }
        }
        self.max()
    }
}

/// Per-shard counters for the sharded event-driven runtime: queue depth
/// (current and high-water), executed events, and work-stealing traffic.
#[derive(Debug, Default)]
pub struct ShardStat {
    /// Events currently queued on this shard.
    pub depth: AtomicU64,
    /// High-water mark of `depth`.
    pub max_depth: AtomicU64,
    /// Events this shard dequeued from its own queue.
    pub executed: AtomicU64,
    /// Steals this shard performed: each takes the oldest event from a
    /// sibling's queue for immediate execution (plus a bulk transfer
    /// counted in [`ShardStat::stolen_batch`]).
    pub stolen: AtomicU64,
    /// Extra events bulk-transferred onto this shard's own queue by
    /// steal batching — thieves take half the victim's queue per steal
    /// instead of one event, cutting lock traffic under heavy skew.
    /// These events are later counted in `executed` when dequeued.
    pub stolen_batch: AtomicU64,
    /// Events routed to this shard because of session affinity (the
    /// cursor carried a session id).
    pub affine: AtomicU64,
    /// Batched appends this shard received (`route_home_batch` groups a
    /// source's burst by home shard; each group lands under one queue
    /// lock and at most one wake-up).
    pub batches: AtomicU64,
    /// Events delivered through those batched appends. `batch_events /
    /// batches` is the mean batch size — the amortization factor of the
    /// per-event lock+notify cost.
    pub batch_events: AtomicU64,
}

impl ShardStat {
    pub(crate) fn enqueue(&self, new_depth: u64) {
        self.depth.store(new_depth, Ordering::Relaxed);
        self.max_depth.fetch_max(new_depth, Ordering::Relaxed);
    }
}

/// Read-only view of the network driver's counters (accept retries and
/// reactor write-path traffic), published next to the shard counters.
///
/// The runtime crate has no dependency on the net crate, so the server
/// glue (`flux-servers`) installs an adapter over the driver's counter
/// block via [`ServerStats::install_net`].
pub trait NetCounters: Send + Sync + std::fmt::Debug {
    /// Transient accept errors survived by the acceptor's retry loop.
    fn accept_retries(&self) -> u64;
    /// Writes handed to the driver's non-blocking submit path.
    fn writes_submitted(&self) -> u64;
    /// Writes fully drained (synchronously or by the reactor's POLLOUT
    /// path).
    fn writes_drained(&self) -> u64;
    /// Times a write hit `WouldBlock` and was left to the reactor.
    fn write_would_block(&self) -> u64;
    /// Writes that failed (connection removed).
    fn writes_failed(&self) -> u64;
}

/// Thread-pinning state of the most recent sharded event-runtime run,
/// recorded so benchmark artifacts can report whether a measurement ran
/// with core affinity (`BENCH_hot_path.json` stores it per point).
#[derive(Debug, Default)]
pub struct PinningStat {
    /// Pinning was attempted (multi-core host, `FLUX_PIN` not `0`).
    pub enabled: std::sync::atomic::AtomicBool,
    /// Hardware threads observed at start.
    pub host_cores: AtomicU64,
    /// Dispatcher shards that successfully pinned themselves.
    pub pinned_threads: AtomicU64,
}

impl PinningStat {
    /// One-line summary for logs and bench records.
    pub fn describe(&self) -> String {
        let cores = self.host_cores.load(Ordering::Relaxed);
        if !self.enabled.load(Ordering::Relaxed) {
            return format!("unpinned ({cores} core(s))");
        }
        format!(
            "pinned {} shard(s) across {} core(s)",
            self.pinned_threads.load(Ordering::Relaxed),
            cores
        )
    }
}

/// Counters for every way a flow can finish, plus latency.
#[derive(Debug, Default)]
pub struct ServerStats {
    pub started: AtomicU64,
    pub completed: AtomicU64,
    pub errored: AtomicU64,
    pub handled: AtomicU64,
    pub nomatch: AtomicU64,
    pub latency: LatencyHistogram,
    /// Core-affinity state of the most recent sharded event-runtime
    /// run (see [`PinningStat`]); all-zero under other runtimes.
    pub pinning: PinningStat,
    /// Installed by the sharded event-driven runtime at start; `None`
    /// under the other runtimes. Every `start` installs a fresh block
    /// sized to its own shard count, so restarting the same server with
    /// a different count never reads a stale (or too-small) block.
    shards: parking_lot::Mutex<Option<std::sync::Arc<[ShardStat]>>>,
    /// Installed by servers that drive a network `ConnDriver`; `None`
    /// for purely computational servers.
    net: parking_lot::Mutex<Option<std::sync::Arc<dyn NetCounters>>>,
}

impl ServerStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a finished flow.
    pub fn record_end(&self, outcome: flux_core::EndKind, latency: Duration) {
        match outcome {
            flux_core::EndKind::Completed => &self.completed,
            flux_core::EndKind::Errored { .. } => &self.errored,
            flux_core::EndKind::Handled { .. } => &self.handled,
            flux_core::EndKind::NoMatch { .. } => &self.nomatch,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.latency.record(latency);
    }

    /// Publishes the per-shard counter block of the run being started,
    /// replacing any block from a previous run of this server.
    pub(crate) fn install_shards(&self, block: std::sync::Arc<[ShardStat]>) {
        *self.shards.lock() = Some(block);
    }

    /// Per-shard counters of the most recent sharded event-runtime run.
    pub fn shard_stats(&self) -> Option<std::sync::Arc<[ShardStat]>> {
        self.shards.lock().clone()
    }

    /// Publishes the network driver's counter view (server glue).
    pub fn install_net(&self, counters: std::sync::Arc<dyn NetCounters>) {
        *self.net.lock() = Some(counters);
    }

    /// The network driver's counters, when a server installed them.
    pub fn net_counters(&self) -> Option<std::sync::Arc<dyn NetCounters>> {
        self.net.lock().clone()
    }

    /// Total events moved by work stealing across all shards: the
    /// directly-executed steals plus the events bulk-transferred by
    /// steal batching.
    pub fn total_steals(&self) -> u64 {
        self.shard_stats()
            .map(|s| {
                s.iter()
                    .map(|st| {
                        st.stolen.load(Ordering::Relaxed) + st.stolen_batch.load(Ordering::Relaxed)
                    })
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Total finished flows.
    pub fn finished(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
            + self.errored.load(Ordering::Relaxed)
            + self.handled.load(Ordering::Relaxed)
            + self.nomatch.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_mean_and_max() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(100));
        h.record(Duration::from_micros(300));
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean(), Duration::from_micros(200));
        assert_eq!(h.max(), Duration::from_micros(300));
    }

    #[test]
    fn histogram_quantiles_bracket() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(10));
        }
        h.record(Duration::from_millis(10));
        let p50 = h.quantile(0.5);
        assert!(p50 <= Duration::from_micros(16), "p50 {p50:?}");
        let p999 = h.quantile(0.999);
        assert!(p999 >= Duration::from_millis(8), "p99.9 {p999:?}");
    }

    #[test]
    fn stats_outcomes_routed() {
        let s = ServerStats::new();
        s.record_end(flux_core::EndKind::Completed, Duration::from_micros(5));
        s.record_end(
            flux_core::EndKind::Errored { node: 0 },
            Duration::from_micros(5),
        );
        s.record_end(
            flux_core::EndKind::Handled {
                node: 0,
                handler: 1,
            },
            Duration::from_micros(5),
        );
        assert_eq!(s.completed.load(Ordering::Relaxed), 1);
        assert_eq!(s.errored.load(Ordering::Relaxed), 1);
        assert_eq!(s.handled.load(Ordering::Relaxed), 1);
        assert_eq!(s.finished(), 3);
    }

    #[test]
    fn zero_duration_sample() {
        let h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), Duration::ZERO);
    }
}
