//! Lightweight concurrent server statistics: flow counts and a
//! log-scaled latency histogram, cheap enough to stay on in production
//! (the benchmark harness reads throughput and latency from here).

use crate::ring::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets: bucket `i` holds samples in
/// `[2^i, 2^(i+1))` microseconds; bucket 0 holds `< 2 µs`.
const BUCKETS: usize = 40;

/// Concurrent latency histogram with power-of-two microsecond buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, d: Duration) {
        let ns = d.as_nanos() as u64;
        let us = (ns / 1_000).max(1);
        let bucket = (63 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency, or zero when empty.
    pub fn mean(&self) -> Duration {
        let c = self.count();
        if c == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.total_ns.load(Ordering::Relaxed) / c)
    }

    /// Largest sample seen.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns.load(Ordering::Relaxed))
    }

    /// Approximate quantile (`q` in `[0, 1]`) from bucket boundaries:
    /// returns the upper edge of the bucket containing the quantile.
    pub fn quantile(&self, q: f64) -> Duration {
        let c = self.count();
        if c == 0 {
            return Duration::ZERO;
        }
        let target = ((c as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Duration::from_micros(1u64 << (i + 1));
            }
        }
        self.max()
    }
}

/// Per-shard counters for the sharded event-driven runtime: queue depth
/// (current and high-water), executed events, work-stealing traffic and
/// adaptive-controller forwarding.
///
/// The hottest counters — `executed` (written by the owning dispatcher
/// per event), `stolen` (written by thieves) and `batch_events`
/// (written by submitters) — are each padded to their own cache line
/// ([`CachePadded`]): they are incremented from *different* threads on
/// the per-event path, and sharing a line would turn every increment
/// into cross-core invalidation traffic. `CachePadded` derefs to the
/// atomic, so readers are unchanged.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct ShardStat {
    /// Events currently queued on this shard.
    pub depth: AtomicU64,
    /// High-water mark of `depth`.
    pub max_depth: AtomicU64,
    /// Events this shard dequeued from its own queue. Under
    /// [`crate::runtimes::ShardQueueKind::Ring`] this counts every
    /// event the dispatcher popped from its local run buffer — own-ring
    /// pops, overflow-sidecar drains *and* stolen events it went on to
    /// execute (the ring has no per-event "own vs stolen" dequeue
    /// boundary, so `executed` there is "events this dispatcher ran").
    pub executed: CachePadded<AtomicU64>,
    /// Steals this shard performed: each takes the oldest event from a
    /// sibling's queue for immediate execution (plus a bulk transfer
    /// counted in [`ShardStat::stolen_batch`]).
    pub stolen: CachePadded<AtomicU64>,
    /// Extra events bulk-transferred onto this shard's own queue by
    /// steal batching — thieves take half the victim's queue per steal
    /// instead of one event, cutting lock traffic under heavy skew.
    /// These events are later counted in `executed` when dequeued.
    pub stolen_batch: AtomicU64,
    /// Events routed to this shard because of session affinity (the
    /// cursor carried a session id).
    pub affine: AtomicU64,
    /// Batched appends this shard received (`route_home_batch` groups a
    /// source's burst by home shard; each group lands under one queue
    /// lock and at most one wake-up).
    pub batches: AtomicU64,
    /// Events delivered through those batched appends. `batch_events /
    /// batches` is the mean batch size — the amortization factor of the
    /// per-event lock+notify cost.
    pub batch_events: CachePadded<AtomicU64>,
    /// Successful ring slot-claim CASes this shard's queue performed
    /// (`ring_claims / batch_events` inverts to the events-per-CAS
    /// amortization factor). Zero under
    /// [`crate::runtimes::ShardQueueKind::Mutex`].
    pub ring_claims: AtomicU64,
    /// Events that missed the ring (full, or the sidecar was already
    /// non-empty) and went through the mutexed overflow sidecar. Zero
    /// under [`crate::runtimes::ShardQueueKind::Mutex`].
    pub overflowed: AtomicU64,
    /// Events this shard re-routed to an active sibling while it was
    /// deactivated by the adaptive controller: the drain that must
    /// complete before a park commits, plus any straggler enqueued by a
    /// racing submitter that had already computed the old routing
    /// prefix. Zero under [`crate::runtimes::AdaptivePolicy::Static`].
    pub forwarded: AtomicU64,
    /// Node executions performed inside fused segments on this shard
    /// (see `flux_core::fuse`): a queue turn that runs a 3-node fused
    /// chain adds 3 here but only 1 to [`ShardStat::executed`], so
    /// dashboards can tell a fused workload — few turns, many nodes —
    /// from a genuinely idle one. Zero under `FusionMode::Off`.
    pub fused_execs: AtomicU64,
    /// Pinned events (`NodeRegistry::session_pinned`) this shard
    /// declined to execute and forwarded to their session's home shard
    /// instead — the enforcement counter of topic-keyed affinity under
    /// work stealing and adaptive prefix resizes. Zero when no source
    /// pins its sessions.
    pub pinned_rerouted: AtomicU64,
    /// Source-batch events refused because this shard's queue stood at
    /// the configured depth cap (see
    /// [`crate::runtimes::OverloadPolicy::Bounded`]): every one was
    /// counted here and handed to the registry's shed handler *before*
    /// entering any queue — never silently dropped mid-graph. Zero
    /// under [`crate::runtimes::OverloadPolicy::Unbounded`].
    pub shed: AtomicU64,
}

impl ShardStat {
    /// Records a post-enqueue depth observation: gauge plus high-water
    /// mark. Mutex-kind callers invoke this while still holding the
    /// shard's queue lock, which serializes the gauge store with the
    /// dispatcher's own stores — the final store after a drain is
    /// therefore always the dispatcher's `0`.
    pub(crate) fn enqueue(&self, new_depth: u64) {
        self.depth.store(new_depth, Ordering::Relaxed);
        self.max_depth.fetch_max(new_depth, Ordering::Relaxed);
    }

    /// Producer-side depth observation for the ring kind: high-water
    /// mark only. There is no lock to serialize gauge stores on a ring
    /// shard, so the `depth` gauge is single-writer — only the owning
    /// dispatcher stores it — and a slow producer can never overwrite
    /// the dispatcher's final `0` with a stale snapshot.
    pub(crate) fn observe_depth(&self, new_depth: u64) {
        self.max_depth.fetch_max(new_depth, Ordering::Relaxed);
    }
}

/// Read-only view of the network driver's counters (accept retries and
/// reactor write-path traffic), published next to the shard counters.
///
/// The runtime crate has no dependency on the net crate, so the server
/// glue (`flux-servers`) installs an adapter over the driver's counter
/// block via [`ServerStats::install_net`].
pub trait NetCounters: Send + Sync + std::fmt::Debug {
    /// Transient accept errors survived by the acceptor's retry loop.
    fn accept_retries(&self) -> u64;
    /// Writes handed to the driver's non-blocking submit path.
    fn writes_submitted(&self) -> u64;
    /// Writes fully drained (synchronously or by the reactor's POLLOUT
    /// path).
    fn writes_drained(&self) -> u64;
    /// Times a write hit `WouldBlock` and was left to the reactor.
    fn write_would_block(&self) -> u64;
    /// Writes that failed (connection removed).
    fn writes_failed(&self) -> u64;
    /// Refcounted fan-out payloads submitted without copying (the
    /// driver's shared-payload path). Zero for drivers predating it.
    fn writes_shared(&self) -> u64 {
        0
    }
    /// Connections evicted because a submission would overflow their
    /// output-buffer bound (slow-consumer policy).
    fn slow_consumer_evicted(&self) -> u64 {
        0
    }
    /// Connections the accept governor admitted. Zero for drivers
    /// predating overload control.
    fn accepts_admitted(&self) -> u64 {
        0
    }
    /// Accepts refused (connection cap) or delayed (rate bucket) by the
    /// accept governor. Zero for drivers predating overload control.
    fn accepts_governed(&self) -> u64 {
        0
    }
    /// Connections retired by the idle/slow-loris sweep. Zero for
    /// drivers predating overload control.
    fn idle_reaped(&self) -> u64 {
        0
    }
    /// Write submissions that queued behind bytes the peer had not yet
    /// taken — per-connection backpressure visible *before* the
    /// eviction cliff at the output-buffer cap. Zero for drivers
    /// predating overload control.
    fn writes_deferred(&self) -> u64 {
        0
    }
}

/// Overload-control state of the most recent sharded event-runtime run
/// (see [`crate::runtimes::OverloadPolicy`]): whether shard queues are
/// depth-capped, and the offered-event count the per-shard `shed`
/// counters are reconciled against. `enabled == false` (and all-zero)
/// under [`crate::runtimes::OverloadPolicy::Unbounded`] and the
/// non-event runtimes.
///
/// The conservation invariant:
/// `offered == admitted + shed`, where `shed` is the sum of
/// [`ShardStat::shed`] over the run's shard block — every source event
/// either entered a shard queue or was counted and handed to the shed
/// handler, never silently dropped.
#[derive(Debug, Default)]
pub struct OverloadStat {
    /// A bounded overload policy is in force for this server.
    pub enabled: std::sync::atomic::AtomicBool,
    /// The per-shard depth cap (0 when unbounded).
    pub depth_cap: AtomicU64,
    /// Events sources offered to the runtime (admitted + shed).
    pub offered: AtomicU64,
}

impl OverloadStat {
    /// One-line summary for logs and bench records; `shed` is the
    /// caller's per-shard rollup ([`ServerStats::total_shed`]).
    pub fn describe(&self, shed: u64) -> String {
        let offered = self.offered.load(Ordering::Relaxed);
        if !self.enabled.load(Ordering::Relaxed) {
            return "unbounded".to_string();
        }
        format!(
            "cap {}: offered {offered}, admitted {}, shed {shed}",
            self.depth_cap.load(Ordering::Relaxed),
            offered.saturating_sub(shed),
        )
    }
}

/// Thread-pinning state of the most recent sharded event-runtime run,
/// recorded so benchmark artifacts can report whether a measurement ran
/// with core affinity (`BENCH_hot_path.json` stores it per point).
#[derive(Debug, Default)]
pub struct PinningStat {
    /// Pinning was attempted (multi-core host, `FLUX_PIN` not `0`).
    pub enabled: std::sync::atomic::AtomicBool,
    /// Hardware threads observed at start.
    pub host_cores: AtomicU64,
    /// Dispatcher shards that successfully pinned themselves.
    pub pinned_threads: AtomicU64,
}

impl PinningStat {
    /// One-line summary for logs and bench records.
    pub fn describe(&self) -> String {
        let cores = self.host_cores.load(Ordering::Relaxed);
        if !self.enabled.load(Ordering::Relaxed) {
            return format!("unpinned ({cores} core(s))");
        }
        format!(
            "pinned {} shard(s) across {} core(s)",
            self.pinned_threads.load(Ordering::Relaxed),
            cores
        )
    }
}

/// State of the adaptive shard controller of the most recent sharded
/// event-runtime run: how many dispatchers are currently hot, and how
/// often the controller parked or woke one. All-zero (with
/// `enabled == false`) under [`crate::runtimes::AdaptivePolicy::Static`]
/// and the non-event runtimes, except that `configured_shards` and
/// `active_shards` still record the fixed shard count so observers can
/// read one field regardless of policy.
#[derive(Debug, Default)]
pub struct AdaptiveStat {
    /// An adaptive controller loop is (was) running for this server.
    pub enabled: std::sync::atomic::AtomicBool,
    /// Dispatcher shards the runtime was started with.
    pub configured_shards: AtomicU64,
    /// Dispatcher shards currently executing events (the routing
    /// prefix); the rest are parked. Updated by the controller after
    /// every park/wake decision.
    pub active_shards: AtomicU64,
    /// Shards the controller parked (cumulative).
    pub parks: AtomicU64,
    /// Parked shards the controller woke on load (cumulative).
    pub wakes: AtomicU64,
}

impl AdaptiveStat {
    /// One-line summary for logs and bench records.
    pub fn describe(&self) -> String {
        let active = self.active_shards.load(Ordering::Relaxed);
        let configured = self.configured_shards.load(Ordering::Relaxed);
        if !self.enabled.load(Ordering::Relaxed) {
            return format!("static ({configured} shard(s))");
        }
        format!(
            "adaptive {active}/{configured} active ({} parks, {} wakes)",
            self.parks.load(Ordering::Relaxed),
            self.wakes.load(Ordering::Relaxed),
        )
    }
}

/// One controller tick's observation of one shard: instantaneous queue
/// depth plus the per-tick deltas of the cumulative [`ShardStat`]
/// counters the controller feeds on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardSample {
    /// Queue depth at the sample instant.
    pub depth: u64,
    /// Events executed since the previous sample (own-queue dequeues
    /// plus steals — everything this shard actually ran).
    pub executed: u64,
    /// Events moved by stealing since the previous sample (the direct
    /// steal plus its bulk transfer): imbalance pressure.
    pub stolen: u64,
    /// Events that arrived through batched appends since the previous
    /// sample: burst arrival pressure.
    pub batch_events: u64,
}

/// A sliding window of per-shard load samples — the adaptive
/// controller's entire world view. Each [`ShardLoadWindow::sample`]
/// call reads the cumulative [`ShardStat`] counters, converts them to
/// per-tick deltas, and appends one tick (bounded by `cap`; the oldest
/// tick falls off). Decision helpers (`queued_now`, `idle_streak`) are
/// pure reads over the window, so the controller's policy is unit
/// testable without threads.
#[derive(Debug)]
pub struct ShardLoadWindow {
    cap: usize,
    /// Cumulative counter values at the previous sample, per shard:
    /// (executed+stolen, stolen+stolen_batch, batch_events).
    prev: Vec<(u64, u64, u64)>,
    /// Per-tick deltas, oldest first; each tick holds one sample per
    /// shard.
    ticks: std::collections::VecDeque<Vec<ShardSample>>,
}

impl ShardLoadWindow {
    /// A window over `shards` shards keeping the last `cap` ticks.
    pub fn new(shards: usize, cap: usize) -> Self {
        ShardLoadWindow {
            cap: cap.max(1),
            prev: vec![(0, 0, 0); shards],
            ticks: std::collections::VecDeque::new(),
        }
    }

    /// Reads the cumulative counters and appends one tick of per-shard
    /// deltas.
    pub fn sample(&mut self, shards: &[ShardStat]) {
        // Recycle the evicted tick's buffer once the window is full, so
        // the steady-state controller tick allocates nothing.
        let mut tick = if self.ticks.len() == self.cap {
            let mut t = self.ticks.pop_front().unwrap_or_default();
            t.clear();
            t
        } else {
            Vec::with_capacity(shards.len())
        };
        for (si, st) in shards.iter().enumerate() {
            let executed = st.executed.load(Ordering::Relaxed) + st.stolen.load(Ordering::Relaxed);
            let stolen =
                st.stolen.load(Ordering::Relaxed) + st.stolen_batch.load(Ordering::Relaxed);
            let batch_events = st.batch_events.load(Ordering::Relaxed);
            let (pe, ps, pb) = self.prev[si];
            self.prev[si] = (executed, stolen, batch_events);
            tick.push(ShardSample {
                depth: st.depth.load(Ordering::Relaxed),
                executed: executed.saturating_sub(pe),
                stolen: stolen.saturating_sub(ps),
                batch_events: batch_events.saturating_sub(pb),
            });
        }
        self.ticks.push_back(tick);
    }

    /// Ticks currently held (saturates at the window capacity).
    pub fn len(&self) -> usize {
        self.ticks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }

    /// The most recent tick's samples, one per shard.
    pub fn last(&self) -> Option<&[ShardSample]> {
        self.ticks.back().map(|t| t.as_slice())
    }

    /// Total queue depth across all shards at the most recent tick —
    /// the controller's wake signal: a burst outrunning the active
    /// dispatchers shows up as standing depth within one tick.
    pub fn queued_now(&self) -> u64 {
        self.last()
            .map(|t| t.iter().map(|s| s.depth).sum())
            .unwrap_or(0)
    }

    /// Events executed across all shards during the most recent tick.
    pub fn executed_now(&self) -> u64 {
        self.last()
            .map(|t| t.iter().map(|s| s.executed).sum())
            .unwrap_or(0)
    }

    /// Number of consecutive trailing ticks that were *idle*: zero
    /// standing queue depth and at most `park_below` executed events
    /// across all shards — the controller's park signal. A single busy
    /// tick resets the streak, so one park requires a full quiet
    /// window.
    pub fn idle_streak(&self, park_below: u64) -> usize {
        self.ticks
            .iter()
            .rev()
            .take_while(|t| {
                let depth: u64 = t.iter().map(|s| s.depth).sum();
                let executed: u64 = t.iter().map(|s| s.executed).sum();
                depth == 0 && executed <= park_below
            })
            .count()
    }

    /// Forgets all held ticks (the per-shard cumulative baselines
    /// survive). Called after a park so the next park decision demands
    /// a fresh full idle window instead of reusing the old streak.
    pub fn reset(&mut self) {
        self.ticks.clear();
    }
}

/// Fan-out counters for streaming (pub/sub) servers: one *publish* is
/// one aggregation round whose encoded result is delivered to every
/// subscriber of a topic. All-zero for request/response servers.
#[derive(Debug, Default)]
pub struct FanoutStat {
    /// Aggregation rounds whose result was fanned out (each encodes
    /// its payload exactly once).
    pub publishes: AtomicU64,
    /// Per-subscriber deliveries submitted (`deliveries / publishes`
    /// is the mean fan-out degree).
    pub deliveries: AtomicU64,
    /// Extra publish commands coalesced into an already-running
    /// aggregation flow (burst amortization: `n` back-to-back PUBs to
    /// one topic cost one flow and one fan-out, counting `n - 1` here).
    pub coalesced_publishes: AtomicU64,
}

impl FanoutStat {
    /// One-line summary for logs and bench records; empty when no
    /// publish happened (request/response servers stay clean).
    pub fn describe(&self) -> Option<String> {
        let publishes = self.publishes.load(Ordering::Relaxed);
        if publishes == 0 {
            return None;
        }
        Some(format!(
            "fan-out {} publish(es), {} deliveries, {} coalesced",
            publishes,
            self.deliveries.load(Ordering::Relaxed),
            self.coalesced_publishes.load(Ordering::Relaxed),
        ))
    }
}

/// Counters for every way a flow can finish, plus latency.
#[derive(Debug, Default)]
pub struct ServerStats {
    pub started: AtomicU64,
    pub completed: AtomicU64,
    pub errored: AtomicU64,
    pub handled: AtomicU64,
    pub nomatch: AtomicU64,
    pub latency: LatencyHistogram,
    /// Multicast fan-out counters (see [`FanoutStat`]); all-zero for
    /// request/response servers. Behind an `Arc` so streaming-server
    /// node closures (which capture their context, not the server) can
    /// share the very block `describe()` reads.
    pub fanout: std::sync::Arc<FanoutStat>,
    /// Core-affinity state of the most recent sharded event-runtime
    /// run (see [`PinningStat`]); all-zero under other runtimes.
    pub pinning: PinningStat,
    /// Adaptive shard-controller state of the most recent sharded
    /// event-runtime run (see [`AdaptiveStat`]): current active shard
    /// count plus cumulative park/wake counters.
    pub adaptive: AdaptiveStat,
    /// Overload-control state of the most recent sharded event-runtime
    /// run (see [`OverloadStat`]): depth cap plus the offered-event
    /// count the per-shard `shed` counters reconcile against.
    pub overload: OverloadStat,
    /// Installed by the sharded event-driven runtime at start; `None`
    /// under the other runtimes. Every `start` installs a fresh block
    /// sized to its own shard count, so restarting the same server with
    /// a different count never reads a stale (or too-small) block.
    shards: parking_lot::Mutex<Option<std::sync::Arc<[ShardStat]>>>,
    /// Installed by servers that drive a network `ConnDriver`; `None`
    /// for purely computational servers.
    net: parking_lot::Mutex<Option<std::sync::Arc<dyn NetCounters>>>,
}

impl ServerStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a finished flow.
    pub fn record_end(&self, outcome: flux_core::EndKind, latency: Duration) {
        match outcome {
            flux_core::EndKind::Completed => &self.completed,
            flux_core::EndKind::Errored { .. } => &self.errored,
            flux_core::EndKind::Handled { .. } => &self.handled,
            flux_core::EndKind::NoMatch { .. } => &self.nomatch,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.latency.record(latency);
    }

    /// Publishes the per-shard counter block of the run being started,
    /// replacing any block from a previous run of this server.
    pub(crate) fn install_shards(&self, block: std::sync::Arc<[ShardStat]>) {
        *self.shards.lock() = Some(block);
    }

    /// Per-shard counters of the most recent sharded event-runtime run.
    pub fn shard_stats(&self) -> Option<std::sync::Arc<[ShardStat]>> {
        self.shards.lock().clone()
    }

    /// Publishes the network driver's counter view (server glue).
    pub fn install_net(&self, counters: std::sync::Arc<dyn NetCounters>) {
        *self.net.lock() = Some(counters);
    }

    /// The network driver's counters, when a server installed them.
    pub fn net_counters(&self) -> Option<std::sync::Arc<dyn NetCounters>> {
        self.net.lock().clone()
    }

    /// Total events moved by work stealing across all shards: the
    /// directly-executed steals plus the events bulk-transferred by
    /// steal batching.
    pub fn total_steals(&self) -> u64 {
        self.shard_stats()
            .map(|s| {
                s.iter()
                    .map(|st| {
                        st.stolen.load(Ordering::Relaxed) + st.stolen_batch.load(Ordering::Relaxed)
                    })
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Total pinned events forwarded back to their session's home shard
    /// across all shards of the most recent sharded event-runtime run
    /// (see [`ShardStat::pinned_rerouted`]).
    pub fn total_pinned_rerouted(&self) -> u64 {
        self.shard_stats()
            .map(|s| {
                s.iter()
                    .map(|st| st.pinned_rerouted.load(Ordering::Relaxed))
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Total node executions performed inside fused segments across all
    /// shards of the most recent sharded event-runtime run.
    pub fn total_fused_execs(&self) -> u64 {
        self.shard_stats()
            .map(|s| {
                s.iter()
                    .map(|st| st.fused_execs.load(Ordering::Relaxed))
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Total events shed at the source boundary across all shards of
    /// the most recent sharded event-runtime run (see
    /// [`ShardStat::shed`]).
    pub fn total_shed(&self) -> u64 {
        self.shard_stats()
            .map(|s| s.iter().map(|st| st.shed.load(Ordering::Relaxed)).sum())
            .unwrap_or(0)
    }

    /// Total finished flows.
    pub fn finished(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
            + self.errored.load(Ordering::Relaxed)
            + self.handled.load(Ordering::Relaxed)
            + self.nomatch.load(Ordering::Relaxed)
    }

    /// One-line summary for logs and bench records, composing the
    /// sub-block summaries: flow outcomes, pinning, adaptive state, and
    /// — when a sharded run installed its counter block — dispatcher
    /// turn/steal/fusion totals (so a fused workload's low turn count
    /// reads as fusion, not idleness).
    pub fn describe(&self) -> String {
        let mut out = format!(
            "flows {} (completed {}, errored {}, handled {}, nomatch {}) | {} | {}",
            self.finished(),
            self.completed.load(Ordering::Relaxed),
            self.errored.load(Ordering::Relaxed),
            self.handled.load(Ordering::Relaxed),
            self.nomatch.load(Ordering::Relaxed),
            self.pinning.describe(),
            self.adaptive.describe(),
        );
        if let Some(shards) = self.shard_stats() {
            let turns: u64 = shards
                .iter()
                .map(|st| st.executed.load(Ordering::Relaxed) + st.stolen.load(Ordering::Relaxed))
                .sum();
            out.push_str(&format!(
                " | turns {turns}, stolen {}, fused execs {}",
                self.total_steals(),
                self.total_fused_execs(),
            ));
            let rerouted = self.total_pinned_rerouted();
            if rerouted > 0 {
                out.push_str(&format!(", pinned rerouted {rerouted}"));
            }
        }
        if self.overload.enabled.load(Ordering::Relaxed) {
            out.push_str(&format!(
                " | overload {}",
                self.overload.describe(self.total_shed())
            ));
        }
        if let Some(net) = self.net_counters() {
            let governed = net.accepts_governed();
            let reaped = net.idle_reaped();
            let deferred = net.writes_deferred();
            if governed > 0 || reaped > 0 || deferred > 0 {
                out.push_str(&format!(
                    " | net admitted {}, governed {governed}, reaped {reaped}, \
                     writes deferred {deferred}",
                    net.accepts_admitted(),
                ));
            }
        }
        if let Some(fanout) = self.fanout.describe() {
            out.push_str(" | ");
            out.push_str(&fanout);
            if let Some(net) = self.net_counters() {
                let evicted = net.slow_consumer_evicted();
                if evicted > 0 {
                    out.push_str(&format!(", {evicted} slow consumer(s) evicted"));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_mean_and_max() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(100));
        h.record(Duration::from_micros(300));
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean(), Duration::from_micros(200));
        assert_eq!(h.max(), Duration::from_micros(300));
    }

    #[test]
    fn histogram_quantiles_bracket() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(10));
        }
        h.record(Duration::from_millis(10));
        let p50 = h.quantile(0.5);
        assert!(p50 <= Duration::from_micros(16), "p50 {p50:?}");
        let p999 = h.quantile(0.999);
        assert!(p999 >= Duration::from_millis(8), "p99.9 {p999:?}");
    }

    #[test]
    fn stats_outcomes_routed() {
        let s = ServerStats::new();
        s.record_end(flux_core::EndKind::Completed, Duration::from_micros(5));
        s.record_end(
            flux_core::EndKind::Errored { node: 0 },
            Duration::from_micros(5),
        );
        s.record_end(
            flux_core::EndKind::Handled {
                node: 0,
                handler: 1,
            },
            Duration::from_micros(5),
        );
        assert_eq!(s.completed.load(Ordering::Relaxed), 1);
        assert_eq!(s.errored.load(Ordering::Relaxed), 1);
        assert_eq!(s.handled.load(Ordering::Relaxed), 1);
        assert_eq!(s.finished(), 3);
    }

    /// Drives a [`ShardLoadWindow`] through busy and idle ticks and
    /// checks the pure decision helpers the controller relies on.
    #[test]
    fn load_window_deltas_and_idle_streak() {
        let shards: Vec<ShardStat> = (0..2).map(|_| ShardStat::default()).collect();
        let mut w = ShardLoadWindow::new(2, 4);
        assert!(w.is_empty());
        assert_eq!(w.queued_now(), 0);
        assert_eq!(w.idle_streak(0), 0);

        // Busy tick: shard 0 executed 5 events and has 3 queued.
        shards[0].executed.store(5, Ordering::Relaxed);
        shards[0].depth.store(3, Ordering::Relaxed);
        shards[1].stolen.store(2, Ordering::Relaxed);
        shards[1].stolen_batch.store(4, Ordering::Relaxed);
        shards[1].batch_events.store(7, Ordering::Relaxed);
        w.sample(&shards);
        assert_eq!(w.len(), 1);
        assert_eq!(w.queued_now(), 3);
        assert_eq!(
            w.executed_now(),
            7,
            "executed counts own dequeues plus steals"
        );
        let last = w.last().unwrap();
        assert_eq!(last[0].executed, 5);
        assert_eq!(last[1].stolen, 6);
        assert_eq!(last[1].batch_events, 7);
        assert_eq!(w.idle_streak(0), 0, "busy tick is not idle");

        // Counters stop moving and the queue drains: idle ticks.
        shards[0].depth.store(0, Ordering::Relaxed);
        w.sample(&shards);
        w.sample(&shards);
        assert_eq!(w.idle_streak(0), 2, "deltas are per-tick, not cumulative");

        // A fresh busy tick resets the trailing streak.
        shards[0].executed.store(25, Ordering::Relaxed);
        w.sample(&shards);
        assert_eq!(w.idle_streak(0), 0);
        assert_eq!(w.executed_now(), 20);

        // The window is bounded by its capacity, and reset() clears the
        // held ticks without disturbing the delta baselines.
        w.sample(&shards);
        assert_eq!(w.len(), 4);
        w.reset();
        assert!(w.is_empty());
        w.sample(&shards);
        assert_eq!(w.executed_now(), 0, "baseline survived the reset");
        assert_eq!(w.idle_streak(0), 1);
    }

    #[test]
    fn adaptive_stat_describe() {
        let a = AdaptiveStat::default();
        a.configured_shards.store(4, Ordering::Relaxed);
        a.active_shards.store(4, Ordering::Relaxed);
        assert_eq!(a.describe(), "static (4 shard(s))");
        a.enabled.store(true, Ordering::Relaxed);
        a.active_shards.store(1, Ordering::Relaxed);
        a.parks.store(3, Ordering::Relaxed);
        assert_eq!(a.describe(), "adaptive 1/4 active (3 parks, 0 wakes)");
    }

    #[test]
    fn server_stats_describe_composes() {
        let s = ServerStats::new();
        s.record_end(flux_core::EndKind::Completed, Duration::from_micros(5));
        let d = s.describe();
        assert!(d.starts_with("flows 1 (completed 1,"), "{d}");
        assert!(d.contains("unpinned"), "{d}");
        assert!(d.contains("static"), "{d}");
        assert!(!d.contains("fused execs"), "no shard block installed: {d}");
        // Installing a shard block surfaces the fused counter.
        let shards: std::sync::Arc<[ShardStat]> = (0..2).map(|_| ShardStat::default()).collect();
        shards[0].executed.fetch_add(4, Ordering::Relaxed);
        shards[1].fused_execs.fetch_add(9, Ordering::Relaxed);
        s.install_shards(shards);
        let d = s.describe();
        assert!(d.contains("turns 4"), "{d}");
        assert!(d.contains("fused execs 9"), "{d}");
        assert_eq!(s.total_fused_execs(), 9);
    }

    #[test]
    fn zero_duration_sample() {
        let h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), Duration::ZERO);
    }
}
