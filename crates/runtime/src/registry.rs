//! The node registry: binds Flux node names to Rust implementations.
//!
//! The paper's compiler links generated dispatch code against C functions
//! by symbol name; here, user code registers closures under the node
//! names a compiled program references. There is deliberately no "Flux
//! API" the implementations must adhere to beyond the paper's UNIX
//! convention: a node receives the flow's payload and returns zero for
//! success or a non-zero error code.

use flux_core::CompiledProgram;
use std::collections::HashMap;
use std::sync::Arc;

/// What a concrete node reports back (the UNIX error-code convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeOutcome {
    /// Success: the flow continues along the success edge.
    Ok,
    /// A non-zero error code: the flow takes the error edge (handler or
    /// termination).
    Err(i32),
}

impl NodeOutcome {
    /// Maps a raw C-style return code.
    pub fn from_code(code: i32) -> Self {
        if code == 0 {
            NodeOutcome::Ok
        } else {
            NodeOutcome::Err(code)
        }
    }
}

/// What a source node produces on each iteration of its implicit loop.
pub enum SourceOutcome<P> {
    /// A new flow carrying this payload.
    New(P),
    /// Several new flows from one poll — a source that multiplexes a
    /// batched readiness stream (`flux-net`'s `next_events`) hands the
    /// whole burst over at once, and the sharded event runtime routes
    /// it to each home shard under a single queue lock and wake-up.
    Batch(Vec<P>),
    /// Nothing right now (e.g. accept timeout); loop again.
    Skip,
    /// Stop the server's source loop.
    Shutdown,
}

type NodeFn<P> = Arc<dyn Fn(&mut P) -> NodeOutcome + Send + Sync>;
type SourceFn<P> = Arc<dyn Fn() -> SourceOutcome<P> + Send + Sync>;
type PredFn<P> = Arc<dyn Fn(&P) -> bool + Send + Sync>;
type SessionFn<P> = Arc<dyn Fn(&P) -> u64 + Send + Sync>;

pub(crate) struct NodeEntry<P> {
    pub f: NodeFn<P>,
    /// True when the node may perform blocking calls; the event-driven
    /// runtime off-loads such nodes to its I/O pool (the substitute for
    /// the paper's LD_PRELOAD interception of blocking syscalls).
    pub may_block: bool,
}

impl<P> Clone for NodeEntry<P> {
    fn clone(&self) -> Self {
        NodeEntry {
            f: self.f.clone(),
            may_block: self.may_block,
        }
    }
}

/// All user-supplied implementations for one server.
pub struct NodeRegistry<P> {
    pub(crate) nodes: HashMap<String, NodeEntry<P>>,
    pub(crate) sources: HashMap<String, SourceFn<P>>,
    pub(crate) predicates: HashMap<String, PredFn<P>>,
    pub(crate) session_fns: HashMap<String, SessionFn<P>>,
    /// Sources whose session ids *pin* flows to the session's home
    /// shard (see [`NodeRegistry::session_pinned`]).
    pub(crate) pinned_sources: std::collections::HashSet<String>,
    /// Invoked with each payload the sharded runtime sheds at the
    /// source under a bounded `OverloadPolicy` (see
    /// [`NodeRegistry::on_shed`]).
    pub(crate) shed_handler: Option<Arc<dyn Fn(P) + Send + Sync>>,
}

impl<P> Default for NodeRegistry<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> NodeRegistry<P> {
    pub fn new() -> Self {
        NodeRegistry {
            nodes: HashMap::new(),
            sources: HashMap::new(),
            predicates: HashMap::new(),
            session_fns: HashMap::new(),
            pinned_sources: std::collections::HashSet::new(),
            shed_handler: None,
        }
    }

    /// Registers the shed handler: when the sharded event runtime runs
    /// under a bounded [`crate::OverloadPolicy`] and a source batch
    /// finds its destination shard queue at the depth cap, the overflow
    /// payloads are handed here (still on the source thread, *before*
    /// they enter any queue) instead of queueing doomed work. Servers
    /// use it to answer a cheap prebuilt 503/BUSY and close. Shedding
    /// only ever happens at the source boundary — never mid-graph — and
    /// every shed payload is counted; without a handler the payloads
    /// are still counted and dropped at the same boundary.
    pub fn on_shed(&mut self, f: impl Fn(P) + Send + Sync + 'static) -> &mut Self {
        self.shed_handler = Some(Arc::new(f));
        self
    }

    /// Registers a non-blocking node implementation.
    pub fn node(
        &mut self,
        name: &str,
        f: impl Fn(&mut P) -> NodeOutcome + Send + Sync + 'static,
    ) -> &mut Self {
        self.nodes.insert(
            name.to_string(),
            NodeEntry {
                f: Arc::new(f),
                may_block: false,
            },
        );
        self
    }

    /// Registers a node that may perform blocking calls (disk or network
    /// I/O). Thread runtimes treat it identically; the event runtime
    /// off-loads it so the dispatcher never stalls.
    pub fn node_blocking(
        &mut self,
        name: &str,
        f: impl Fn(&mut P) -> NodeOutcome + Send + Sync + 'static,
    ) -> &mut Self {
        self.nodes.insert(
            name.to_string(),
            NodeEntry {
                f: Arc::new(f),
                may_block: true,
            },
        );
        self
    }

    /// Registers a source node. The closure is called repeatedly from the
    /// source's implicit infinite loop.
    pub fn source(
        &mut self,
        name: &str,
        f: impl Fn() -> SourceOutcome<P> + Send + Sync + 'static,
    ) -> &mut Self {
        self.sources.insert(name.to_string(), Arc::new(f));
        self
    }

    /// Registers the boolean function behind a `typedef` predicate type.
    pub fn predicate(
        &mut self,
        name: &str,
        f: impl Fn(&P) -> bool + Send + Sync + 'static,
    ) -> &mut Self {
        self.predicates.insert(name.to_string(), Arc::new(f));
        self
    }

    /// Registers the session-id function for a source (paper §2.5.1):
    /// applied to each new flow's payload to scope `(session)`
    /// constraints.
    pub fn session(
        &mut self,
        source: &str,
        f: impl Fn(&P) -> u64 + Send + Sync + 'static,
    ) -> &mut Self {
        self.session_fns.insert(source.to_string(), Arc::new(f));
        self
    }

    /// Like [`NodeRegistry::session`], but additionally *pins* each
    /// flow to its session's home shard in the sharded event runtime:
    /// a pinned event that surfaces anywhere else — via work stealing
    /// or an adaptive shard remap — is forwarded home instead of
    /// executing there. Keyed state indexed by the session id (e.g. a
    /// pub/sub topic's aggregation window) therefore only ever runs on
    /// one dispatcher at a time and stays effectively lock-free. Other
    /// runtimes treat this exactly like [`NodeRegistry::session`].
    pub fn session_pinned(
        &mut self,
        source: &str,
        f: impl Fn(&P) -> u64 + Send + Sync + 'static,
    ) -> &mut Self {
        self.pinned_sources.insert(source.to_string());
        self.session(source, f)
    }

    pub(crate) fn node_entry(&self, name: &str) -> Option<&NodeEntry<P>> {
        self.nodes.get(name)
    }

    /// Checks that every node, source and predicate the compiled program
    /// requires has an implementation; returns the missing names.
    pub fn validate(&self, program: &CompiledProgram) -> Result<(), Vec<String>> {
        let mut missing = Vec::new();
        for flow in &program.flows {
            let src = program.graph.name(flow.flat.source);
            if !self.sources.contains_key(src) {
                missing.push(format!("source `{src}`"));
            }
            for (_, nid) in flow.flat.execs() {
                let name = program.graph.name(nid);
                if !self.nodes.contains_key(name) {
                    missing.push(format!("node `{name}`"));
                }
            }
        }
        for pred in program.required_predicates() {
            if !self.predicates.contains_key(&pred) {
                missing.push(format!("predicate `{pred}`"));
            }
        }
        missing.sort_unstable();
        missing.dedup();
        if missing.is_empty() {
            Ok(())
        } else {
            Err(missing)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct P {
        x: i32,
    }

    #[test]
    fn validate_reports_missing() {
        let program = flux_core::compile(flux_core::fixtures::MINI_PIPELINE).unwrap();
        let mut r: NodeRegistry<P> = NodeRegistry::new();
        r.node("Parse", |_| NodeOutcome::Ok);
        let missing = r.validate(&program).unwrap_err();
        assert!(missing.iter().any(|m| m.contains("source `Listen`")));
        assert!(missing.iter().any(|m| m.contains("node `Respond`")));
        assert!(missing.iter().any(|m| m.contains("predicate `IsValid`")));
        assert!(!missing.iter().any(|m| m.contains("`Parse`")));
    }

    #[test]
    fn validate_passes_when_complete() {
        let program = flux_core::compile(flux_core::fixtures::MINI_PIPELINE).unwrap();
        let mut r: NodeRegistry<P> = NodeRegistry::new();
        r.source("Listen", || SourceOutcome::New(P::default()));
        for n in ["Parse", "Respond", "Retry", "Close", "Oops"] {
            r.node(n, |_| NodeOutcome::Ok);
        }
        r.predicate("IsValid", |p: &P| p.x > 0);
        assert!(r.validate(&program).is_ok());
    }

    #[test]
    fn node_outcome_from_code() {
        assert_eq!(NodeOutcome::from_code(0), NodeOutcome::Ok);
        assert_eq!(NodeOutcome::from_code(404), NodeOutcome::Err(404));
    }

    #[test]
    fn blocking_flag_tracked() {
        let mut r: NodeRegistry<P> = NodeRegistry::new();
        r.node("A", |_| NodeOutcome::Ok);
        r.node_blocking("B", |_| NodeOutcome::Ok);
        assert!(!r.node_entry("A").unwrap().may_block);
        assert!(r.node_entry("B").unwrap().may_block);
    }
}
