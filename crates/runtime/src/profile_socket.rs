//! The profiling socket (paper §5.2).
//!
//! "A performance analyst can obtain path profiles from a running Flux
//! server by connecting to a dedicated socket." This module implements
//! the per-connection protocol over any bidirectional byte stream, so it
//! works with real TCP and the hermetic in-memory transport alike (the
//! accept loop lives beside the servers, in `flux-servers`).
//!
//! Protocol: the client sends one command line, the server answers with
//! a text report and closes.
//!
//! | command  | reply                                              |
//! |----------|----------------------------------------------------|
//! | `time`   | hot paths by total time (default for an empty line) |
//! | `count`  | hot paths by execution count                       |
//! | `mean`   | hot paths by mean per-execution time               |
//! | `stats`  | flow counters (started/completed/errored/...)      |

use crate::server::FluxServer;
use crate::HotOrder;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::sync::atomic::Ordering;

/// Maximum hot paths rendered per flow.
const REPORT_LIMIT: usize = 50;

/// Serves one profiling connection: reads a command line, writes the
/// report. Returns an error only for transport failures; unknown
/// commands get a usage message.
pub fn handle_profile_conn<P: Send + 'static, C: Read + Write>(
    server: &FluxServer<P>,
    conn: C,
) -> io::Result<()> {
    let mut reader = BufReader::new(conn);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut conn = reader.into_inner();
    let cmd = line.trim().to_ascii_lowercase();
    let reply = match cmd.as_str() {
        "" | "time" => profile_reply(server, HotOrder::ByTotalTime),
        "count" => profile_reply(server, HotOrder::ByCount),
        "mean" => profile_reply(server, HotOrder::ByMeanTime),
        "stats" => {
            let s = &server.stats;
            format!(
                "started {}\ncompleted {}\nerrored {}\nhandled {}\nnomatch {}\n\
                 mean_latency_us {}\n",
                s.started.load(Ordering::Relaxed),
                s.completed.load(Ordering::Relaxed),
                s.errored.load(Ordering::Relaxed),
                s.handled.load(Ordering::Relaxed),
                s.nomatch.load(Ordering::Relaxed),
                s.latency.mean().as_micros(),
            )
        }
        other => format!("unknown command `{other}`; try time | count | mean | stats\n"),
    };
    conn.write_all(reply.as_bytes())?;
    conn.flush()
}

fn profile_reply<P: Send + 'static>(server: &FluxServer<P>, order: HotOrder) -> String {
    match server.profiler() {
        Some(prof) => prof.render(server.program(), order, REPORT_LIMIT),
        None => "profiling is not enabled on this server\n".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{NodeOutcome, NodeRegistry, SourceOutcome};
    use crate::runtimes::{start, RuntimeKind};
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    fn run_profiled(total: u64) -> Arc<FluxServer<u64>> {
        let program = flux_core::compile(
            "Gen () => (int n); Work (int n) => (int n); Out (int n) => ();
             F = Work -> Out; source Gen => F;",
        )
        .unwrap();
        let mut reg: NodeRegistry<u64> = NodeRegistry::new();
        let produced = AtomicU64::new(0);
        reg.source("Gen", move || {
            let i = produced.fetch_add(1, Ordering::SeqCst);
            if i >= total {
                SourceOutcome::Shutdown
            } else {
                SourceOutcome::New(i)
            }
        });
        reg.node("Work", |n: &mut u64| {
            if (*n).is_multiple_of(10) {
                NodeOutcome::Err(1)
            } else {
                NodeOutcome::Ok
            }
        });
        reg.node("Out", |_| NodeOutcome::Ok);
        let server = Arc::new(FluxServer::with_profiling(program, reg).unwrap());
        start(server.clone(), RuntimeKind::ThreadPool { workers: 2 }).join();
        server
    }

    /// An in-memory duplex stream standing in for a socket.
    struct Duplex {
        input: io::Cursor<Vec<u8>>,
        output: Vec<u8>,
    }

    impl Read for Duplex {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for Duplex {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.output.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn ask(server: &FluxServer<u64>, cmd: &str) -> String {
        let mut conn = Duplex {
            input: io::Cursor::new(format!("{cmd}\n").into_bytes()),
            output: Vec::new(),
        };
        handle_profile_conn(server, &mut conn).unwrap();
        String::from_utf8(conn.output).unwrap()
    }

    #[test]
    fn count_report_lists_paths_with_counts() {
        let server = run_profiled(100);
        let reply = ask(&server, "count");
        assert!(reply.contains("flow 0 (source Gen)"), "{reply}");
        assert!(reply.contains("Gen -> Work -> Out"), "{reply}");
        assert!(
            reply.contains("90x") || reply.contains("        90"),
            "{reply}"
        );
        // The error path appears too (10 injected failures).
        assert!(reply.contains("ERROR"), "{reply}");
    }

    #[test]
    fn stats_report_counts_outcomes() {
        let server = run_profiled(100);
        let reply = ask(&server, "stats");
        assert!(reply.contains("started 100"), "{reply}");
        assert!(reply.contains("completed 90"), "{reply}");
        assert!(reply.contains("errored 10"), "{reply}");
    }

    #[test]
    fn empty_command_defaults_to_time_order() {
        let server = run_profiled(50);
        let reply = ask(&server, "");
        assert!(reply.contains("ByTotalTime"), "{reply}");
    }

    #[test]
    fn unknown_command_gets_usage() {
        let server = run_profiled(10);
        let reply = ask(&server, "bogus");
        assert!(reply.contains("unknown command"), "{reply}");
    }

    #[test]
    fn unprofiled_server_reports_disabled() {
        let program =
            flux_core::compile("Gen () => (int n); Out (int n) => (); F = Out; source Gen => F;")
                .unwrap();
        let mut reg: NodeRegistry<u64> = NodeRegistry::new();
        reg.source("Gen", || SourceOutcome::Shutdown);
        reg.node("Out", |_| NodeOutcome::Ok);
        let server = Arc::new(FluxServer::new(program, reg).unwrap());
        let reply = ask(&server, "time");
        assert!(reply.contains("not enabled"), "{reply}");
    }
}
