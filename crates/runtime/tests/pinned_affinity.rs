//! Property tests for pinned session affinity
//! ([`NodeRegistry::session_pinned`]): every event of a pinned session
//! must *execute* on the session's home shard — across bursts, work
//! stealing (a thief that claims a pinned event forwards it home
//! instead of running it) and adaptive park/wake resizes of the
//! routing prefix.
//!
//! This is the property the pub/sub server's topic-keyed windows rely
//! on: with the session key a hash of the topic, pinning makes the
//! per-topic state effectively shard-local, so its stripe lock is
//! uncontended on the steady-state path.

use flux_runtime::{
    shard_index, start, AdaptiveConfig, AdaptivePolicy, FluxServer, NodeOutcome, NodeRegistry,
    OverloadPolicy, RuntimeKind, ShardQueueKind, SourceOutcome,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SRC: &str = "
    Gen () => (int sid);
    Work (int sid) => (int sid);
    Out (int sid) => ();
    Flow = Work -> Out;
    source Gen => Flow;
    atomic Work: {state(session)};
";

/// The shard index of the dispatcher thread we are running on, parsed
/// from its `flux-shard-<n>` name; `None` off the dispatcher threads.
fn current_shard() -> Option<usize> {
    std::thread::current()
        .name()
        .and_then(|n| n.strip_prefix("flux-shard-"))
        .and_then(|n| n.parse().ok())
}

/// Builds a pinned-session server over `sessions`, producing `total`
/// spinning events in bursts of `burst`, recording every affinity
/// violation the `Work` node observes via `check`.
fn pinned_server(
    total: u64,
    burst: u64,
    sessions: Arc<Vec<u64>>,
    check: impl Fn(u64, usize) -> bool + Send + Sync + 'static,
) -> (Arc<FluxServer<u64>>, Arc<AtomicU64>) {
    let program = flux_core::compile(SRC).unwrap();
    let produced = AtomicU64::new(0);
    let mut reg: NodeRegistry<u64> = NodeRegistry::new();
    let s2 = sessions.clone();
    reg.source("Gen", move || {
        let start = produced.load(Ordering::SeqCst);
        if start >= total {
            return SourceOutcome::Shutdown;
        }
        let k = burst.min(total - start);
        produced.fetch_add(k, Ordering::SeqCst);
        let flows: Vec<u64> = (start..start + k)
            .map(|i| s2[(i % s2.len() as u64) as usize])
            .collect();
        if flows.len() == 1 {
            SourceOutcome::New(flows[0])
        } else {
            SourceOutcome::Batch(flows)
        }
    });
    reg.session_pinned("Gen", |sid: &u64| *sid);
    let violations = Arc::new(AtomicU64::new(0));
    let v2 = violations.clone();
    reg.node("Work", move |sid: &mut u64| {
        // Spin long enough that a saturated home shard builds backlog
        // and the other shards go hunting for work to steal.
        let t0 = std::time::Instant::now();
        while t0.elapsed() < Duration::from_micros(50) {
            std::hint::spin_loop();
        }
        if let Some(shard) = current_shard() {
            if !check(*sid, shard) {
                v2.fetch_add(1, Ordering::Relaxed);
            }
        }
        NodeOutcome::Ok
    });
    reg.node("Out", |_| NodeOutcome::Ok);
    (Arc::new(FluxServer::new(program, reg).unwrap()), violations)
}

/// Session ids that all hash to shard 0 under `shards` shards.
fn sessions_on_shard_zero(shards: usize, count: usize) -> Vec<u64> {
    (0u64..)
        .filter(|&k| shard_index(k, shards) == 0)
        .take(count)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Static prefix, every session homed on shard 0, enough spinning
    /// backlog that the other shards steal constantly: pinned events
    /// must still only ever *execute* on shard 0 — a thief claiming one
    /// forwards it home (visible in `pinned_rerouted`) instead of
    /// running session state off its shard.
    #[test]
    fn stealing_never_executes_pinned_events_off_home(
        session_count in 1usize..8,
        burst in 1u64..32,
        ring in any::<bool>(),
    ) {
        const SHARDS: usize = 4;
        const TOTAL: u64 = 800;
        let sessions = Arc::new(sessions_on_shard_zero(SHARDS, session_count));
        let (server, violations) =
            pinned_server(TOTAL, burst, sessions, |_, shard| shard == 0);
        let queue = if ring { ShardQueueKind::Ring } else { ShardQueueKind::Mutex };
        let handle = start(
            server.clone(),
            RuntimeKind::event_driven_sharded(SHARDS, 1).shard_queue(queue),
        );
        handle.join();
        prop_assert_eq!(server.stats.finished(), TOTAL, "no event lost or doubled");
        prop_assert_eq!(
            violations.load(Ordering::Relaxed),
            0,
            "pinned events executed off their home shard"
        );
        // The saturated home shard plus spinning work makes stealing (and
        // therefore forwarding) all but certain; if this ever flakes the
        // spin budget above is the knob.
        prop_assert!(
            server.stats.total_pinned_rerouted() > 0,
            "expected thieves to claim and forward pinned events"
        );
    }

    /// Adaptive controller with maximum park/wake churn: the routing
    /// prefix resizes while pinned bursts are in flight. At the instant
    /// an event executes, its shard is its session's home under the
    /// *current* prefix — so the executing shard must always be one of
    /// the session's possible homes over prefix sizes 1..=SHARDS, and
    /// nothing is lost across resizes.
    #[test]
    fn adaptive_park_wake_keeps_pinned_events_on_possible_homes(
        session_count in 1usize..8,
        burst in 1u64..32,
        seed in any::<u64>(),
    ) {
        const SHARDS: usize = 4;
        const TOTAL: u64 = 600;
        let sessions: Arc<Vec<u64>> =
            Arc::new((0..session_count as u64).map(|i| seed ^ (i * 0x9E37)).collect());
        let (server, violations) = pinned_server(TOTAL, burst, sessions, |sid, shard| {
            (1..=SHARDS).any(|p| shard_index(sid, p) == shard)
        });
        let handle = start(
            server.clone(),
            RuntimeKind::EventDriven {
                shards: SHARDS,
                io_workers: 1,
                adaptive: AdaptivePolicy::Adaptive(AdaptiveConfig {
                    min_shards: 1,
                    sample_every: Duration::from_micros(200),
                    park_after: 2,
                    park_below: 1,
                    wake_depth: 1,
                }),
                queue: ShardQueueKind::Mutex,
                overload: OverloadPolicy::Unbounded,
            },
        );
        handle.join();
        prop_assert_eq!(server.stats.finished(), TOTAL, "no event lost across resizes");
        prop_assert_eq!(
            violations.load(Ordering::Relaxed),
            0,
            "pinned event executed on a shard that is no session home"
        );
    }
}
