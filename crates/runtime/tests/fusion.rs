//! Integration tests for stage fusion on the sharded event-driven
//! runtime: the `FLUX_FUSE`/`FLUX_FUSE_BUDGET` operator overrides, the
//! `fused_execs` accounting, and completion under both interpreters.

use flux_runtime::testutil::test_env_lock;
use flux_runtime::{
    start, FluxServer, FusionMode, NodeOutcome, NodeRegistry, RuntimeKind, SourceOutcome,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const CHAIN_SRC: &str = "
    Gen () => (int v);
    A (int v) => (int v);
    B (int v) => (int v);
    C (int v) => ();
    Flow = A -> B -> C;
    source Gen => Flow;
";

fn chain_server(total: u64, fusion: FusionMode) -> Arc<FluxServer<u64>> {
    let program = flux_core::compile(CHAIN_SRC).unwrap();
    let produced = AtomicU64::new(0);
    let mut reg: NodeRegistry<u64> = NodeRegistry::new();
    reg.source("Gen", move || {
        let i = produced.fetch_add(1, Ordering::SeqCst);
        if i >= total {
            SourceOutcome::Shutdown
        } else {
            SourceOutcome::New(i)
        }
    });
    for n in ["A", "B", "C"] {
        reg.node(n, |_| NodeOutcome::Ok);
    }
    Arc::new(FluxServer::with_options(program, reg, false, fusion).unwrap())
}

/// `FLUX_FUSE` wins over the builder choice, in both directions.
#[test]
fn flux_fuse_env_overrides_builder() {
    let _env = test_env_lock();
    std::env::set_var("FLUX_FUSE", "0");
    let s = chain_server(0, FusionMode::On);
    assert_eq!(s.fusion_mode(), FusionMode::Off);
    assert_eq!(s.max_segment_execs(), 1);

    std::env::set_var("FLUX_FUSE", "1");
    let s = chain_server(0, FusionMode::Off);
    assert_eq!(s.fusion_mode(), FusionMode::On);
    assert_eq!(s.max_segment_execs(), 3, "A -> B -> C fuses whole");

    // Unset: the builder decides.
    std::env::remove_var("FLUX_FUSE");
    assert_eq!(
        chain_server(0, FusionMode::Off).fusion_mode(),
        FusionMode::Off
    );
    assert_eq!(
        chain_server(0, FusionMode::On).fusion_mode(),
        FusionMode::On
    );
}

/// On the sharded runtime, fused execution completes every flow, the
/// per-shard `fused_execs` counter records the chain executions, and
/// `ServerStats::describe` surfaces them.
#[test]
fn sharded_runtime_counts_fused_execs() {
    let _env = test_env_lock();
    std::env::remove_var("FLUX_FUSE");
    std::env::remove_var("FLUX_FUSE_BUDGET");
    const TOTAL: u64 = 300;
    let server = chain_server(TOTAL, FusionMode::On);
    let handle = start(server.clone(), RuntimeKind::event_driven_sharded(2, 1));
    handle.join();
    assert_eq!(server.stats.finished(), TOTAL);
    // Every flow's A -> B -> C runs as one 3-exec segment.
    assert_eq!(server.stats.total_fused_execs(), TOTAL * 3);
    let desc = server.stats.describe();
    assert!(
        desc.contains(&format!("fused execs {}", TOTAL * 3)),
        "{desc}"
    );

    // The unfused oracle completes identically but records none.
    let server = chain_server(TOTAL, FusionMode::Off);
    let handle = start(server.clone(), RuntimeKind::event_driven_sharded(2, 1));
    handle.join();
    assert_eq!(server.stats.finished(), TOTAL);
    assert_eq!(server.stats.total_fused_execs(), 0);
}

/// A starvation-sized `FLUX_FUSE_BUDGET=1` (the old one-exec-per-turn
/// latch) still completes fused segments: the first execution of a turn
/// is always allowed even when the segment alone overdraws the budget.
#[test]
fn tiny_fuse_budget_does_not_starve_segments() {
    let _env = test_env_lock();
    std::env::set_var("FLUX_FUSE_BUDGET", "1");
    const TOTAL: u64 = 200;
    for kind in [
        RuntimeKind::event_driven_sharded(1, 1),
        RuntimeKind::event_driven_sharded(4, 1),
    ] {
        let server = chain_server(TOTAL, FusionMode::On);
        let handle = start(server.clone(), kind);
        handle.join();
        assert_eq!(server.stats.finished(), TOTAL);
        assert_eq!(server.stats.total_fused_execs(), TOTAL * 3);
    }
    std::env::remove_var("FLUX_FUSE_BUDGET");
}
