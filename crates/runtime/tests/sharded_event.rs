//! Integration tests for the sharded event-driven runtime: session
//! affinity, work stealing, per-shard stats, adaptive shard
//! parking/waking, and clean shutdown with non-empty shard queues.

use flux_runtime::{
    shard_index, start, AdaptiveConfig, AdaptivePolicy, FluxServer, NodeOutcome, NodeRegistry,
    OverloadPolicy, RuntimeKind, ShardQueueKind, SourceOutcome,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SESSION_SRC: &str = "
    Gen () => (int sid);
    Work (int sid) => (int sid);
    Out (int sid) => ();
    Flow = Work -> Out;
    source Gen => Flow;
    atomic Work: {state(session)};
";

/// Builds a server producing `total` flows whose session ids cycle
/// through `sessions`.
fn session_server(total: u64, sessions: Arc<Vec<u64>>) -> Arc<FluxServer<u64>> {
    let program = flux_core::compile(SESSION_SRC).unwrap();
    let produced = AtomicU64::new(0);
    let mut reg: NodeRegistry<u64> = NodeRegistry::new();
    let s2 = sessions.clone();
    reg.source("Gen", move || {
        let i = produced.fetch_add(1, Ordering::SeqCst);
        if i >= total {
            SourceOutcome::Shutdown
        } else {
            SourceOutcome::New(s2[(i % s2.len() as u64) as usize])
        }
    });
    reg.session("Gen", |sid: &u64| *sid);
    reg.node("Work", |_| NodeOutcome::Ok);
    reg.node("Out", |_| NodeOutcome::Ok);
    Arc::new(FluxServer::new(program, reg).unwrap())
}

// Tests that set or depend on `FLUX_SHARD_RING_CAP` serialize on the
// crate-wide env lock (the env is process-wide: the differential
// proptest shrinks the cap to force sidecar traffic, which would starve
// the steal assertions of concurrently running ring tests — steals only
// see the ring, never the sidecar).
use flux_runtime::testutil::test_env_lock;

/// Session ids that all hash to shard 0 under `shards` shards.
fn sessions_on_shard_zero(shards: usize, count: usize) -> Vec<u64> {
    (0u64..)
        .filter(|&k| shard_index(k, shards) == 0)
        .take(count)
        .collect()
}

#[test]
fn routing_hash_is_deterministic_and_spreads() {
    for shards in [1usize, 2, 4, 8] {
        let mut hits = vec![0u64; shards];
        for key in 0..4096u64 {
            let a = shard_index(key, shards);
            assert_eq!(a, shard_index(key, shards), "deterministic");
            assert!(a < shards);
            hits[a] += 1;
        }
        // No shard is starved or dominant (within 2x of uniform).
        let uniform = 4096 / shards as u64;
        for (s, &h) in hits.iter().enumerate() {
            assert!(
                h > uniform / 2 && h < uniform * 2,
                "shard {s}/{shards} got {h} of 4096"
            );
        }
    }
}

/// Same-session cursors are always submitted to their home shard: when
/// every session hashes to shard 0, no other shard ever receives an
/// affine (session-carrying) submission — events reach other cores only
/// by stealing.
#[test]
fn same_session_cursors_land_on_home_shard() {
    const SHARDS: usize = 4;
    let sessions = Arc::new(sessions_on_shard_zero(SHARDS, 3));
    let server = session_server(600, sessions);
    let handle = start(server.clone(), RuntimeKind::event_driven_sharded(SHARDS, 1));
    handle.join();
    assert_eq!(server.stats.finished(), 600);
    let stats = server.stats.shard_stats().expect("sharded runtime ran");
    assert_eq!(stats.len(), SHARDS);
    assert!(
        stats[0].affine.load(Ordering::Relaxed) >= 600,
        "all session submissions routed to home shard 0"
    );
    for (i, st) in stats.iter().enumerate().skip(1) {
        assert_eq!(
            st.affine.load(Ordering::Relaxed),
            0,
            "shard {i} must receive no affine submissions"
        );
    }
}

/// When one shard is saturated (every session homes there), the other
/// shards steal and the backlog still completes.
#[test]
fn work_stealing_makes_progress_from_saturated_shard() {
    const SHARDS: usize = 4;
    let sessions = Arc::new(sessions_on_shard_zero(SHARDS, 8));
    let program = flux_core::compile(
        "
        Gen () => (int sid);
        Spin (int sid) => ();
        Flow = Spin;
        source Gen => Flow;
        ",
    )
    .unwrap();
    let total = 400u64;
    let produced = AtomicU64::new(0);
    let mut reg: NodeRegistry<u64> = NodeRegistry::new();
    let s2 = sessions.clone();
    reg.source("Gen", move || {
        let i = produced.fetch_add(1, Ordering::SeqCst);
        if i >= total {
            SourceOutcome::Shutdown
        } else {
            SourceOutcome::New(s2[(i % s2.len() as u64) as usize])
        }
    });
    reg.session("Gen", |sid: &u64| *sid);
    reg.node("Spin", |_| {
        let t0 = std::time::Instant::now();
        while t0.elapsed() < Duration::from_micros(200) {
            std::hint::spin_loop();
        }
        NodeOutcome::Ok
    });
    let server = Arc::new(FluxServer::new(program, reg).unwrap());
    let handle = start(server.clone(), RuntimeKind::event_driven_sharded(SHARDS, 1));
    handle.join();
    assert_eq!(server.stats.finished(), total);
    assert!(
        server.stats.total_steals() > 0,
        "idle shards must steal from the saturated one"
    );
}

/// Steal batching: a thief takes half the victim's queue per steal, so
/// under a saturated home shard the bulk-transfer counter moves and
/// every event still completes exactly once.
#[test]
fn steals_take_half_the_victims_queue() {
    const SHARDS: usize = 4;
    let sessions = Arc::new(sessions_on_shard_zero(SHARDS, 8));
    let program = flux_core::compile(
        "
        Gen () => (int sid);
        Spin (int sid) => ();
        Flow = Spin;
        source Gen => Flow;
        ",
    )
    .unwrap();
    // A burst far larger than the per-steal unit: with every session
    // homed on shard 0, thieves must move work in bulk to drain it.
    let total = 2_000u64;
    let produced = AtomicU64::new(0);
    let mut reg: NodeRegistry<u64> = NodeRegistry::new();
    let s2 = sessions.clone();
    reg.source("Gen", move || {
        let i = produced.fetch_add(1, Ordering::SeqCst);
        if i >= total {
            SourceOutcome::Shutdown
        } else {
            SourceOutcome::New(s2[(i % s2.len() as u64) as usize])
        }
    });
    reg.session("Gen", |sid: &u64| *sid);
    reg.node("Spin", |_| {
        let t0 = std::time::Instant::now();
        while t0.elapsed() < Duration::from_micros(100) {
            std::hint::spin_loop();
        }
        NodeOutcome::Ok
    });
    let server = Arc::new(FluxServer::new(program, reg).unwrap());
    let handle = start(server.clone(), RuntimeKind::event_driven_sharded(SHARDS, 1));
    handle.join();
    assert_eq!(server.stats.finished(), total, "no event lost or doubled");
    let stats = server.stats.shard_stats().unwrap();
    let steals: u64 = stats.iter().map(|s| s.stolen.load(Ordering::Relaxed)).sum();
    let batched: u64 = stats
        .iter()
        .map(|s| s.stolen_batch.load(Ordering::Relaxed))
        .sum();
    assert!(steals > 0, "thieves must steal from the saturated shard");
    assert!(
        batched > 0,
        "with a deep victim queue, steals must bulk-transfer extra events \
         (steals {steals}, batched {batched})"
    );
    // Conservation: everything dequeued somewhere, queues empty.
    for (i, st) in stats.iter().enumerate() {
        assert_eq!(st.depth.load(Ordering::Relaxed), 0, "shard {i} drained");
    }
}

/// Batch delivery ordering: a source that hands over bursts via
/// `SourceOutcome::Batch` keeps exact FIFO execution order on a single
/// shard — a burst is appended intact (one queue lock for the mutex
/// kind, one tail CAS for the ring), and cross-batch order follows
/// submission order. Shared body for both queue kinds.
fn batched_fifo_on_single_shard(kind: ShardQueueKind) {
    let program = flux_core::compile(
        "
        Gen () => (int v);
        Work (int v) => ();
        Flow = Work;
        source Gen => Flow;
        ",
    )
    .unwrap();
    let total = 600u64;
    let produced = AtomicU64::new(0);
    let mut reg: NodeRegistry<u64> = NodeRegistry::new();
    reg.source("Gen", move || {
        let start = produced.load(Ordering::SeqCst);
        if start >= total {
            return SourceOutcome::Shutdown;
        }
        // Varying batch sizes 1..=7, covering the New/Batch boundary.
        let k = (start % 7 + 1).min(total - start);
        produced.fetch_add(k, Ordering::SeqCst);
        if k == 1 {
            SourceOutcome::New(start)
        } else {
            SourceOutcome::Batch((start..start + k).collect())
        }
    });
    let order: Arc<parking_lot::Mutex<Vec<u64>>> = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let o2 = order.clone();
    reg.node("Work", move |v: &mut u64| {
        o2.lock().push(*v);
        NodeOutcome::Ok
    });
    let server = Arc::new(FluxServer::new(program, reg).unwrap());
    let handle = start(
        server.clone(),
        RuntimeKind::event_driven_sharded(1, 1).shard_queue(kind),
    );
    handle.join();
    assert_eq!(server.stats.finished(), total);
    let order = order.lock();
    let expect: Vec<u64> = (0..total).collect();
    assert_eq!(*order, expect, "single-shard execution is exact FIFO");
    let stats = server.stats.shard_stats().unwrap();
    assert!(
        stats[0].batch_events.load(Ordering::Relaxed) >= total,
        "every event travelled through a batched append"
    );
    assert!(
        stats[0].batches.load(Ordering::Relaxed) < total,
        "bursts amortize: fewer appends than events"
    );
    if kind == ShardQueueKind::Ring {
        assert!(
            stats[0].ring_claims.load(Ordering::Relaxed) > 0,
            "ring kind must claim slots via tail CAS"
        );
    }
}

#[test]
fn batched_submission_preserves_fifo_on_single_shard() {
    batched_fifo_on_single_shard(ShardQueueKind::Mutex);
}

/// Ring port: batch claims publish in position order, so the published
/// run a consumer sees is exactly the submission order — same FIFO
/// guarantee as the mutex kind.
#[test]
fn ring_batched_submission_preserves_fifo_on_single_shard() {
    batched_fifo_on_single_shard(ShardQueueKind::Ring);
}

/// Ring steal path end-to-end: with every session homed on shard 0 and
/// slow nodes, thieves must claim runs off the victim's ring via the
/// head CAS, no event is lost or doubled, and all queues end empty.
#[test]
fn ring_stealing_drains_saturated_shard() {
    // Hold the env lock for the whole run: with a shrunken ring cap
    // (set by the differential proptest) the backlog would sit in the
    // unstealable overflow sidecar and the steal assertion would flake.
    let _env = test_env_lock();
    std::env::remove_var("FLUX_SHARD_RING_CAP");
    const SHARDS: usize = 4;
    let sessions = Arc::new(sessions_on_shard_zero(SHARDS, 8));
    let program = flux_core::compile(
        "
        Gen () => (int sid);
        Spin (int sid) => ();
        Flow = Spin;
        source Gen => Flow;
        ",
    )
    .unwrap();
    let total = 2_000u64;
    let produced = AtomicU64::new(0);
    let mut reg: NodeRegistry<u64> = NodeRegistry::new();
    let s2 = sessions.clone();
    reg.source("Gen", move || {
        let start = produced.load(Ordering::SeqCst);
        if start >= total {
            return SourceOutcome::Shutdown;
        }
        let k = (start % 5 + 1).min(total - start);
        produced.fetch_add(k, Ordering::SeqCst);
        SourceOutcome::Batch(
            (start..start + k)
                .map(|i| s2[(i % s2.len() as u64) as usize])
                .collect(),
        )
    });
    reg.session("Gen", |sid: &u64| *sid);
    reg.node("Spin", |_| {
        let t0 = std::time::Instant::now();
        while t0.elapsed() < Duration::from_micros(100) {
            std::hint::spin_loop();
        }
        NodeOutcome::Ok
    });
    let server = Arc::new(FluxServer::new(program, reg).unwrap());
    let handle = start(
        server.clone(),
        RuntimeKind::event_driven_sharded(SHARDS, 1).shard_queue(ShardQueueKind::Ring),
    );
    handle.join();
    assert_eq!(server.stats.finished(), total, "no event lost or doubled");
    assert!(
        server.stats.total_steals() > 0,
        "thieves must steal from the saturated home shard's ring"
    );
    let stats = server.stats.shard_stats().unwrap();
    for (i, st) in stats.iter().enumerate() {
        assert_eq!(st.depth.load(Ordering::Relaxed), 0, "shard {i} drained");
    }
}

/// Batched routing composes with work stealing (the stolen-batch FIFO
/// prepend from PR 3): with every session homed on one shard and the
/// source submitting bursts, thieves bulk-transfer backlog and every
/// event still completes exactly once, leaving all queues empty.
#[test]
fn batched_routing_survives_stealing() {
    const SHARDS: usize = 4;
    let sessions = Arc::new(sessions_on_shard_zero(SHARDS, 8));
    let program = flux_core::compile(
        "
        Gen () => (int sid);
        Spin (int sid) => ();
        Flow = Spin;
        source Gen => Flow;
        ",
    )
    .unwrap();
    let total = 2_000u64;
    let produced = AtomicU64::new(0);
    let mut reg: NodeRegistry<u64> = NodeRegistry::new();
    let s2 = sessions.clone();
    reg.source("Gen", move || {
        let start = produced.load(Ordering::SeqCst);
        if start >= total {
            return SourceOutcome::Shutdown;
        }
        let k = (start % 5 + 1).min(total - start);
        produced.fetch_add(k, Ordering::SeqCst);
        SourceOutcome::Batch(
            (start..start + k)
                .map(|i| s2[(i % s2.len() as u64) as usize])
                .collect(),
        )
    });
    reg.session("Gen", |sid: &u64| *sid);
    reg.node("Spin", |_| {
        let t0 = std::time::Instant::now();
        while t0.elapsed() < Duration::from_micros(100) {
            std::hint::spin_loop();
        }
        NodeOutcome::Ok
    });
    let server = Arc::new(FluxServer::new(program, reg).unwrap());
    let handle = start(server.clone(), RuntimeKind::event_driven_sharded(SHARDS, 1));
    handle.join();
    assert_eq!(server.stats.finished(), total, "no event lost or doubled");
    let stats = server.stats.shard_stats().unwrap();
    let batched: u64 = stats
        .iter()
        .map(|s| s.batch_events.load(Ordering::Relaxed))
        .sum();
    assert!(batched >= total, "all submissions took the batched path");
    assert!(
        server.stats.total_steals() > 0,
        "thieves must steal from the saturated home shard"
    );
    for (i, st) in stats.iter().enumerate() {
        assert_eq!(st.depth.load(Ordering::Relaxed), 0, "shard {i} drained");
    }
}

/// An aggressive controller tuning for tests: ticks of 200 µs, parks
/// after `park_after` idle ticks, wakes at depth 1 — maximum park/wake
/// churn, so races in the handshake surface fast.
fn aggressive(park_after: u32) -> AdaptivePolicy {
    AdaptivePolicy::Adaptive(AdaptiveConfig {
        min_shards: 1,
        sample_every: Duration::from_micros(200),
        park_after,
        park_below: 1,
        wake_depth: 1,
    })
}

/// Deterministic park-then-burst scenario. Phase 1: the source idles
/// (Skip) until the controller has parked down from 4 dispatchers.
/// Phase 2: the source floods spin events; the controller must wake
/// parked shards (the wake rule triggers on the first sampling tick
/// that observes standing depth) and every event must complete.
#[test]
fn controller_parks_idle_shards_and_wakes_on_burst() {
    const SHARDS: usize = 4;
    const TOTAL: u64 = 800;
    let program = flux_core::compile(
        "
        Gen () => (int v);
        Spin (int v) => ();
        Flow = Spin;
        source Gen => Flow;
        ",
    )
    .unwrap();
    let burst = Arc::new(AtomicU64::new(0)); // 0 = idle, 1 = burst, 2 = done
    let produced = AtomicU64::new(0);
    let mut reg: NodeRegistry<u64> = NodeRegistry::new();
    let b2 = burst.clone();
    reg.source("Gen", move || match b2.load(Ordering::SeqCst) {
        0 => {
            std::thread::sleep(Duration::from_millis(1));
            SourceOutcome::Skip
        }
        _ => {
            let start = produced.load(Ordering::SeqCst);
            if start >= TOTAL {
                return SourceOutcome::Shutdown;
            }
            let k = 8.min(TOTAL - start);
            produced.fetch_add(k, Ordering::SeqCst);
            SourceOutcome::Batch((start..start + k).collect())
        }
    });
    reg.node("Spin", |_| {
        let t0 = std::time::Instant::now();
        while t0.elapsed() < Duration::from_micros(50) {
            std::hint::spin_loop();
        }
        NodeOutcome::Ok
    });
    let server = Arc::new(FluxServer::new(program, reg).unwrap());
    let handle = start(
        server.clone(),
        RuntimeKind::EventDriven {
            shards: SHARDS,
            io_workers: 1,
            adaptive: aggressive(4),
            queue: ShardQueueKind::Mutex,
            overload: OverloadPolicy::Unbounded,
        },
    );

    // Phase 1: with no load, the controller must park below the
    // configured count (and, given time, down to the floor of 1).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let ast = &server.stats.adaptive;
    while ast.active_shards.load(Ordering::SeqCst) > 1 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(
        ast.active_shards.load(Ordering::SeqCst),
        1,
        "idle server must park down to min_shards ({})",
        ast.describe()
    );
    let parks_before_burst = ast.parks.load(Ordering::SeqCst);
    assert!(
        parks_before_burst >= (SHARDS - 1) as u64,
        "{}",
        ast.describe()
    );

    // Phase 2: burst. The wake rule fires on the first tick that sees
    // standing depth, so with a 200 µs tick the ramp-up is bounded by
    // milliseconds; the generous deadline only absorbs CI scheduling
    // noise, and the burst is sized to outlast the ramp even on a
    // slow host.
    burst.store(1, Ordering::SeqCst);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while ast.wakes.load(Ordering::SeqCst) == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_micros(200));
    }
    assert!(
        ast.wakes.load(Ordering::SeqCst) > 0,
        "burst must wake parked dispatchers within the controller's \
         sampling cadence ({})",
        ast.describe()
    );

    handle.join();
    assert_eq!(server.stats.finished(), TOTAL, "{}", ast.describe());
    let stats = server.stats.shard_stats().unwrap();
    for (i, st) in stats.iter().enumerate() {
        assert_eq!(st.depth.load(Ordering::Relaxed), 0, "shard {i} drained");
    }
}

/// A server whose load dies and returns repeatedly under an aggressive
/// controller: parks and wakes interleave with live traffic, and the
/// accounting still balances.
#[test]
fn controller_survives_alternating_idle_and_load() {
    const SHARDS: usize = 3;
    let program = flux_core::compile(
        "
        Gen () => (int v);
        Work (int v) => ();
        Flow = Work;
        source Gen => Flow;
        ",
    )
    .unwrap();
    // 12 cycles of (idle 3 ms, burst of 40): each idle gap is ~15
    // controller ticks, enough to park; each burst must wake and drain.
    let cycle = AtomicU64::new(0);
    let mut reg: NodeRegistry<u64> = NodeRegistry::new();
    reg.source("Gen", move || {
        let c = cycle.fetch_add(1, Ordering::SeqCst);
        if c >= 12 {
            return SourceOutcome::Shutdown;
        }
        std::thread::sleep(Duration::from_millis(3));
        SourceOutcome::Batch((0..40).collect())
    });
    reg.node("Work", |_| NodeOutcome::Ok);
    let server = Arc::new(FluxServer::new(program, reg).unwrap());
    let handle = start(
        server.clone(),
        RuntimeKind::EventDriven {
            shards: SHARDS,
            io_workers: 1,
            adaptive: aggressive(2),
            queue: ShardQueueKind::Mutex,
            overload: OverloadPolicy::Unbounded,
        },
    );
    handle.join();
    assert_eq!(server.stats.finished(), 12 * 40);
    let ast = &server.stats.adaptive;
    assert!(
        ast.parks.load(Ordering::SeqCst) > 0,
        "3 ms idle gaps must trigger parks ({})",
        ast.describe()
    );
    let stats = server.stats.shard_stats().unwrap();
    for (i, st) in stats.iter().enumerate() {
        assert_eq!(st.depth.load(Ordering::Relaxed), 0, "shard {i} drained");
    }
}

/// Requesting shutdown while shard queues are non-empty drains cleanly:
/// every started flow finishes, none is lost in a queue.
#[test]
fn clean_shutdown_drains_non_empty_queues() {
    let program = flux_core::compile(
        "
        Gen () => (int v);
        Slow (int v) => ();
        Flow = Slow;
        source Gen => Flow;
        ",
    )
    .unwrap();
    let mut reg: NodeRegistry<u64> = NodeRegistry::new();
    // Open-loop source: floods the queues far faster than 1 ms nodes
    // drain them, so queues are guaranteed non-empty at shutdown.
    let produced = Arc::new(AtomicU64::new(0));
    let p2 = produced.clone();
    reg.source("Gen", move || {
        p2.fetch_add(1, Ordering::SeqCst);
        SourceOutcome::New(0)
    });
    reg.node("Slow", |_| {
        std::thread::sleep(Duration::from_millis(1));
        NodeOutcome::Ok
    });
    let server = Arc::new(FluxServer::new(program, reg).unwrap());
    let handle = start(server.clone(), RuntimeKind::event_driven_sharded(4, 2));
    // Let a backlog build, then stop: sources quit, shards must drain.
    while produced.load(Ordering::SeqCst) < 200 {
        std::thread::sleep(Duration::from_millis(1));
    }
    handle.stop();
    let started = server.stats.started.load(Ordering::SeqCst);
    assert!(started >= 200);
    assert_eq!(
        server.stats.finished(),
        started,
        "every queued flow must finish during drain"
    );
}

/// Per-shard depth accounting: high-water marks are recorded and the
/// final depth is zero everywhere.
#[test]
fn shard_stats_track_depth_and_drain_to_zero() {
    let sessions = Arc::new((0u64..32).collect::<Vec<_>>());
    let server = session_server(2_000, sessions);
    let handle = start(server.clone(), RuntimeKind::event_driven_sharded(4, 1));
    handle.join();
    assert_eq!(server.stats.finished(), 2_000);
    let stats = server.stats.shard_stats().unwrap();
    let max: u64 = stats
        .iter()
        .map(|s| s.max_depth.load(Ordering::Relaxed))
        .sum();
    assert!(max > 0, "some queueing must have been observed");
    for (i, st) in stats.iter().enumerate() {
        assert_eq!(st.depth.load(Ordering::Relaxed), 0, "shard {i} drained");
    }
    let executed: u64 = stats
        .iter()
        .map(|s| s.executed.load(Ordering::Relaxed) + s.stolen.load(Ordering::Relaxed))
        .sum();
    assert!(executed >= 2_000, "every event dequeued somewhere");
}

/// Restarting the same server with a different (larger) shard count
/// must not read the first run's smaller counter block: each run
/// installs fresh per-shard stats.
#[test]
fn restart_with_more_shards_installs_fresh_stats() {
    let total_per_run = 300u64;
    let sessions = Arc::new((0u64..16).collect::<Vec<_>>());
    let server = session_server(total_per_run, sessions.clone());
    let handle = start(server.clone(), RuntimeKind::event_driven_sharded(2, 1));
    handle.join();
    assert_eq!(server.stats.finished(), total_per_run);
    assert_eq!(server.stats.shard_stats().unwrap().len(), 2);

    // Second run on the same server, more shards. The source fn is
    // exhausted (returns Shutdown immediately), but every shard and
    // source thread must still start, route and exit cleanly.
    let handle = start(server.clone(), RuntimeKind::event_driven_sharded(8, 1));
    handle.join();
    assert_eq!(
        server.stats.shard_stats().unwrap().len(),
        8,
        "second run must publish its own 8-shard block"
    );
}

/// The sharded runtime preserves single-dispatcher outcome accounting
/// for random shard counts, loads and session mixes (property test).
mod properties {
    use super::*;
    use proptest::prelude::*;

    /// Shared body for the adaptive-interleaving property, parametrized
    /// by shard-queue kind: an aggressive controller churns parks and
    /// wakes while skewed traffic flows; conservation, drained queues
    /// and balanced books must hold for Mutex and Ring alike. Plain
    /// asserts (not `prop_assert!`) still fail and shrink under
    /// proptest via panic.
    fn adaptive_interleaving_body(
        kind: ShardQueueKind,
        shards: usize,
        io_workers: usize,
        total: u64,
        sessions: u64,
        park_after: u32,
        min_shards: usize,
    ) {
        let ids = Arc::new((0..sessions).collect::<Vec<_>>());
        let server = session_server(total, ids);
        let handle = start(
            server.clone(),
            RuntimeKind::EventDriven {
                shards,
                io_workers,
                adaptive: AdaptivePolicy::Adaptive(AdaptiveConfig {
                    min_shards,
                    sample_every: Duration::from_micros(200),
                    park_after,
                    park_below: 1,
                    wake_depth: 1,
                }),
                queue: kind,
                overload: OverloadPolicy::Unbounded,
            },
        );
        handle.join();
        // Conservation: every flow finished exactly once.
        assert_eq!(server.stats.finished(), total, "[{kind:?}] lost events");
        let stats = server.stats.shard_stats().unwrap();
        assert_eq!(stats.len(), shards);
        // Nothing stranded on any shard — in particular not on a shard
        // that ended the run parked: a parked dispatcher forwards every
        // straggler before blocking, so a non-zero final depth there
        // would mean an event was delivered to a permanently-parked
        // shard.
        let active = server.stats.adaptive.active_shards.load(Ordering::SeqCst) as usize;
        assert!(active >= min_shards.min(shards) && active <= shards);
        for (i, st) in stats.iter().enumerate() {
            assert_eq!(
                st.depth.load(Ordering::Relaxed),
                0,
                "[{kind:?}] shard {i} (active prefix {active}) must end drained"
            );
        }
        // The controller's books balance: it can't have woken more
        // shards than it parked, and the active count is exactly
        // configured - parks + wakes.
        let parks = server.stats.adaptive.parks.load(Ordering::SeqCst);
        let wakes = server.stats.adaptive.wakes.load(Ordering::SeqCst);
        assert!(wakes <= parks, "[{kind:?}] wakes {wakes} > parks {parks}");
        assert_eq!(
            shards as u64 + wakes - parks,
            active as u64,
            "[{kind:?}] active count must equal configured - parks + wakes"
        );
    }

    /// Runs one generated event script on a single shard and returns
    /// the global execution order (event = index into `script`, whose
    /// entry is that event's session id). Used as a differential
    /// harness: the mutex kind is the semantic oracle for the ring.
    fn run_script(kind: ShardQueueKind, script: Arc<Vec<u64>>) -> Vec<u64> {
        let program = flux_core::compile(
            "
            Gen () => (int v);
            Work (int v) => ();
            Flow = Work;
            source Gen => Flow;
            ",
        )
        .unwrap();
        let total = script.len() as u64;
        let produced = AtomicU64::new(0);
        let mut reg: NodeRegistry<u64> = NodeRegistry::new();
        reg.source("Gen", move || {
            let start = produced.load(Ordering::SeqCst);
            if start >= total {
                return SourceOutcome::Shutdown;
            }
            // Varying batch sizes 1..=4 cover the New/Batch boundary
            // deterministically for a given script length.
            let k = (start % 4 + 1).min(total - start);
            produced.fetch_add(k, Ordering::SeqCst);
            if k == 1 {
                SourceOutcome::New(start)
            } else {
                SourceOutcome::Batch((start..start + k).collect())
            }
        });
        let s2 = script.clone();
        reg.session("Gen", move |v: &u64| s2[*v as usize]);
        let order: Arc<parking_lot::Mutex<Vec<u64>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        let o2 = order.clone();
        reg.node("Work", move |v: &mut u64| {
            o2.lock().push(*v);
            NodeOutcome::Ok
        });
        let server = Arc::new(FluxServer::new(program, reg).unwrap());
        let handle = start(
            server.clone(),
            RuntimeKind::event_driven_sharded(1, 1).shard_queue(kind),
        );
        handle.join();
        assert_eq!(server.stats.finished(), total, "[{kind:?}] lost events");
        let v = order.lock().clone();
        v
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn sharded_accounting_matches_for_any_shape(
            shards in 1usize..6,
            io_workers in 1usize..4,
            total in 1u64..300,
            sessions in 1u64..12,
        ) {
            let ids = Arc::new((0..sessions).collect::<Vec<_>>());
            let server = session_server(total, ids);
            let handle = start(
                server.clone(),
                RuntimeKind::event_driven_sharded(shards, io_workers),
            );
            handle.join();
            prop_assert_eq!(server.stats.finished(), total);
            let stats = server.stats.shard_stats().unwrap();
            prop_assert_eq!(stats.len(), shards);
            // Conservation: every submitted event is dequeued exactly
            // once (own-queue pops + steals cover all submissions).
            for (i, st) in stats.iter().enumerate() {
                prop_assert_eq!(st.depth.load(Ordering::Relaxed), 0, "shard {} drained", i);
            }
        }

        /// Random enqueue/steal/park/wake interleavings: an aggressive
        /// adaptive controller (200 µs ticks, parks after 1–4 idle
        /// ticks, wakes at depth 1) churns the dispatcher set while
        /// sources submit skewed session traffic. No event may be lost,
        /// doubled, executed on a parked shard, or stranded behind one.
        #[test]
        fn adaptive_interleaving_loses_no_events(
            shards in 2usize..6,
            io_workers in 1usize..3,
            total in 1u64..400,
            sessions in 1u64..12,
            park_after in 1u32..5,
            min_shards in 1usize..3,
        ) {
            adaptive_interleaving_body(
                ShardQueueKind::Mutex,
                shards, io_workers, total, sessions, park_after, min_shards,
            );
        }

        /// Ring port of the adaptive-interleaving property: the
        /// lock-free MPSC ring plus the Dekker parked-flag handshake
        /// must uphold exactly the invariants the mutex kind does under
        /// random park/wake/steal interleavings.
        #[test]
        fn ring_adaptive_interleaving_loses_no_events(
            shards in 2usize..6,
            io_workers in 1usize..3,
            total in 1u64..400,
            sessions in 1u64..12,
            park_after in 1u32..5,
            min_shards in 1usize..3,
        ) {
            adaptive_interleaving_body(
                ShardQueueKind::Ring,
                shards, io_workers, total, sessions, park_after, min_shards,
            );
        }

        /// Differential oracle: the same generated event script runs on
        /// a single shard under both queue kinds, and the per-session
        /// execution order must be identical. A tiny ring capacity
        /// (`FLUX_SHARD_RING_CAP=8`) forces traffic through the
        /// overflow sidecar, so the overflow-first FIFO rules are under
        /// test too, not just the in-ring fast path. The env lock keeps
        /// the process-wide cap from leaking into the steal-sensitive
        /// ring tests running concurrently.
        #[test]
        fn ring_matches_mutex_execution_order(
            script in proptest::collection::vec(0u64..6, 1..200usize),
        ) {
            let _env = test_env_lock();
            std::env::set_var("FLUX_SHARD_RING_CAP", "8");
            let script = Arc::new(script);
            let mutex_order = run_script(ShardQueueKind::Mutex, script.clone());
            let ring_order = run_script(ShardQueueKind::Ring, script.clone());
            std::env::remove_var("FLUX_SHARD_RING_CAP");
            for sid in 0..6u64 {
                let by_session = |order: &[u64]| -> Vec<u64> {
                    order
                        .iter()
                        .copied()
                        .filter(|&v| script[v as usize] == sid)
                        .collect()
                };
                prop_assert_eq!(
                    by_session(&mutex_order),
                    by_session(&ring_order),
                    "session {} order diverged between Mutex and Ring", sid
                );
            }
            // Single shard, one dispatcher: both kinds are in fact
            // exact global FIFO, a strictly stronger statement.
            prop_assert_eq!(mutex_order, ring_order, "global order diverged");
        }
    }
}
