//! Property tests for bounded shard queues
//! ([`OverloadPolicy::Bounded`]): across random burst shapes, depth
//! caps, queue kinds and shard counts, the conservation invariant
//! `offered == finished + shed` must hold exactly — no admitted event
//! is ever dropped, no shed event goes uncounted or unseen by the
//! registry's `on_shed` handler, and nothing is left stranded on a
//! capped queue at shutdown.

use flux_runtime::{
    start, FluxServer, NodeOutcome, NodeRegistry, OverloadPolicy, RuntimeKind, ShardQueueKind,
    SourceOutcome,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SRC: &str = "
    Gen () => (int v);
    Work (int v) => (int v);
    Out (int v) => ();
    Flow = Work -> Out;
    source Gen => Flow;
";

/// Builds a server offering `total` events in bursts of `burst`, with a
/// `Work` node that spins just long enough for backlog to form behind
/// a tiny depth cap. Returns the server plus the `on_shed` handler's
/// own count (the application-side view of every refused event).
fn bursty_server(total: u64, burst: u64) -> (Arc<FluxServer<u64>>, Arc<AtomicU64>) {
    let program = flux_core::compile(SRC).unwrap();
    let mut reg: NodeRegistry<u64> = NodeRegistry::new();
    let produced = AtomicU64::new(0);
    reg.source("Gen", move || {
        let start = produced.load(Ordering::SeqCst);
        if start >= total {
            return SourceOutcome::Shutdown;
        }
        let k = burst.min(total - start);
        produced.fetch_add(k, Ordering::SeqCst);
        if k == 1 {
            SourceOutcome::New(start)
        } else {
            SourceOutcome::Batch((start..start + k).collect())
        }
    });
    reg.node("Work", |_v: &mut u64| {
        let t0 = std::time::Instant::now();
        while t0.elapsed() < Duration::from_micros(20) {
            std::hint::spin_loop();
        }
        NodeOutcome::Ok
    });
    reg.node("Out", |_| NodeOutcome::Ok);
    let shed_seen = Arc::new(AtomicU64::new(0));
    let s2 = shed_seen.clone();
    reg.on_shed(move |_v: u64| {
        s2.fetch_add(1, Ordering::Relaxed);
    });
    (Arc::new(FluxServer::new(program, reg).unwrap()), shed_seen)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// offered == finished + shed, exactly, for any burst/cap/kind mix.
    #[test]
    fn bounded_queues_conserve_events(
        total in 200u64..800,
        burst in 1u64..64,
        cap in 1usize..8,
        shards in 1usize..4,
        ring in any::<bool>(),
    ) {
        let (server, shed_seen) = bursty_server(total, burst);
        let queue = if ring { ShardQueueKind::Ring } else { ShardQueueKind::Mutex };
        let handle = start(
            server.clone(),
            RuntimeKind::event_driven_sharded(shards, 1)
                .shard_queue(queue)
                .overload(OverloadPolicy::bounded(cap)),
        );
        handle.join();

        let finished = server.stats.finished();
        let shed = server.stats.total_shed();
        prop_assert_eq!(
            finished + shed,
            total,
            "offered {} != finished {} + shed {}",
            total, finished, shed
        );
        prop_assert_eq!(
            shed_seen.load(Ordering::Relaxed),
            shed,
            "on_shed handler saw a different count than the shard stats"
        );
        prop_assert_eq!(
            server.stats.overload.offered.load(Ordering::Relaxed),
            total,
            "every source submission must be counted as offered"
        );
    }

    /// Unbounded (the default) never sheds, whatever the load shape —
    /// the paper's semantics are untouched.
    #[test]
    fn unbounded_never_sheds(
        total in 200u64..600,
        burst in 1u64..64,
        ring in any::<bool>(),
    ) {
        let (server, shed_seen) = bursty_server(total, burst);
        let queue = if ring { ShardQueueKind::Ring } else { ShardQueueKind::Mutex };
        let handle = start(
            server.clone(),
            RuntimeKind::event_driven_sharded(2, 1).shard_queue(queue),
        );
        handle.join();
        prop_assert_eq!(server.stats.finished(), total);
        prop_assert_eq!(server.stats.total_shed(), 0u64);
        prop_assert_eq!(shed_seen.load(Ordering::Relaxed), 0u64);
    }
}

/// A cap of 1 with a huge burst is the worst case: most of the burst
/// sheds, yet the numbers still reconcile and the server drains.
#[test]
fn tiny_cap_sheds_most_of_a_flood() {
    let (server, shed_seen) = bursty_server(2_000, 256);
    let handle = start(
        server.clone(),
        RuntimeKind::event_driven_sharded(2, 1).overload(OverloadPolicy::bounded(1)),
    );
    handle.join();
    let finished = server.stats.finished();
    let shed = server.stats.total_shed();
    assert_eq!(finished + shed, 2_000, "conservation");
    assert!(shed > 0, "a cap of 1 under 256-bursts must shed");
    assert_eq!(shed_seen.load(Ordering::Relaxed), shed);
}
