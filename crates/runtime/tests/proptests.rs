//! Property-based tests for the runtime: lock-manager invariants under
//! random interleavings, and flow accounting across runtimes for random
//! programs.

use flux_core::ConstraintMode;
use flux_runtime::{
    start, FluxServer, NodeOutcome, NodeRegistry, ReentrantRwLock, RuntimeKind, SourceOutcome,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random sequences of acquire/release on one flow never deadlock
    /// and always leave the lock free (single-flow reentrancy model).
    #[test]
    fn single_flow_lock_sequences(ops in proptest::collection::vec(any::<bool>(), 0..40)) {
        let lock = ReentrantRwLock::new();
        let mut held: Vec<ConstraintMode> = Vec::new();
        for op in ops {
            // Acquire while we can, release otherwise; mode choice must
            // avoid the (compiler-prevented) read->write upgrade.
            let writer_held = held.contains(&ConstraintMode::Writer);
            if op || held.is_empty() {
                let mode = if held.is_empty() {
                    if op { ConstraintMode::Writer } else { ConstraintMode::Reader }
                } else if writer_held {
                    // Re-acquire either way under a writer.
                    if op { ConstraintMode::Writer } else { ConstraintMode::Reader }
                } else {
                    ConstraintMode::Reader
                };
                prop_assert!(lock.try_acquire(1, mode));
                held.push(mode);
            } else if let Some(mode) = held.pop() {
                lock.release(1, mode);
            }
        }
        for mode in held.into_iter().rev() {
            lock.release(1, mode);
        }
        // Fully released: another flow can take a writer.
        prop_assert!(lock.try_acquire(2, ConstraintMode::Writer));
    }

    /// A randomly-shaped dispatch program completes every flow on every
    /// runtime with consistent outcome accounting.
    #[test]
    fn random_dispatch_flow_accounting(
        total in 1u64..120,
        err_mod in 2u64..9,
        small_cut in 1u64..100,
        pool in 1usize..6,
    ) {
        const SRC: &str = "
            Gen () => (int n);
            Check (int n) => (int n);
            Small (int n) => (int n);
            Big (int n) => (int n);
            Done (int n) => ();
            Fail (int n) => ();
            typedef small IsSmall;
            source Gen => Flow;
            Flow = Check -> Route -> Done;
            Route:[small] = Small;
            Route:[_] = Big;
            handle error Check => Fail;
            atomic Done: {tally};
        ";
        let program = flux_core::compile(SRC).unwrap();
        let produced = AtomicU64::new(0);
        let small = Arc::new(AtomicU64::new(0));
        let big = Arc::new(AtomicU64::new(0));
        let failed = Arc::new(AtomicU64::new(0));
        let mut reg: NodeRegistry<u64> = NodeRegistry::new();
        reg.source("Gen", move || {
            let i = produced.fetch_add(1, Ordering::SeqCst);
            if i >= total { SourceOutcome::Shutdown } else { SourceOutcome::New(i) }
        });
        let em = err_mod;
        reg.node("Check", move |n: &mut u64| {
            if (*n).is_multiple_of(em) { NodeOutcome::Err(1) } else { NodeOutcome::Ok }
        });
        let sc = small_cut;
        reg.predicate("IsSmall", move |n: &u64| *n < sc);
        {
            let small = small.clone();
            reg.node("Small", move |_| { small.fetch_add(1, Ordering::Relaxed); NodeOutcome::Ok });
        }
        {
            let big = big.clone();
            reg.node("Big", move |_| { big.fetch_add(1, Ordering::Relaxed); NodeOutcome::Ok });
        }
        reg.node("Done", |_| NodeOutcome::Ok);
        {
            let failed = failed.clone();
            reg.node("Fail", move |_| { failed.fetch_add(1, Ordering::Relaxed); NodeOutcome::Ok });
        }
        let server = Arc::new(FluxServer::new(program, reg).unwrap());
        let handle = start(server.clone(), RuntimeKind::ThreadPool { workers: pool });
        handle.join();
        prop_assert_eq!(server.stats.finished(), total);
        let s = small.load(Ordering::Relaxed);
        let b = big.load(Ordering::Relaxed);
        let f = failed.load(Ordering::Relaxed);
        prop_assert_eq!(s + b + f, total, "every flow routed exactly once");
        let expect_failed = (0..total).filter(|n| n % err_mod == 0).count() as u64;
        prop_assert_eq!(f, expect_failed);
        let expect_small = (0..total)
            .filter(|n| n % err_mod != 0 && *n < small_cut)
            .count() as u64;
        prop_assert_eq!(s, expect_small);
    }
}
