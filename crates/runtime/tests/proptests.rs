//! Property-based tests for the runtime: lock-manager invariants under
//! random interleavings, and flow accounting across runtimes for random
//! programs.

use flux_core::ConstraintMode;
use flux_runtime::{
    start, FluxServer, FusionMode, NodeOutcome, NodeRegistry, ReentrantRwLock, RuntimeKind,
    SourceOutcome,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random sequences of acquire/release on one flow never deadlock
    /// and always leave the lock free (single-flow reentrancy model).
    #[test]
    fn single_flow_lock_sequences(ops in proptest::collection::vec(any::<bool>(), 0..40)) {
        let lock = ReentrantRwLock::new();
        let mut held: Vec<ConstraintMode> = Vec::new();
        for op in ops {
            // Acquire while we can, release otherwise; mode choice must
            // avoid the (compiler-prevented) read->write upgrade.
            let writer_held = held.contains(&ConstraintMode::Writer);
            if op || held.is_empty() {
                let mode = if held.is_empty() {
                    if op { ConstraintMode::Writer } else { ConstraintMode::Reader }
                } else if writer_held {
                    // Re-acquire either way under a writer.
                    if op { ConstraintMode::Writer } else { ConstraintMode::Reader }
                } else {
                    ConstraintMode::Reader
                };
                prop_assert!(lock.try_acquire(1, mode));
                held.push(mode);
            } else if let Some(mode) = held.pop() {
                lock.release(1, mode);
            }
        }
        for mode in held.into_iter().rev() {
            lock.release(1, mode);
        }
        // Fully released: another flow can take a writer.
        prop_assert!(lock.try_acquire(2, ConstraintMode::Writer));
    }

    /// A randomly-shaped dispatch program completes every flow on every
    /// runtime with consistent outcome accounting.
    #[test]
    fn random_dispatch_flow_accounting(
        total in 1u64..120,
        err_mod in 2u64..9,
        small_cut in 1u64..100,
        pool in 1usize..6,
    ) {
        const SRC: &str = "
            Gen () => (int n);
            Check (int n) => (int n);
            Small (int n) => (int n);
            Big (int n) => (int n);
            Done (int n) => ();
            Fail (int n) => ();
            typedef small IsSmall;
            source Gen => Flow;
            Flow = Check -> Route -> Done;
            Route:[small] = Small;
            Route:[_] = Big;
            handle error Check => Fail;
            atomic Done: {tally};
        ";
        let program = flux_core::compile(SRC).unwrap();
        let produced = AtomicU64::new(0);
        let small = Arc::new(AtomicU64::new(0));
        let big = Arc::new(AtomicU64::new(0));
        let failed = Arc::new(AtomicU64::new(0));
        let mut reg: NodeRegistry<u64> = NodeRegistry::new();
        reg.source("Gen", move || {
            let i = produced.fetch_add(1, Ordering::SeqCst);
            if i >= total { SourceOutcome::Shutdown } else { SourceOutcome::New(i) }
        });
        let em = err_mod;
        reg.node("Check", move |n: &mut u64| {
            if (*n).is_multiple_of(em) { NodeOutcome::Err(1) } else { NodeOutcome::Ok }
        });
        let sc = small_cut;
        reg.predicate("IsSmall", move |n: &u64| *n < sc);
        {
            let small = small.clone();
            reg.node("Small", move |_| { small.fetch_add(1, Ordering::Relaxed); NodeOutcome::Ok });
        }
        {
            let big = big.clone();
            reg.node("Big", move |_| { big.fetch_add(1, Ordering::Relaxed); NodeOutcome::Ok });
        }
        reg.node("Done", |_| NodeOutcome::Ok);
        {
            let failed = failed.clone();
            reg.node("Fail", move |_| { failed.fetch_add(1, Ordering::Relaxed); NodeOutcome::Ok });
        }
        let server = Arc::new(FluxServer::new(program, reg).unwrap());
        let handle = start(server.clone(), RuntimeKind::ThreadPool { workers: pool });
        handle.join();
        prop_assert_eq!(server.stats.finished(), total);
        let s = small.load(Ordering::Relaxed);
        let b = big.load(Ordering::Relaxed);
        let f = failed.load(Ordering::Relaxed);
        prop_assert_eq!(s + b + f, total, "every flow routed exactly once");
        let expect_failed = (0..total).filter(|n| n % err_mod == 0).count() as u64;
        prop_assert_eq!(f, expect_failed);
        let expect_small = (0..total)
            .filter(|n| n % err_mod != 0 && *n < small_cut)
            .count() as u64;
        prop_assert_eq!(s, expect_small);
    }

    /// Differential oracle for stage fusion: random programs (variable
    /// chain length, erroring stage position, dispatch cut) driven by
    /// random scripts must be observation-equivalent under
    /// `FusionMode::On` and `FusionMode::Off` — identical node
    /// execution order, identical flow outcomes, and bit-identical
    /// Ball–Larus path profiles (same path ids, same counts). Acquire
    /// vertices never fuse and fused `Release` ops replay the same
    /// profiling edges per vertex, so an identical vertex walk (which
    /// identical path sums prove) implies the identical lock
    /// acquire/release sequence too.
    #[test]
    fn fused_matches_unfused_execution(
        chain in 1usize..4,
        err_stage in 0usize..4,
        total in 1u64..60,
        err_mod in 2u64..9,
        small_cut in 1u64..60,
    ) {
        let err_stage = err_stage % chain;
        // Gen -> S0 -> ... -> S{chain-1} -> Route -> Done, with an
        // error handler on a random stage (mid-segment when > 0) and a
        // constrained Done so Acquire/Release boundaries are in play.
        let mut src = String::from(
            "Gen () => (int n);\n\
             Small (int n) => (int n);\n\
             Big (int n) => (int n);\n\
             Done (int n) => ();\n\
             Fail (int n) => ();\n\
             typedef small IsSmall;\n\
             source Gen => Flow;\n",
        );
        for i in 0..chain {
            src.push_str(&format!("S{i} (int n) => (int n);\n"));
        }
        let stages: Vec<String> = (0..chain).map(|i| format!("S{i}")).collect();
        src.push_str(&format!("Flow = {} -> Route -> Done;\n", stages.join(" -> ")));
        src.push_str("Route:[small] = Small;\nRoute:[_] = Big;\n");
        src.push_str(&format!("handle error S{err_stage} => Fail;\n"));
        src.push_str("atomic Done: {tally};\n");

        let run = |fusion: FusionMode| {
            let program = flux_core::compile(&src).unwrap();
            let events = Arc::new(parking_lot::Mutex::new(Vec::<String>::new()));
            let mut reg: NodeRegistry<u64> = NodeRegistry::new();
            reg.source("Gen", || SourceOutcome::Shutdown);
            let em = err_mod;
            for (i, name) in stages.iter().enumerate() {
                let ev = events.clone();
                let name2 = name.clone();
                let errs_here = i == err_stage;
                reg.node(name, move |n: &mut u64| {
                    ev.lock().push(name2.clone());
                    if errs_here && (*n).is_multiple_of(em) {
                        NodeOutcome::Err(1)
                    } else {
                        NodeOutcome::Ok
                    }
                });
            }
            let sc = small_cut;
            reg.predicate("IsSmall", move |n: &u64| *n < sc);
            for name in ["Small", "Big", "Done", "Fail"] {
                let ev = events.clone();
                reg.node(name, move |_| {
                    ev.lock().push(name.into());
                    NodeOutcome::Ok
                });
            }
            let server = FluxServer::with_options(program, reg, true, fusion).unwrap();
            assert_eq!(server.fusion_mode(), fusion, "env unset in proptests");
            let mut ends = Vec::new();
            for n in 0..total {
                let cursor = server.new_cursor(0, &n);
                ends.push(server.run_flow(cursor, n));
            }
            let report = server.profiler().unwrap().report(
                server.program(),
                0,
                flux_runtime::HotOrder::ByCount,
            );
            let paths: Vec<(u64, u64)> = report.iter().map(|p| (p.info.id, p.count)).collect();
            let max_execs = server.max_segment_execs();
            let trace = events.lock().clone();
            (trace, ends, paths, max_execs)
        };

        let fused = run(FusionMode::On);
        let unfused = run(FusionMode::Off);
        prop_assert_eq!(&fused.0, &unfused.0, "node execution order diverged");
        prop_assert_eq!(&fused.1, &unfused.1, "flow outcomes diverged");
        prop_assert_eq!(&fused.2, &unfused.2, "path profiles diverged");
        prop_assert_eq!(unfused.3, 1, "unfused interpreter has no segments");
        if chain >= 2 {
            prop_assert!(fused.3 >= 2, "S-chain of {} must fuse", chain);
        }
    }
}
