//! Discrete-event simulation core: the event calendar and the random
//! distributions the performance model draws from (our CSIM substitute).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation time, in seconds.
pub type SimTime = f64;

/// An entry in the event calendar.
#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    /// Tie-breaker preserving schedule order at equal times.
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A minimal event calendar: schedule events at absolute times, pop them
/// in time order.
#[derive(Debug)]
pub struct Calendar<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    seq: u64,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    pub fn new() -> Self {
        Calendar {
            heap: BinaryHeap::new(),
            now: 0.0,
            seq: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at` (clamped to now).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let time = if at < self.now { self.now } else { at };
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedules `event` after `delay` seconds.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        let at = self.now + delay.max(0.0);
        self.schedule_at(at, event);
    }

    /// Pops the next event, advancing the clock.
    pub fn next(&mut self) -> Option<E> {
        let s = self.heap.pop()?;
        debug_assert!(s.time >= self.now, "time went backwards");
        self.now = s.time;
        Some(s.event)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Service/arrival distributions (the paper uses exponential service
/// times parameterized by observed means, and both open-loop
/// deterministic and Poisson arrivals).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dist {
    /// Always exactly `mean` (useful for calibration tests).
    Deterministic(f64),
    /// Exponential with the given mean.
    Exponential(f64),
    /// Uniform over `[lo, hi]`.
    Uniform(f64, f64),
}

impl Dist {
    /// Draws one sample, never negative.
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        match *self {
            Dist::Deterministic(m) => m.max(0.0),
            Dist::Exponential(mean) => {
                if mean <= 0.0 {
                    return 0.0;
                }
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                -mean * u.ln()
            }
            Dist::Uniform(lo, hi) => {
                if hi <= lo {
                    lo.max(0.0)
                } else {
                    rng.gen_range(lo..hi).max(0.0)
                }
            }
        }
    }

    /// The distribution's mean.
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Deterministic(m) => m,
            Dist::Exponential(m) => m,
            Dist::Uniform(lo, hi) => (lo + hi) / 2.0,
        }
    }
}

/// Creates a seeded RNG for reproducible simulations.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calendar_pops_in_time_order() {
        let mut c: Calendar<u32> = Calendar::new();
        c.schedule_at(3.0, 3);
        c.schedule_at(1.0, 1);
        c.schedule_at(2.0, 2);
        assert_eq!(c.next(), Some(1));
        assert_eq!(c.now(), 1.0);
        assert_eq!(c.next(), Some(2));
        assert_eq!(c.next(), Some(3));
        assert_eq!(c.now(), 3.0);
        assert!(c.next().is_none());
    }

    #[test]
    fn equal_times_preserve_fifo() {
        let mut c: Calendar<u32> = Calendar::new();
        for i in 0..10 {
            c.schedule_at(5.0, i);
        }
        for i in 0..10 {
            assert_eq!(c.next(), Some(i));
        }
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut c: Calendar<&str> = Calendar::new();
        c.schedule_at(10.0, "a");
        assert_eq!(c.next(), Some("a"));
        c.schedule_in(5.0, "b");
        assert_eq!(c.next(), Some("b"));
        assert_eq!(c.now(), 15.0);
    }

    #[test]
    fn past_events_clamped_to_now() {
        let mut c: Calendar<&str> = Calendar::new();
        c.schedule_at(10.0, "a");
        c.next();
        c.schedule_at(1.0, "late");
        assert_eq!(c.next(), Some("late"));
        assert_eq!(c.now(), 10.0);
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = rng(42);
        let d = Dist::Exponential(2.5);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut r)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.5).abs() < 0.05, "sample mean {mean}");
    }

    #[test]
    fn deterministic_is_exact() {
        let mut r = rng(1);
        assert_eq!(Dist::Deterministic(0.5).sample(&mut r), 0.5);
        assert_eq!(Dist::Deterministic(-1.0).sample(&mut r), 0.0);
    }

    #[test]
    fn uniform_in_bounds() {
        let mut r = rng(7);
        let d = Dist::Uniform(1.0, 2.0);
        for _ in 0..1000 {
            let x = d.sample(&mut r);
            assert!((1.0..2.0).contains(&x));
        }
    }

    #[test]
    fn seeded_rng_reproducible() {
        let d = Dist::Exponential(1.0);
        let a: Vec<f64> = {
            let mut r = rng(99);
            (0..10).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = rng(99);
            (0..10).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
