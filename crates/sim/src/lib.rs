//! # flux-sim — discrete-event performance prediction for Flux programs
//!
//! The Flux compiler can transform a program into a discrete-event
//! simulator that predicts server performance under synthetic workloads
//! and different hardware (paper §5.1, Figure 6). The paper generated
//! CSIM code; this crate is the executable equivalent: a from-scratch
//! DES engine that interprets the same flattened flow graphs the
//! runtimes execute, against a k-server CPU resource and reader-writer
//! lock resources, parameterized by observed or estimated node service
//! times, branch probabilities and arrival rates.
//!
//! ```
//! use flux_sim::{FluxSimulation, SimConfig};
//! use flux_core::model::ModelParams;
//!
//! let program = flux_core::compile(flux_core::fixtures::IMAGE_SERVER).unwrap();
//! let mut params = ModelParams::uniform(&program, 0.001, 0.01);
//! params.set_node_service(&program, "Compress", 0.05);
//! params.set_dispatch_probs(&program, "Handler", &[0.7, 0.3]);
//! let report = FluxSimulation::new(&program, params, SimConfig {
//!     cpus: 4,
//!     duration_s: 10.0,
//!     warmup_s: 1.0,
//!     ..SimConfig::default()
//! }).run();
//! assert!(report.completed > 0);
//! ```

pub mod engine;
pub mod model;

pub use engine::{Calendar, Dist, SimTime};
pub use model::{FluxSimulation, SimConfig, SimReport};
