//! The Flux performance model: replays a compiled program's flattened
//! flows against CPU and lock resources (paper §5.1).
//!
//! "CPUs are modeled as resources that each Flux node acquires for a
//! given amount of time. ... The simulator can model an arbitrary number
//! of processors by increasing the number of nodes that may
//! simultaneously acquire the CPU resource. When a node uses a given
//! atomicity constraint, it treats it as a lock and acquires it for the
//! duration of the node's execution. While the simulator accurately
//! models both reader and writer constraints, it conservatively treats
//! session-level constraints as globals." Disk and network resources
//! are, as in the paper, not modeled.

use crate::engine::{rng, Calendar, Dist, SimTime};
use flux_core::model::ModelParams;
use flux_core::{CompiledProgram, ConstraintMode, ConstraintScope, EndKind, FlatVertex};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{HashMap, VecDeque};

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of processors (k-server CPU resource).
    pub cpus: usize,
    /// Simulated duration in seconds (after warmup).
    pub duration_s: f64,
    /// Warmup period excluded from statistics.
    pub warmup_s: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
    /// Draw service times from exponential distributions around the
    /// observed means (the paper's choice); `false` makes them
    /// deterministic.
    pub exponential_service: bool,
    /// Draw inter-arrival gaps from an exponential (Poisson arrivals);
    /// `false` gives the paper's fixed-rate load tester (one request per
    /// 1/n seconds).
    pub poisson_arrivals: bool,
    /// Model `(session)`-scoped constraints as one lock per session.
    ///
    /// The paper's simulator "conservatively treats session-level
    /// constraints as globals" (§5.1) and lists per-session simulator
    /// support as future work (§8); this flag implements that extension.
    /// `false` (the default) reproduces the paper's conservative
    /// treatment.
    pub session_aware: bool,
    /// Number of distinct concurrently-active sessions that arriving
    /// flows are drawn from (uniformly) when `session_aware` is set.
    /// Ignored — and no randomness is consumed — when `session_aware` is
    /// off or `sessions <= 1`, so conservative runs reproduce exactly.
    pub sessions: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cpus: 1,
            duration_s: 60.0,
            warmup_s: 5.0,
            seed: 0x5eed,
            exponential_service: true,
            poisson_arrivals: false,
            session_aware: false,
            sessions: 1,
        }
    }
}

/// Results of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Flows completed during the measured window.
    pub completed: u64,
    /// Flows that ended on an error/no-match path.
    pub errored: u64,
    /// Completions per second.
    pub throughput: f64,
    /// Mean end-to-end flow latency in seconds.
    pub mean_latency_s: f64,
    /// Latency percentiles (p50, p95, p99) in seconds.
    pub p50_s: f64,
    pub p95_s: f64,
    pub p99_s: f64,
    /// Fraction of CPU capacity used during the measured window.
    pub cpu_utilization: f64,
    /// Mean number of flows in the system (Little's law check).
    pub mean_in_flight: f64,
}

/// Index of a live flow in the simulation's slab.
type FlowRef = usize;

#[derive(Debug)]
struct SimFlow {
    flow_idx: usize,
    vertex: usize,
    started: SimTime,
    acquire_progress: usize,
    held: Vec<(usize, ConstraintMode)>,
    /// Session id drawn at arrival; keys `(session)` locks when the
    /// simulation is session-aware.
    session: u64,
}

#[derive(Debug)]
enum Ev {
    /// A new flow arrives from source `flow_idx`.
    Arrival { flow_idx: usize },
    /// Process the flow's current vertex.
    Advance { flow: FlowRef },
    /// The flow's CPU hold for its current Exec vertex finished.
    ServiceDone { flow: FlowRef },
}

#[derive(Debug, Default)]
struct SimLockState {
    writer: Option<FlowRef>,
    writer_depth: usize,
    readers: HashMap<FlowRef, usize>,
    waiters: VecDeque<(FlowRef, ConstraintMode)>,
}

/// The discrete-event simulator for one compiled program.
pub struct FluxSimulation<'p> {
    program: &'p CompiledProgram,
    params: ModelParams,
    config: SimConfig,
}

impl<'p> FluxSimulation<'p> {
    /// Creates a simulation of `program` under `params`.
    pub fn new(program: &'p CompiledProgram, params: ModelParams, config: SimConfig) -> Self {
        FluxSimulation {
            program,
            params,
            config,
        }
    }

    /// Runs the simulation to completion and reports.
    pub fn run(&self) -> SimReport {
        Runner::new(self.program, &self.params, &self.config).run()
    }
}

struct Runner<'p> {
    program: &'p CompiledProgram,
    params: &'p ModelParams,
    cfg: &'p SimConfig,
    cal: Calendar<Ev>,
    rng: StdRng,
    flows: Vec<Option<SimFlow>>,
    free: Vec<FlowRef>,
    // Lock table: program-scoped constraints (and, by default, session
    // ones — the paper's conservative treatment) key on the constraint
    // name alone (session key 0); with `session_aware`, `(session)`
    // constraints key on (name, session) with lock states created lazily.
    name_ids: HashMap<String, usize>,
    lock_table: HashMap<(usize, u64), usize>,
    locks: Vec<SimLockState>,
    // CPU resource.
    cpu_busy: usize,
    cpu_queue: VecDeque<FlowRef>,
    busy_integral: f64,
    last_busy_change: SimTime,
    inflight_integral: f64,
    last_inflight_change: SimTime,
    in_flight: usize,
    // Stats (collected only after warmup).
    completed: u64,
    errored: u64,
    latencies: Vec<f64>,
    end_at: SimTime,
}

impl<'p> Runner<'p> {
    fn new(program: &'p CompiledProgram, params: &'p ModelParams, cfg: &'p SimConfig) -> Self {
        let mut name_ids = HashMap::new();
        for node in &program.graph.nodes {
            for c in &node.constraints {
                let next = name_ids.len();
                name_ids.entry(c.name.clone()).or_insert(next);
            }
        }
        Runner {
            program,
            params,
            cfg,
            cal: Calendar::new(),
            rng: rng(cfg.seed),
            flows: Vec::new(),
            free: Vec::new(),
            name_ids,
            lock_table: HashMap::new(),
            locks: Vec::new(),
            cpu_busy: 0,
            cpu_queue: VecDeque::new(),
            busy_integral: 0.0,
            last_busy_change: 0.0,
            inflight_integral: 0.0,
            last_inflight_change: 0.0,
            in_flight: 0,
            completed: 0,
            errored: 0,
            latencies: Vec::new(),
            end_at: cfg.warmup_s + cfg.duration_s,
        }
    }

    fn arrival_dist(&self, fi: usize) -> Dist {
        let mean = self.params.flows[fi].interarrival_mean_s;
        if self.cfg.poisson_arrivals {
            Dist::Exponential(mean)
        } else {
            Dist::Deterministic(mean)
        }
    }

    fn service_dist(&self, fi: usize, vid: usize) -> Dist {
        let mean = self.params.flows[fi]
            .service_mean_s
            .get(&vid)
            .copied()
            .unwrap_or(0.0);
        if self.cfg.exponential_service {
            Dist::Exponential(mean)
        } else {
            Dist::Deterministic(mean)
        }
    }

    fn run(mut self) -> SimReport {
        for fi in 0..self.program.flows.len() {
            if self.params.flows[fi].interarrival_mean_s > 0.0 {
                let d = self.arrival_dist(fi).sample(&mut self.rng);
                self.cal.schedule_in(d, Ev::Arrival { flow_idx: fi });
            }
        }
        while let Some(ev) = self.cal.next() {
            if self.cal.now() > self.end_at {
                break;
            }
            match ev {
                Ev::Arrival { flow_idx } => self.on_arrival(flow_idx),
                Ev::Advance { flow } => self.advance(flow),
                Ev::ServiceDone { flow } => self.on_service_done(flow),
            }
        }
        self.report()
    }

    fn track_busy(&mut self, delta: isize) {
        let now = self.cal.now();
        self.busy_integral += self.cpu_busy as f64 * (now - self.last_busy_change).max(0.0);
        self.last_busy_change = now;
        self.cpu_busy = (self.cpu_busy as isize + delta) as usize;
    }

    fn track_inflight(&mut self, delta: isize) {
        let now = self.cal.now();
        self.inflight_integral +=
            self.in_flight as f64 * (now - self.last_inflight_change).max(0.0);
        self.last_inflight_change = now;
        self.in_flight = (self.in_flight as isize + delta) as usize;
    }

    /// The lock-table index for constraint `name` as seen by a flow in
    /// `session`, honouring the session-awareness configuration.
    fn lock_index(&mut self, name: &str, scope: ConstraintScope, session: u64) -> usize {
        let nid = self.name_ids[name];
        let skey = match scope {
            ConstraintScope::Session if self.cfg.session_aware => session,
            _ => 0,
        };
        *self.lock_table.entry((nid, skey)).or_insert_with(|| {
            self.locks.push(SimLockState::default());
            self.locks.len() - 1
        })
    }

    fn on_arrival(&mut self, fi: usize) {
        // Schedule the next arrival first (open-loop source).
        let gap = self.arrival_dist(fi).sample(&mut self.rng);
        self.cal.schedule_in(gap, Ev::Arrival { flow_idx: fi });

        // Only consume randomness when the session actually matters, so
        // conservative runs reproduce bit-for-bit under the same seed.
        let session = if self.cfg.session_aware && self.cfg.sessions > 1 {
            self.rng.gen_range(0..self.cfg.sessions as u64)
        } else {
            0
        };
        let flow = SimFlow {
            flow_idx: fi,
            vertex: self.program.flows[fi].flat.entry,
            started: self.cal.now(),
            acquire_progress: 0,
            held: Vec::new(),
            session,
        };
        let fref = match self.free.pop() {
            Some(i) => {
                self.flows[i] = Some(flow);
                i
            }
            None => {
                self.flows.push(Some(flow));
                self.flows.len() - 1
            }
        };
        self.track_inflight(1);
        self.cal.schedule_in(0.0, Ev::Advance { flow: fref });
    }

    fn advance(&mut self, fref: FlowRef) {
        let Some(flow) = self.flows[fref].as_ref() else {
            return;
        };
        let fi = flow.flow_idx;
        let vid = flow.vertex;
        let vert = self.program.flows[fi].flat.verts[vid].clone();
        match vert {
            FlatVertex::Acquire { node, next } => {
                let cs = self.program.graph.nodes[node].constraints.clone();
                let session = self.flows[fref].as_ref().unwrap().session;
                loop {
                    let progress = self.flows[fref].as_ref().unwrap().acquire_progress;
                    if progress >= cs.len() {
                        let f = self.flows[fref].as_mut().unwrap();
                        f.acquire_progress = 0;
                        f.vertex = next;
                        self.cal.schedule_in(0.0, Ev::Advance { flow: fref });
                        return;
                    }
                    let c = &cs[progress];
                    let lid = self.lock_index(&c.name, c.scope, session);
                    if self.try_lock(lid, fref, c.mode) {
                        let f = self.flows[fref].as_mut().unwrap();
                        f.held.push((lid, c.mode));
                        f.acquire_progress += 1;
                    } else {
                        self.locks[lid].waiters.push_back((fref, c.mode));
                        return; // parked; release will re-schedule us
                    }
                }
            }
            FlatVertex::Release { node, next } => {
                let n = self.program.graph.nodes[node].constraints.len();
                for _ in 0..n {
                    let (lid, mode) = self.flows[fref].as_mut().unwrap().held.pop().unwrap();
                    self.unlock(lid, fref, mode);
                }
                self.flows[fref].as_mut().unwrap().vertex = next;
                self.cal.schedule_in(0.0, Ev::Advance { flow: fref });
            }
            FlatVertex::Exec { .. } => {
                let mean = self.params.flows[fi]
                    .service_mean_s
                    .get(&vid)
                    .copied()
                    .unwrap_or(0.0);
                if mean <= 0.0 {
                    // Zero-cost nodes do not contend for the CPU.
                    self.resolve_exec(fref);
                } else if self.cpu_busy < self.cfg.cpus {
                    self.grant_cpu(fref);
                } else {
                    self.cpu_queue.push_back(fref);
                }
            }
            FlatVertex::Dispatch {
                arms, on_nomatch, ..
            } => {
                let probs = self.params.flows[fi]
                    .arm_probs
                    .get(&vid)
                    .cloned()
                    .unwrap_or_else(|| vec![1.0 / arms.len() as f64; arms.len()]);
                let u: f64 = self.rng.gen_range(0.0..1.0);
                let mut acc = 0.0;
                let mut target = on_nomatch;
                for (arm, p) in arms.iter().zip(&probs) {
                    acc += p;
                    if u < acc {
                        target = arm.entry;
                        break;
                    }
                }
                self.flows[fref].as_mut().unwrap().vertex = target;
                self.cal.schedule_in(0.0, Ev::Advance { flow: fref });
            }
            FlatVertex::End { outcome } => {
                self.finish(fref, outcome);
            }
        }
    }

    fn grant_cpu(&mut self, fref: FlowRef) {
        self.track_busy(1);
        let flow = self.flows[fref].as_ref().unwrap();
        let d = self.service_dist(flow.flow_idx, flow.vertex);
        let t = d.sample(&mut self.rng);
        self.cal.schedule_in(t, Ev::ServiceDone { flow: fref });
    }

    fn on_service_done(&mut self, fref: FlowRef) {
        self.track_busy(-1);
        // Hand the CPU to the next queued flow, if any.
        if let Some(next) = self.cpu_queue.pop_front() {
            self.grant_cpu(next);
        }
        self.resolve_exec(fref);
    }

    /// Takes the success or error edge out of the flow's current `Exec`
    /// vertex after its service completed (or was free).
    fn resolve_exec(&mut self, fref: FlowRef) {
        let flow = self.flows[fref].as_ref().unwrap();
        let fi = flow.flow_idx;
        let vid = flow.vertex;
        let FlatVertex::Exec { on_ok, on_err, .. } = self.program.flows[fi].flat.verts[vid] else {
            unreachable!("ServiceDone on a non-exec vertex");
        };
        let err_p = self.params.flows[fi]
            .error_prob
            .get(&vid)
            .copied()
            .unwrap_or(0.0);
        let errored = err_p > 0.0 && self.rng.gen_range(0.0..1.0) < err_p;
        if errored {
            // Two-phase shrink before the handler chain, as at runtime.
            let held = std::mem::take(&mut self.flows[fref].as_mut().unwrap().held);
            for (lid, mode) in held.into_iter().rev() {
                self.unlock(lid, fref, mode);
            }
            self.flows[fref].as_mut().unwrap().vertex = on_err;
        } else {
            self.flows[fref].as_mut().unwrap().vertex = on_ok;
        }
        self.cal.schedule_in(0.0, Ev::Advance { flow: fref });
    }

    fn finish(&mut self, fref: FlowRef, outcome: EndKind) {
        let held = std::mem::take(&mut self.flows[fref].as_mut().unwrap().held);
        for (lid, mode) in held.into_iter().rev() {
            self.unlock(lid, fref, mode);
        }
        let flow = self.flows[fref].take().unwrap();
        self.free.push(fref);
        self.track_inflight(-1);
        if self.cal.now() >= self.cfg.warmup_s {
            match outcome {
                EndKind::Completed | EndKind::Handled { .. } => self.completed += 1,
                EndKind::Errored { .. } | EndKind::NoMatch { .. } => self.errored += 1,
            }
            self.latencies.push(self.cal.now() - flow.started);
        }
    }

    fn try_lock(&mut self, lid: usize, fref: FlowRef, mode: ConstraintMode) -> bool {
        let s = &mut self.locks[lid];
        match mode {
            ConstraintMode::Writer => {
                if (s.writer.is_none() || s.writer == Some(fref))
                    && s.readers.keys().all(|&r| r == fref)
                {
                    s.writer = Some(fref);
                    s.writer_depth += 1;
                    true
                } else {
                    false
                }
            }
            ConstraintMode::Reader => {
                if s.writer == Some(fref) {
                    s.writer_depth += 1;
                    true
                } else if s.writer.is_none() {
                    *s.readers.entry(fref).or_insert(0) += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    fn unlock(&mut self, lid: usize, fref: FlowRef, mode: ConstraintMode) {
        let s = &mut self.locks[lid];
        let freed = if s.writer == Some(fref) {
            s.writer_depth -= 1;
            if s.writer_depth == 0 {
                s.writer = None;
                true
            } else {
                false
            }
        } else {
            match mode {
                ConstraintMode::Reader => {
                    let d = s.readers.get_mut(&fref).expect("reader held");
                    *d -= 1;
                    if *d == 0 {
                        s.readers.remove(&fref);
                        true
                    } else {
                        false
                    }
                }
                ConstraintMode::Writer => unreachable!("writer release without ownership"),
            }
        };
        if freed {
            // FIFO handoff: wake the head waiter; if it is a reader, wake
            // the consecutive readers behind it too (they can share). A
            // woken flow retries its Acquire vertex and re-parks if an
            // intervening arrival beat it to the lock.
            let s = &mut self.locks[lid];
            if let Some((w, m)) = s.waiters.pop_front() {
                self.cal.schedule_in(0.0, Ev::Advance { flow: w });
                if m == ConstraintMode::Reader {
                    while let Some(&(r, ConstraintMode::Reader)) = s.waiters.front() {
                        s.waiters.pop_front();
                        self.cal.schedule_in(0.0, Ev::Advance { flow: r });
                    }
                }
            }
        }
    }

    fn report(mut self) -> SimReport {
        let now = self.cal.now().min(self.end_at);
        self.busy_integral += self.cpu_busy as f64 * (now - self.last_busy_change).max(0.0);
        self.inflight_integral +=
            self.in_flight as f64 * (now - self.last_inflight_change).max(0.0);
        let window = (now - self.cfg.warmup_s).max(1e-9);
        self.latencies
            .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let pct = |v: &Vec<f64>, q: f64| -> f64 {
            if v.is_empty() {
                0.0
            } else {
                v[((v.len() as f64 - 1.0) * q).round() as usize]
            }
        };
        let mean = if self.latencies.is_empty() {
            0.0
        } else {
            self.latencies.iter().sum::<f64>() / self.latencies.len() as f64
        };
        SimReport {
            completed: self.completed,
            errored: self.errored,
            throughput: self.completed as f64 / window,
            mean_latency_s: mean,
            p50_s: pct(&self.latencies, 0.50),
            p95_s: pct(&self.latencies, 0.95),
            p99_s: pct(&self.latencies, 0.99),
            cpu_utilization: self.busy_integral / (now.max(1e-9) * self.cfg.cpus as f64),
            mean_in_flight: self.inflight_integral / now.max(1e-9),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_core::model::ModelParams;

    const CHAIN: &str = "
        Gen () => (int v);
        Work (int v) => (int v);
        Out (int v) => ();
        Flow = Work -> Out;
        source Gen => Flow;
    ";

    fn sim(
        src: &str,
        edit: impl FnOnce(&CompiledProgram, &mut ModelParams),
        cfg: SimConfig,
    ) -> SimReport {
        let p = flux_core::compile(src).unwrap();
        let mut params = ModelParams::uniform(&p, 0.0, 0.01);
        edit(&p, &mut params);
        FluxSimulation::new(&p, params, cfg).run()
    }

    /// M/M/1 sanity: λ=50/s, μ=100/s → ρ=0.5, mean sojourn 1/(μ-λ)=20ms.
    #[test]
    fn mm1_latency_matches_theory() {
        let report = sim(
            CHAIN,
            |p, m| {
                m.flows[0].interarrival_mean_s = 0.02;
                m.set_node_service(p, "Work", 0.01);
                m.set_node_service(p, "Out", 0.0);
            },
            SimConfig {
                cpus: 1,
                duration_s: 400.0,
                warmup_s: 20.0,
                poisson_arrivals: true,
                exponential_service: true,
                ..SimConfig::default()
            },
        );
        assert!((report.cpu_utilization - 0.5).abs() < 0.03, "{report:?}");
        assert!(
            (report.mean_latency_s - 0.020).abs() < 0.003,
            "M/M/1 W = 20ms, got {}",
            report.mean_latency_s
        );
        assert!((report.throughput - 50.0).abs() < 2.0);
    }

    /// Two CPUs double capacity: at λ=150/s, μ=100/s per CPU the system
    /// is stable only with 2 CPUs.
    #[test]
    fn more_cpus_increase_capacity() {
        let run = |cpus| {
            sim(
                CHAIN,
                |p, m| {
                    m.flows[0].interarrival_mean_s = 1.0 / 150.0;
                    m.set_node_service(p, "Work", 0.01);
                    m.set_node_service(p, "Out", 0.0);
                },
                SimConfig {
                    cpus,
                    duration_s: 60.0,
                    warmup_s: 10.0,
                    poisson_arrivals: true,
                    ..SimConfig::default()
                },
            )
        };
        let one = run(1);
        let two = run(2);
        assert!(one.throughput < 110.0, "1 CPU saturates at μ: {one:?}");
        assert!(two.throughput > 140.0, "2 CPUs keep up: {two:?}");
        assert!(two.mean_latency_s < one.mean_latency_s / 5.0);
    }

    /// A writer constraint serializes the constrained node even with many
    /// CPUs: throughput caps at 1/service.
    #[test]
    fn writer_lock_serializes() {
        const LOCKED: &str = "
            Gen () => (int v);
            Work (int v) => (int v);
            Out (int v) => ();
            Flow = Work -> Out;
            source Gen => Flow;
            atomic Work: {state};
        ";
        let report = sim(
            LOCKED,
            |p, m| {
                m.flows[0].interarrival_mean_s = 1.0 / 400.0;
                m.set_node_service(p, "Work", 0.01);
                m.set_node_service(p, "Out", 0.0);
            },
            SimConfig {
                cpus: 16,
                duration_s: 30.0,
                warmup_s: 5.0,
                poisson_arrivals: true,
                ..SimConfig::default()
            },
        );
        assert!(
            report.throughput < 115.0,
            "lock caps at ~100/s, got {}",
            report.throughput
        );
    }

    /// Reader constraints allow parallelism; writers don't.
    #[test]
    fn readers_outscale_writers() {
        const READ: &str = "
            Gen () => (int v);
            Work (int v) => (int v);
            Out (int v) => ();
            Flow = Work -> Out;
            source Gen => Flow;
            atomic Work: {state?};
        ";
        const WRITE: &str = "
            Gen () => (int v);
            Work (int v) => (int v);
            Out (int v) => ();
            Flow = Work -> Out;
            source Gen => Flow;
            atomic Work: {state!};
        ";
        let cfg = SimConfig {
            cpus: 8,
            duration_s: 30.0,
            warmup_s: 5.0,
            poisson_arrivals: true,
            ..SimConfig::default()
        };
        let edit = |p: &CompiledProgram, m: &mut ModelParams| {
            m.flows[0].interarrival_mean_s = 1.0 / 300.0;
            m.set_node_service(p, "Work", 0.01);
            m.set_node_service(p, "Out", 0.0);
        };
        let r = sim(READ, edit, cfg.clone());
        let w = sim(WRITE, edit, cfg);
        assert!(
            r.throughput > w.throughput * 2.0,
            "readers {} vs writers {}",
            r.throughput,
            w.throughput
        );
    }

    /// Dispatch probabilities steer load: with the cheap arm at 100%,
    /// latency collapses versus the expensive arm at 100%.
    #[test]
    fn dispatch_probabilities_respected() {
        const BRANCHY: &str = "
            Gen () => (int v);
            Cheap (int v) => (int v);
            Costly (int v) => (int v);
            Out (int v) => ();
            typedef fast IsFast;
            Route:[fast] = Cheap;
            Route:[_] = Costly;
            Flow = Route -> Out;
            source Gen => Flow;
        ";
        let run = |p_cheap: f64| {
            sim(
                BRANCHY,
                |p, m| {
                    m.flows[0].interarrival_mean_s = 0.02;
                    m.set_node_service(p, "Cheap", 0.0001);
                    m.set_node_service(p, "Costly", 0.015);
                    m.set_node_service(p, "Out", 0.0);
                    m.set_dispatch_probs(p, "Route", &[p_cheap, 1.0 - p_cheap]);
                },
                SimConfig {
                    cpus: 1,
                    duration_s: 120.0,
                    warmup_s: 10.0,
                    poisson_arrivals: true,
                    ..SimConfig::default()
                },
            )
        };
        let cheap = run(1.0);
        let costly = run(0.0);
        assert!(cheap.mean_latency_s < costly.mean_latency_s / 10.0);
    }

    /// Error probability sends flows down the error edge and shortens
    /// them (no downstream service).
    #[test]
    fn error_probability_shortens_flows() {
        let report = sim(
            CHAIN,
            |p, m| {
                m.flows[0].interarrival_mean_s = 0.02;
                m.set_node_service(p, "Work", 0.005);
                m.set_node_service(p, "Out", 0.005);
                m.set_error_prob(p, "Work", 1.0);
            },
            SimConfig {
                cpus: 1,
                duration_s: 30.0,
                warmup_s: 5.0,
                ..SimConfig::default()
            },
        );
        assert_eq!(report.completed, 0, "every flow errors");
        assert!(report.errored > 0);
        assert!(report.mean_latency_s < 0.012, "no Out service after error");
    }

    /// Little's law: N = λ·W must hold within simulation noise.
    #[test]
    fn littles_law_holds() {
        let report = sim(
            CHAIN,
            |p, m| {
                m.flows[0].interarrival_mean_s = 0.02;
                m.set_node_service(p, "Work", 0.012);
                m.set_node_service(p, "Out", 0.0);
            },
            SimConfig {
                cpus: 1,
                duration_s: 300.0,
                warmup_s: 30.0,
                poisson_arrivals: true,
                ..SimConfig::default()
            },
        );
        let n = report.mean_in_flight;
        let lw = report.throughput * report.mean_latency_s;
        assert!(
            (n - lw).abs() / lw.max(1e-9) < 0.15,
            "N={n}, λW={lw}, report={report:?}"
        );
    }

    const SESSION_LOCKED: &str = "
        Gen () => (int v);
        Work (int v) => (int v);
        Out (int v) => ();
        Flow = Work -> Out;
        source Gen => Flow;
        atomic Work: {chunks(session)};
    ";

    fn session_cfg(session_aware: bool, sessions: usize) -> SimConfig {
        SimConfig {
            cpus: 8,
            duration_s: 8.0,
            warmup_s: 2.0,
            poisson_arrivals: true,
            session_aware,
            sessions,
            ..SimConfig::default()
        }
    }

    fn session_edit(p: &CompiledProgram, m: &mut ModelParams) {
        m.flows[0].interarrival_mean_s = 1.0 / 400.0;
        m.set_node_service(p, "Work", 0.01);
        m.set_node_service(p, "Out", 0.0);
    }

    /// §5.1: by default session constraints are conservatively global, so
    /// the session-locked node serializes exactly like a writer lock.
    #[test]
    fn conservative_session_treatment_serializes() {
        let p = flux_core::compile(SESSION_LOCKED).unwrap();
        let mut m = ModelParams::uniform(&p, 0.0, 0.01);
        session_edit(&p, &mut m);
        let r = FluxSimulation::new(&p, m, session_cfg(false, 8)).run();
        assert!(
            r.throughput < 115.0,
            "conservative treatment caps at ~1/service: {r:?}"
        );
    }

    /// §8 extension: session-aware simulation lets distinct sessions
    /// proceed in parallel, lifting throughput toward the CPU bound.
    #[test]
    fn session_awareness_restores_parallelism() {
        let p = flux_core::compile(SESSION_LOCKED).unwrap();
        let run = |aware: bool, sessions: usize| {
            let mut m = ModelParams::uniform(&p, 0.0, 0.01);
            session_edit(&p, &mut m);
            FluxSimulation::new(&p, m, session_cfg(aware, sessions)).run()
        };
        let conservative = run(false, 16);
        let aware = run(true, 16);
        assert!(
            aware.throughput > conservative.throughput * 3.0,
            "16 sessions on 8 CPUs should roughly track the CPU bound: \
             aware {} vs conservative {}",
            aware.throughput,
            conservative.throughput
        );
        // More sessions, more parallelism (up to the CPU count).
        let few = run(true, 2);
        assert!(
            aware.throughput > few.throughput * 1.5,
            "16 sessions {} vs 2 sessions {}",
            aware.throughput,
            few.throughput
        );
    }

    /// Program-scoped constraints are unaffected by session awareness.
    #[test]
    fn session_awareness_ignores_program_constraints() {
        const GLOBAL: &str = "
            Gen () => (int v);
            Work (int v) => (int v);
            Out (int v) => ();
            Flow = Work -> Out;
            source Gen => Flow;
            atomic Work: {state};
        ";
        let p = flux_core::compile(GLOBAL).unwrap();
        let mut m = ModelParams::uniform(&p, 0.0, 0.01);
        session_edit(&p, &mut m);
        let r = FluxSimulation::new(&p, m, session_cfg(true, 16)).run();
        assert!(
            r.throughput < 115.0,
            "a program-wide writer still serializes: {r:?}"
        );
    }

    /// With one session, the session-aware run reproduces the
    /// conservative run bit-for-bit (no extra randomness is consumed).
    #[test]
    fn single_session_matches_conservative_exactly() {
        let p = flux_core::compile(SESSION_LOCKED).unwrap();
        let run = |aware: bool| {
            let mut m = ModelParams::uniform(&p, 0.0, 0.01);
            session_edit(&p, &mut m);
            let cfg = SimConfig {
                duration_s: 10.0,
                ..session_cfg(aware, 1)
            };
            FluxSimulation::new(&p, m, cfg).run()
        };
        let a = run(false);
        let b = run(true);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.mean_latency_s, b.mean_latency_s);
    }

    /// Determinism: same seed, same report.
    #[test]
    fn seeded_runs_reproduce() {
        let go = || {
            sim(
                CHAIN,
                |p, m| {
                    m.flows[0].interarrival_mean_s = 0.02;
                    m.set_node_service(p, "Work", 0.01);
                },
                SimConfig {
                    duration_s: 10.0,
                    warmup_s: 1.0,
                    ..SimConfig::default()
                },
            )
        };
        let a = go();
        let b = go();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.mean_latency_s, b.mean_latency_s);
    }
}
