//! Property tests for the discrete-event simulator: queueing-theory
//! bounds that must hold for any parameterization, and the session-
//! awareness equivalence guarantee.

use flux_core::model::ModelParams;
use flux_core::CompiledProgram;
use flux_sim::{FluxSimulation, SimConfig};
use proptest::prelude::*;

const CHAIN: &str = "
    Gen () => (int v);
    Work (int v) => (int v);
    Out (int v) => ();
    Flow = Work -> Out;
    source Gen => Flow;
";

const SESSION_LOCKED: &str = "
    Gen () => (int v);
    Work (int v) => (int v);
    Out (int v) => ();
    Flow = Work -> Out;
    source Gen => Flow;
    atomic Work: {chunks(session)};
";

fn run(src: &str, service_ms: f64, interarrival_ms: f64, cfg: SimConfig) -> flux_sim::SimReport {
    let p: CompiledProgram = flux_core::compile(src).unwrap();
    let mut m = ModelParams::uniform(&p, 0.0, interarrival_ms / 1e3);
    m.set_node_service(&p, "Work", service_ms / 1e3);
    m.set_node_service(&p, "Out", 0.0);
    FluxSimulation::new(&p, m, cfg).run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Stability bound: for any sub-saturation load, throughput equals
    /// the arrival rate within simulation noise, utilization is
    /// lambda x service, and latency is at least the service time.
    #[test]
    fn subcritical_throughput_matches_arrivals(
        service_ms in 1.0f64..8.0,
        utilization in 0.1f64..0.8,
        seed in 0u64..1024,
    ) {
        let interarrival_ms = service_ms / utilization;
        let report = run(
            CHAIN,
            service_ms,
            interarrival_ms,
            SimConfig {
                cpus: 1,
                duration_s: 60.0,
                warmup_s: 10.0,
                seed,
                poisson_arrivals: true,
                exponential_service: true,
                ..SimConfig::default()
            },
        );
        let lambda = 1e3 / interarrival_ms;
        prop_assert!(
            (report.throughput - lambda).abs() / lambda < 0.15,
            "lambda {lambda}, got {}",
            report.throughput
        );
        prop_assert!(
            (report.cpu_utilization - utilization).abs() < 0.1,
            "rho {utilization}, got {}",
            report.cpu_utilization
        );
        prop_assert!(report.mean_latency_s * 1e3 >= service_ms * 0.8);
        // Little's law within noise.
        let lw = report.throughput * report.mean_latency_s;
        prop_assert!(
            (report.mean_in_flight - lw).abs() / lw.max(1e-9) < 0.3,
            "N {} vs lambda.W {lw}",
            report.mean_in_flight
        );
    }

    /// M/D/1 never has higher mean waiting time than M/M/1 at the same
    /// utilization (Pollaczek-Khinchine: deterministic service halves
    /// the queueing term).
    #[test]
    fn deterministic_service_waits_less_than_exponential(
        utilization in 0.5f64..0.85,
        seed in 0u64..1024,
    ) {
        let service_ms = 4.0;
        let interarrival_ms = service_ms / utilization;
        let cfg = |exponential_service| SimConfig {
            cpus: 1,
            duration_s: 120.0,
            warmup_s: 20.0,
            seed,
            poisson_arrivals: true,
            exponential_service,
            ..SimConfig::default()
        };
        let md1 = run(CHAIN, service_ms, interarrival_ms, cfg(false));
        let mm1 = run(CHAIN, service_ms, interarrival_ms, cfg(true));
        prop_assert!(
            md1.mean_latency_s <= mm1.mean_latency_s * 1.15,
            "M/D/1 {} vs M/M/1 {}",
            md1.mean_latency_s,
            mm1.mean_latency_s
        );
    }

    /// Session awareness with a single session is bit-for-bit identical
    /// to the paper's conservative treatment, for any seed and load.
    #[test]
    fn single_session_equivalence_for_any_seed(
        seed in 0u64..4096,
        service_ms in 1.0f64..10.0,
        interarrival_ms in 2.0f64..20.0,
    ) {
        let cfg = |session_aware| SimConfig {
            cpus: 4,
            duration_s: 20.0,
            warmup_s: 2.0,
            seed,
            poisson_arrivals: true,
            session_aware,
            sessions: 1,
            ..SimConfig::default()
        };
        let a = run(SESSION_LOCKED, service_ms, interarrival_ms, cfg(false));
        let b = run(SESSION_LOCKED, service_ms, interarrival_ms, cfg(true));
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(a.mean_latency_s, b.mean_latency_s);
        prop_assert_eq!(a.cpu_utilization, b.cpu_utilization);
    }

    /// More sessions never hurt: session-aware throughput is monotone
    /// (within noise) in the session count for a session-locked node.
    #[test]
    fn session_throughput_monotone(seed in 0u64..512) {
        let cfg = |sessions| SimConfig {
            cpus: 8,
            duration_s: 20.0,
            warmup_s: 4.0,
            seed,
            poisson_arrivals: true,
            session_aware: true,
            sessions,
            ..SimConfig::default()
        };
        let few = run(SESSION_LOCKED, 10.0, 2.5, cfg(2));
        let many = run(SESSION_LOCKED, 10.0, 2.5, cfg(8));
        prop_assert!(
            many.throughput >= few.throughput * 0.9,
            "sessions 8 {} vs sessions 2 {}",
            many.throughput,
            few.throughput
        );
    }
}
