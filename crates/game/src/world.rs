//! The game of Tag (paper §4.4): world rules and state.
//!
//! "Players can not move beyond the boundaries of the game world. When
//! a player is tagged by the player who is 'it', that player becomes
//! the new 'it' and is teleported to a new random location on the
//! board." The server holds this shared state and broadcasts it at
//! heartbeat intervals (10 Hz).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Board dimensions.
pub const WORLD_W: i32 = 1000;
pub const WORLD_H: i32 = 1000;
/// Two players within this distance are touching.
pub const TAG_RADIUS: i32 = 10;
/// Maximum movement per tick along each axis.
pub const MAX_STEP: i32 = 25;

/// A player's position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    pub x: i32,
    pub y: i32,
}

impl Pos {
    /// Chebyshev-ish squared Euclidean distance.
    pub fn dist2(&self, other: &Pos) -> i64 {
        let dx = (self.x - other.x) as i64;
        let dy = (self.y - other.y) as i64;
        dx * dx + dy * dy
    }
}

/// A move request from a client: desired velocity for this tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Move {
    pub player: u32,
    pub dx: i32,
    pub dy: i32,
}

/// The authoritative game state.
#[derive(Debug, Clone)]
pub struct World {
    players: HashMap<u32, Pos>,
    it: Option<u32>,
    rng: StdRng,
    /// Monotonic tick counter, included in every state broadcast.
    pub tick: u64,
    /// Total tags since the game started.
    pub tags: u64,
}

impl World {
    /// Creates an empty world with a deterministic RNG.
    pub fn new(seed: u64) -> World {
        World {
            players: HashMap::new(),
            it: None,
            rng: StdRng::seed_from_u64(seed),
            tick: 0,
            tags: 0,
        }
    }

    /// Adds a player at a random position; the first player is "it".
    pub fn join(&mut self, player: u32) -> Pos {
        let pos = self.random_pos();
        self.players.insert(player, pos);
        if self.it.is_none() {
            self.it = Some(player);
        }
        pos
    }

    /// Removes a player; if they were "it", the closest remaining player
    /// becomes "it".
    pub fn leave(&mut self, player: u32) {
        self.players.remove(&player);
        if self.it == Some(player) {
            self.it = self.players.keys().next().copied();
        }
    }

    /// Number of players.
    pub fn len(&self) -> usize {
        self.players.len()
    }

    /// True when nobody has joined.
    pub fn is_empty(&self) -> bool {
        self.players.is_empty()
    }

    /// The current "it" player.
    pub fn it(&self) -> Option<u32> {
        self.it
    }

    /// A player's position.
    pub fn pos(&self, player: u32) -> Option<Pos> {
        self.players.get(&player).copied()
    }

    fn random_pos(&mut self) -> Pos {
        Pos {
            x: self.rng.gen_range(0..WORLD_W),
            y: self.rng.gen_range(0..WORLD_H),
        }
    }

    /// Applies one player's move: clamps the step and the board bounds.
    pub fn apply_move(&mut self, m: Move) {
        if let Some(p) = self.players.get_mut(&m.player) {
            let dx = m.dx.clamp(-MAX_STEP, MAX_STEP);
            let dy = m.dy.clamp(-MAX_STEP, MAX_STEP);
            p.x = (p.x + dx).clamp(0, WORLD_W - 1);
            p.y = (p.y + dy).clamp(0, WORLD_H - 1);
        }
    }

    /// Advances one heartbeat: resolves tags, bumps the tick, and
    /// returns the new state snapshot to broadcast.
    pub fn step(&mut self) -> Snapshot {
        if let Some(it) = self.it {
            if let Some(it_pos) = self.players.get(&it).copied() {
                let victim = self
                    .players
                    .iter()
                    .filter(|(&id, _)| id != it)
                    .filter(|(_, p)| p.dist2(&it_pos) <= (TAG_RADIUS as i64).pow(2))
                    .map(|(&id, _)| id)
                    .min(); // deterministic choice
                if let Some(v) = victim {
                    // The tagged player becomes "it" and teleports.
                    self.it = Some(v);
                    self.tags += 1;
                    let pos = self.random_pos();
                    if let Some(p) = self.players.get_mut(&v) {
                        *p = pos;
                    }
                }
            }
        }
        self.tick += 1;
        self.snapshot()
    }

    /// The current state snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let mut players: Vec<(u32, Pos)> = self.players.iter().map(|(&id, &p)| (id, p)).collect();
        players.sort_by_key(|&(id, _)| id);
        Snapshot {
            tick: self.tick,
            it: self.it,
            players,
        }
    }
}

/// A broadcastable state snapshot: identical for every client at a given
/// tick (the paper's consistency requirement).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    pub tick: u64,
    pub it: Option<u32>,
    pub players: Vec<(u32, Pos)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_player_is_it() {
        let mut w = World::new(1);
        w.join(10);
        w.join(20);
        assert_eq!(w.it(), Some(10));
    }

    #[test]
    fn moves_clamped_to_board_and_step() {
        let mut w = World::new(2);
        w.join(1);
        // Try to move far past the board edge.
        for _ in 0..200 {
            w.apply_move(Move {
                player: 1,
                dx: 1000,
                dy: -1000,
            });
        }
        let p = w.pos(1).unwrap();
        assert_eq!(p.x, WORLD_W - 1);
        assert_eq!(p.y, 0);
    }

    #[test]
    fn tagging_transfers_it_and_teleports() {
        let mut w = World::new(3);
        w.join(1);
        w.join(2);
        // Force both players to the same spot by walking player 2 onto
        // player 1.
        let target = w.pos(1).unwrap();
        loop {
            let p2 = w.pos(2).unwrap();
            if p2 == target {
                break;
            }
            w.apply_move(Move {
                player: 2,
                dx: (target.x - p2.x).clamp(-MAX_STEP, MAX_STEP),
                dy: (target.y - p2.y).clamp(-MAX_STEP, MAX_STEP),
            });
        }
        let snap = w.step();
        assert_eq!(snap.it, Some(2), "tagged player becomes it");
        assert_eq!(w.tags, 1);
        // Teleported away (with overwhelming probability not in radius).
        let p2 = w.pos(2).unwrap();
        let p1 = w.pos(1).unwrap();
        assert!(p2.dist2(&p1) > (TAG_RADIUS as i64).pow(2));
    }

    #[test]
    fn leave_reassigns_it() {
        let mut w = World::new(4);
        w.join(1);
        w.join(2);
        w.leave(1);
        assert_eq!(w.it(), Some(2));
        w.leave(2);
        assert_eq!(w.it(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn snapshots_are_deterministic_and_sorted() {
        let mut w = World::new(5);
        for id in [5u32, 1, 9, 3] {
            w.join(id);
        }
        let s = w.snapshot();
        let ids: Vec<u32> = s.players.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![1, 3, 5, 9]);
        assert_eq!(w.snapshot(), w.snapshot());
    }

    #[test]
    fn tick_advances() {
        let mut w = World::new(6);
        w.join(1);
        assert_eq!(w.step().tick, 1);
        assert_eq!(w.step().tick, 2);
    }
}
