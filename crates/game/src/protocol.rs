//! The UDP heartbeat wire protocol: joins, moves and state broadcasts
//! at 10 Hz (paper §4.4). A compact hand-rolled binary format keeps
//! datagrams small, as real game protocols do.

use crate::world::{Move, Pos, Snapshot};

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientMsg {
    /// Join the game; the reply address comes from the datagram source.
    Join { player: u32 },
    /// A movement request for this tick.
    Move(Move),
    /// Leave the game.
    Leave { player: u32 },
}

impl ClientMsg {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            ClientMsg::Join { player } => {
                let mut v = vec![b'J'];
                v.extend_from_slice(&player.to_be_bytes());
                v
            }
            ClientMsg::Move(m) => {
                let mut v = vec![b'M'];
                v.extend_from_slice(&m.player.to_be_bytes());
                v.extend_from_slice(&m.dx.to_be_bytes());
                v.extend_from_slice(&m.dy.to_be_bytes());
                v
            }
            ClientMsg::Leave { player } => {
                let mut v = vec![b'L'];
                v.extend_from_slice(&player.to_be_bytes());
                v
            }
        }
    }

    pub fn decode(data: &[u8]) -> Option<ClientMsg> {
        let u32_at = |i: usize| -> Option<u32> {
            data.get(i..i + 4)
                .map(|b| u32::from_be_bytes(b.try_into().expect("4 bytes")))
        };
        let i32_at = |i: usize| -> Option<i32> {
            data.get(i..i + 4)
                .map(|b| i32::from_be_bytes(b.try_into().expect("4 bytes")))
        };
        match data.first()? {
            b'J' => Some(ClientMsg::Join { player: u32_at(1)? }),
            b'L' => Some(ClientMsg::Leave { player: u32_at(1)? }),
            b'M' => Some(ClientMsg::Move(Move {
                player: u32_at(1)?,
                dx: i32_at(5)?,
                dy: i32_at(9)?,
            })),
            _ => None,
        }
    }
}

/// Serializes a state broadcast: tick, "it", then (id, x, y) triples.
pub fn encode_snapshot(s: &Snapshot) -> Vec<u8> {
    let mut v = Vec::with_capacity(16 + 12 * s.players.len());
    v.push(b'S');
    v.extend_from_slice(&s.tick.to_be_bytes());
    v.extend_from_slice(&s.it.unwrap_or(u32::MAX).to_be_bytes());
    v.extend_from_slice(&(s.players.len() as u32).to_be_bytes());
    for (id, p) in &s.players {
        v.extend_from_slice(&id.to_be_bytes());
        v.extend_from_slice(&p.x.to_be_bytes());
        v.extend_from_slice(&p.y.to_be_bytes());
    }
    v
}

/// Parses a state broadcast.
pub fn decode_snapshot(data: &[u8]) -> Option<Snapshot> {
    if data.first() != Some(&b'S') {
        return None;
    }
    let tick = u64::from_be_bytes(data.get(1..9)?.try_into().ok()?);
    let it_raw = u32::from_be_bytes(data.get(9..13)?.try_into().ok()?);
    let n = u32::from_be_bytes(data.get(13..17)?.try_into().ok()?) as usize;
    let mut players = Vec::with_capacity(n);
    for i in 0..n {
        let base = 17 + 12 * i;
        let id = u32::from_be_bytes(data.get(base..base + 4)?.try_into().ok()?);
        let x = i32::from_be_bytes(data.get(base + 4..base + 8)?.try_into().ok()?);
        let y = i32::from_be_bytes(data.get(base + 8..base + 12)?.try_into().ok()?);
        players.push((id, Pos { x, y }));
    }
    Some(Snapshot {
        tick,
        it: (it_raw != u32::MAX).then_some(it_raw),
        players,
    })
}

/// The heartbeat period: 10 Hz, "a rate comparable to other real-world
/// online games".
pub const TICK_MS: u64 = 100;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_messages_round_trip() {
        for msg in [
            ClientMsg::Join { player: 7 },
            ClientMsg::Leave { player: 7 },
            ClientMsg::Move(Move {
                player: 3,
                dx: -25,
                dy: 10,
            }),
        ] {
            assert_eq!(ClientMsg::decode(&msg.encode()), Some(msg));
        }
    }

    #[test]
    fn snapshot_round_trip() {
        let s = Snapshot {
            tick: 42,
            it: Some(3),
            players: vec![(1, Pos { x: 10, y: 20 }), (3, Pos { x: 500, y: 999 })],
        };
        assert_eq!(decode_snapshot(&encode_snapshot(&s)), Some(s));
    }

    #[test]
    fn snapshot_without_it() {
        let s = Snapshot {
            tick: 1,
            it: None,
            players: vec![],
        };
        assert_eq!(decode_snapshot(&encode_snapshot(&s)), Some(s));
    }

    #[test]
    fn garbage_rejected() {
        assert_eq!(ClientMsg::decode(b""), None);
        assert_eq!(ClientMsg::decode(b"X123"), None);
        assert_eq!(ClientMsg::decode(b"J"), None);
        assert_eq!(decode_snapshot(b"S12"), None);
        assert_eq!(decode_snapshot(b"Q"), None);
    }

    #[test]
    fn truncated_snapshot_rejected() {
        let s = Snapshot {
            tick: 1,
            it: Some(1),
            players: vec![(1, Pos { x: 1, y: 1 })],
        };
        let enc = encode_snapshot(&s);
        assert_eq!(decode_snapshot(&enc[..enc.len() - 1]), None);
    }
}
