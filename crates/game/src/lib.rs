//! # flux-game — the multiplayer Tag substrate (paper §4.4)
//!
//! The heartbeat-style game server's shared state and wire protocol:
//! the Tag world rules (bounded board, tag-and-teleport, "it" transfer)
//! and the compact UDP message format broadcast at 10 Hz. Both the Flux
//! game server and the hand-written baseline build on this crate.

pub mod protocol;
pub mod world;

pub use protocol::{decode_snapshot, encode_snapshot, ClientMsg, TICK_MS};
pub use world::{Move, Pos, Snapshot, World, MAX_STEP, TAG_RADIUS, WORLD_H, WORLD_W};
