//! Minimal in-repo stand-in for the `crossbeam` crate (no crates.io
//! access in the build environment). Implements the MPMC `channel`
//! module subset the workspace uses: `unbounded`, `bounded`, cloneable
//! senders *and* receivers, timeouts, and crossbeam's disconnect
//! semantics (a drained channel with no senders reports disconnected;
//! sending with no receivers fails).

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    impl<T> Inner<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            match self.queue.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }
        }
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// A channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// A channel holding at most `cap` queued messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake blocked receivers so they can
                // observe the disconnect.
                let _guard = self.inner.lock();
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.inner.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                let _guard = self.inner.lock();
                self.inner.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut q = self.inner.lock();
            loop {
                if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(msg));
                }
                match self.inner.cap {
                    Some(cap) if q.len() >= cap => {
                        q = match self.inner.not_full.wait(q) {
                            Ok(g) => g,
                            Err(p) => p.into_inner(),
                        };
                    }
                    _ => break,
                }
            }
            q.push_back(msg);
            drop(q);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut q = self.inner.lock();
            if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = self.inner.cap {
                if q.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            q.push_back(msg);
            drop(q);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        pub fn len(&self) -> usize {
            self.inner.lock().len()
        }

        pub fn is_empty(&self) -> bool {
            self.inner.lock().is_empty()
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.lock();
            loop {
                if let Some(v) = q.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = match self.inner.not_empty.wait(q) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.inner.lock();
            if let Some(v) = q.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if self.inner.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.inner.lock();
            loop {
                if let Some(v) = q.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = match self.inner.not_empty.wait_timeout(q, deadline - now) {
                    Ok(r) => r,
                    Err(p) => p.into_inner(),
                };
                q = guard;
                if res.timed_out() && q.is_empty() {
                    if self.inner.senders.load(Ordering::SeqCst) == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        pub fn len(&self) -> usize {
            self.inner.lock().len()
        }

        pub fn is_empty(&self) -> bool {
            self.inner.lock().is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{self, bounded, unbounded};
    use std::time::Duration;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn disconnect_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn recv_timeout_fires() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn bounded_try_send_full() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert!(matches!(
            tx.try_send(2),
            Err(channel::TrySendError::Full(2))
        ));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
    }

    #[test]
    fn mpmc_receivers_share() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let t = std::thread::spawn(move || {
            let mut n = 0;
            while rx2.recv().is_ok() {
                n += 1;
            }
            n
        });
        let mut n = 0;
        while rx.recv().is_ok() {
            n += 1;
        }
        assert_eq!(n + t.join().unwrap(), 100);
    }
}
