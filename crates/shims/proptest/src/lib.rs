//! Minimal in-repo stand-in for the `proptest` crate (no crates.io
//! access in the build environment). Generation-only property testing:
//! the same `proptest!`/`Strategy` surface the workspace uses, driven by
//! a deterministic per-test RNG. No shrinking — a failing case panics
//! with the rendered assertion, which is enough to reproduce (cases are
//! deterministic per test name and case index).

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// Deterministic test RNG (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E3779B97F4A7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Builds the deterministic RNG for one test function.
pub fn test_rng(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    TestRng::new(h)
}

/// Runner configuration (`cases` is the number of generated inputs).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. Cloneable so strategies compose and recurse.
pub trait Strategy: Clone + 'static {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        let s = self;
        BoxedStrategy {
            gen: Arc::new(move |rng| s.generate(rng)),
        }
    }

    fn prop_map<O, F>(self, f: F) -> BoxedStrategy<O>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O + 'static,
        O: 'static,
    {
        let s = self;
        BoxedStrategy {
            gen: Arc::new(move |rng| f(s.generate(rng))),
        }
    }

    fn prop_flat_map<S, F>(self, f: F) -> BoxedStrategy<S::Value>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S + 'static,
    {
        let s = self;
        BoxedStrategy {
            gen: Arc::new(move |rng| f(s.generate(rng)).generate(rng)),
        }
    }

    /// Recursive strategies: applies `expand` up to `depth` times over
    /// the leaf strategy. Generation-only, so `_size`/`_branch` hints
    /// are unused.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _size: u32,
        _branch: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        S: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut cur = self.boxed();
        for _ in 0..depth {
            cur = expand(cur).boxed();
        }
        cur
    }
}

/// Type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T> {
    gen: Arc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: self.gen.clone(),
        }
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub fn union<T: 'static>(alts: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!alts.is_empty(), "prop_oneof! needs at least one arm");
    BoxedStrategy {
        gen: Arc::new(move |rng| {
            let k = rng.below(alts.len() as u64) as usize;
            alts[k].generate(rng)
        }),
    }
}

// ---- primitive strategies --------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = self.clone().into_inner();
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// `&str` strategies are regex-subset generators: literals, `[...]`
/// character classes (ranges, `\n`/`\t`/`\\` escapes) and `{m}`/`{m,n}`
/// repetition — the subset this workspace's tests use.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_regex(self, rng)
    }
}

enum RegexAtom {
    Literal(char),
    Class(Vec<(char, char)>),
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    let mut pending: Option<char> = None;
    while let Some(c) = chars.next() {
        match c {
            ']' => break,
            '-' if pending.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                let lo = pending.take().expect("checked");
                let hi = chars.next().expect("peeked");
                ranges.push((lo, hi));
            }
            '\\' => {
                if let Some(p) = pending.take() {
                    ranges.push((p, p));
                }
                let esc = chars.next().unwrap_or('\\');
                let lit = match esc {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                };
                pending = Some(lit);
            }
            other => {
                if let Some(p) = pending.take() {
                    ranges.push((p, p));
                }
                pending = Some(other);
            }
        }
    }
    if let Some(p) = pending {
        ranges.push((p, p));
    }
    ranges
}

fn generate_from_regex(pattern: &str, rng: &mut TestRng) -> String {
    let mut chars = pattern.chars().peekable();
    let mut atoms: Vec<(RegexAtom, usize, usize)> = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => RegexAtom::Class(parse_class(&mut chars)),
            '\\' => {
                let esc = chars.next().unwrap_or('\\');
                RegexAtom::Literal(match esc {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                })
            }
            other => RegexAtom::Literal(other),
        };
        let (mut lo, mut hi) = (1usize, 1usize);
        if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((a, b)) => {
                    lo = a.trim().parse().unwrap_or(0);
                    hi = b.trim().parse().unwrap_or(lo);
                }
                None => {
                    lo = spec.trim().parse().unwrap_or(1);
                    hi = lo;
                }
            }
        } else if chars.peek() == Some(&'*') {
            chars.next();
            lo = 0;
            hi = 8;
        } else if chars.peek() == Some(&'+') {
            chars.next();
            lo = 1;
            hi = 8;
        } else if chars.peek() == Some(&'?') {
            chars.next();
            lo = 0;
            hi = 1;
        }
        atoms.push((atom, lo, hi));
    }
    let mut out = String::new();
    for (atom, lo, hi) in atoms {
        let n = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..n {
            match &atom {
                RegexAtom::Literal(c) => out.push(*c),
                RegexAtom::Class(ranges) => {
                    let total: u64 = ranges
                        .iter()
                        .map(|(a, b)| (*b as u64).saturating_sub(*a as u64) + 1)
                        .sum();
                    let mut pick = rng.below(total.max(1));
                    for (a, b) in ranges {
                        let span = (*b as u64) - (*a as u64) + 1;
                        if pick < span {
                            out.push(char::from_u32(*a as u32 + pick as u32).unwrap_or(*a));
                            break;
                        }
                        pick -= span;
                    }
                }
            }
        }
    }
    out
}

// ---- tuples ----------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

// ---- any::<T>() ------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + 'static {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Full-domain strategy for `T` (`any::<u8>()` and friends).
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    BoxedStrategy {
        gen: Arc::new(|rng| T::arbitrary(rng)),
    }
}

// ---- collections -----------------------------------------------------

pub mod collection {
    use super::{BoxedStrategy, Strategy, TestRng};
    use std::collections::BTreeMap;
    use std::ops::Range;
    use std::sync::Arc;

    /// Vec of `len` (sampled from `len_range`) elements.
    pub fn vec<S>(element: S, len_range: Range<usize>) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy,
        S::Value: 'static,
    {
        BoxedStrategy {
            gen: Arc::new(move |rng: &mut TestRng| {
                let span = len_range.end.saturating_sub(len_range.start).max(1);
                let n = len_range.start + (rng.next_u64() % span as u64) as usize;
                (0..n).map(|_| element.generate(rng)).collect()
            }),
        }
    }

    /// BTreeMap with up to `len_range` entries (duplicate keys collapse,
    /// as in real proptest).
    pub fn btree_map<K, V>(
        key: K,
        value: V,
        len_range: Range<usize>,
    ) -> BoxedStrategy<BTreeMap<K::Value, V::Value>>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord + 'static,
        V::Value: 'static,
    {
        BoxedStrategy {
            gen: Arc::new(move |rng: &mut TestRng| {
                let span = len_range.end.saturating_sub(len_range.start).max(1);
                let n = len_range.start + (rng.next_u64() % span as u64) as usize;
                (0..n)
                    .map(|_| (key.generate(rng), value.generate(rng)))
                    .collect()
            }),
        }
    }
}

pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection of not-yet-known size.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// The `prop::` module path used by the prelude (`prop::sample::Index`).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

// ---- macros ----------------------------------------------------------

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!("prop_assert failed: {}: {}", stringify!($cond), format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            panic!("prop_assert_eq failed: {:?} != {:?}", a, b);
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            panic!(
                "prop_assert_eq failed: {:?} != {:?}: {}",
                a, b, format!($($fmt)+)
            );
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            panic!("prop_assert_ne failed: both {:?}", a);
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The test-defining macro. Each property becomes one `#[test]` running
/// `cases` deterministic generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)*
                        $body
                    }));
                    if let Err(e) = result {
                        eprintln!(
                            "proptest case {}/{} of {} failed",
                            case + 1,
                            cfg.cases,
                            stringify!($name)
                        );
                        std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_shapes() {
        let mut rng = crate::test_rng("regex");
        for _ in 0..200 {
            let s = Strategy::generate(&"[A-Z][a-z0-9]{0,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_uppercase());
        }
    }

    #[test]
    fn vec_lengths_in_range() {
        let mut rng = crate::test_rng("vec");
        let strat = crate::collection::vec(0u8..10, 2..5);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs(x in 0u32..50, s in "[a-c]{1,3}") {
            prop_assert!(x < 50);
            prop_assert!(!s.is_empty() && s.len() <= 3);
        }
    }

    proptest! {
        #[test]
        fn oneof_and_recursive(v in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(v == 1 || v == 2);
        }
    }
}
