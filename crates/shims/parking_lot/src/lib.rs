//! Minimal in-repo stand-in for the `parking_lot` crate (the build
//! environment has no crates.io access). Provides the subset the
//! workspace uses — `Mutex`, `MutexGuard`, `Condvar`, `RwLock` — with
//! parking_lot's poison-free API implemented over `std::sync`.

use std::time::Duration;

/// A mutex whose `lock` never returns a poison error.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// Guard for [`Mutex`]. Holds the std guard in an `Option` so `Condvar`
/// can take and restore it across a wait.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present outside wait")
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + std::fmt::Display> std::fmt::Display for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(&**self, f)
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard present outside wait")
    }
}

/// Result of a timed wait: did the timeout elapse?
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable with parking_lot's `&mut guard` API.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Poison-free reader-writer lock.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(10)).timed_out());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let t = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                cv2.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
