//! Minimal in-repo stand-in for the `rand` crate (rand 0.8 API subset;
//! no crates.io access in the build environment). Deterministic
//! xoshiro256**-based `StdRng`, `gen_range` over integer and float
//! ranges, and `SliceRandom::{shuffle, choose}`.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing RNG trait (rand 0.8 `gen_range` API).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform sample from a range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Uniform value of a samplable type (`rng.gen::<f64>()`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.gen::<f64>()) < p
    }
}

/// Types that can be drawn uniformly from the full domain (`[0,1)` for
/// floats).
pub trait Standard: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for rand's
    /// `StdRng`; not cryptographically secure, which the workspace does
    /// not need).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A non-deterministic entropy-seeded generator (`rand::thread_rng`).
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    SeedableRng::seed_from_u64(nanos ^ (std::process::id() as u64) << 32)
}

pub mod seq {
    use super::Rng;

    /// Slice helpers (`rand::seq::SliceRandom` subset).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-25..=25i32);
            assert!((-25..=25).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
