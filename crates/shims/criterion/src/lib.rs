//! Minimal in-repo stand-in for the `criterion` crate (no crates.io
//! access in the build environment). Runs each benchmark closure with a
//! short warm-up, then measures for roughly the configured measurement
//! time and prints mean ns/iter — enough to keep `cargo bench` and the
//! microbench suite working without the real statistical machinery.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Throughput annotation (printed alongside the timing when set).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            measurement_time: Duration::from_millis(500),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into();
        let mut g = self.benchmark_group(name.clone());
        g.bench_function(name, f);
        g.finish();
        self
    }

    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            budget: self.measurement_time,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter_ns = if b.iters == 0 {
            0.0
        } else {
            b.elapsed.as_nanos() as f64 / b.iters as f64
        };
        let mut line = format!(
            "{}/{}: {:>12.1} ns/iter ({} iters)",
            self.name, id, per_iter_ns, b.iters
        );
        if let Some(t) = self.throughput {
            let per_s = match t {
                Throughput::Bytes(n) => {
                    format!(
                        "{:.1} MiB/s",
                        n as f64 / per_iter_ns.max(1.0) * 1e9 / (1 << 20) as f64
                    )
                }
                Throughput::Elements(n) => {
                    format!("{:.0} elem/s", n as f64 / per_iter_ns.max(1.0) * 1e9)
                }
            };
            line.push_str(&format!("  [{per_s}]"));
        }
        println!("{line}");
        self
    }

    pub fn finish(&mut self) {}
}

/// Per-benchmark measurement handle.
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up & calibration: time a handful of iterations.
        let t0 = Instant::now();
        for _ in 0..3 {
            black_box(f());
        }
        let per = (t0.elapsed() / 3).max(Duration::from_nanos(1));
        let target = (self.budget.as_nanos() / per.as_nanos().max(1)).clamp(10, 1_000_000) as u64;
        let t1 = Instant::now();
        for _ in 0..target {
            black_box(f());
        }
        self.elapsed = t1.elapsed();
        self.iters = target;
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        g.bench_function("noop", |b| b.iter(|| ran += 1));
        g.finish();
        assert!(ran > 0);
    }
}
