//! # flux-http — HTTP/1.1 substrate and the FluxScript page engine
//!
//! Everything the paper's web server needs from an HTTP stack:
//! request parsing with keep-alive semantics (§4.2's SPECweb-like load
//! sends five requests per connection), response serialization, MIME
//! types, an in-memory document root, and **FluxScript** — a small
//! PHP-flavoured template interpreter standing in for the PHP engine the
//! paper plugs in behind its web server (see DESIGN.md §4).

pub mod content;
pub mod fluxscript;
pub mod message;

pub use content::{mime_for, DocRoot};
pub use fluxscript::{eval as fxs_eval, render as fxs_render, ScriptError, Value};
pub use message::{
    percent_decode, read_request, read_request_buffered, read_response, sanitize_path, Method,
    ParseError, Request, Response,
};
