//! MIME types and the in-memory document root the web servers serve
//! from (the SPECweb99-like working set lives in memory, as the paper's
//! ~32 MB set fit in RAM and stressed CPU, not disk).

use std::collections::HashMap;

/// Maps a file extension to a MIME content type.
pub fn mime_for(path: &str) -> &'static str {
    match path.rsplit_once('.').map(|(_, ext)| ext) {
        Some("html") | Some("htm") => "text/html",
        Some("txt") => "text/plain",
        Some("css") => "text/css",
        Some("js") => "application/javascript",
        Some("json") => "application/json",
        Some("jpg") | Some("jpeg") => "image/jpeg",
        Some("png") => "image/png",
        Some("gif") => "image/gif",
        Some("ppm") => "image/x-portable-pixmap",
        Some("fxs") => "text/html", // FluxScript renders to HTML
        Some("xml") => "application/xml",
        Some("pdf") => "application/pdf",
        _ => "application/octet-stream",
    }
}

/// An in-memory document tree: path -> file bytes.
///
/// `*.fxs` files are FluxScript templates executed per request; anything
/// else is served verbatim.
#[derive(Debug, Default, Clone)]
pub struct DocRoot {
    files: HashMap<String, Vec<u8>>,
}

impl DocRoot {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a file under `path` (must start with `/`).
    pub fn insert(&mut self, path: &str, content: impl Into<Vec<u8>>) -> &mut Self {
        assert!(path.starts_with('/'), "doc paths are absolute: {path}");
        self.files.insert(path.to_string(), content.into());
        self
    }

    /// Fetches a file; `/` resolves to `/index.html`.
    pub fn get(&self, path: &str) -> Option<&[u8]> {
        let path = if path == "/" { "/index.html" } else { path };
        self.files.get(path).map(|v| v.as_slice())
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when no files are loaded.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Total bytes across all files (the "working set" size).
    pub fn total_bytes(&self) -> usize {
        self.files.values().map(|v| v.len()).sum()
    }

    /// Iterates `(path, size)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, usize)> {
        self.files.iter().map(|(k, v)| (k.as_str(), v.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mime_lookup() {
        assert_eq!(mime_for("/a/b.html"), "text/html");
        assert_eq!(mime_for("/x.jpg"), "image/jpeg");
        assert_eq!(mime_for("/x.fxs"), "text/html");
        assert_eq!(mime_for("/noext"), "application/octet-stream");
    }

    #[test]
    fn docroot_basics() {
        let mut root = DocRoot::new();
        root.insert("/index.html", "<h1>hi</h1>")
            .insert("/a.txt", "aaa");
        assert_eq!(root.get("/"), Some("<h1>hi</h1>".as_bytes()));
        assert_eq!(root.get("/a.txt"), Some("aaa".as_bytes()));
        assert_eq!(root.get("/missing"), None);
        assert_eq!(root.len(), 2);
        assert_eq!(root.total_bytes(), 14);
    }

    #[test]
    #[should_panic(expected = "absolute")]
    fn relative_path_rejected() {
        DocRoot::new().insert("rel.html", "x");
    }
}
