//! FluxScript — a tiny PHP-flavoured template interpreter.
//!
//! The paper's web server gains dynamic pages "just by implementing a
//! required PHP interface layer" around the real PHP interpreter. We
//! cannot ship PHP, so the dynamic-page engine is this interpreter: a
//! deliberately PHP-shaped language (``$variables``, `.` concatenation,
//! `echo`) embedded in HTML between `<?fx ... ?>` markers. What matters
//! for the reproduction is the architecture — an off-the-shelf
//! interpreter with per-request CPU cost sitting behind one Flux node —
//! and FluxScript exercises exactly that path.
//!
//! Language summary:
//!
//! ```text
//! <?fx
//!   $n = 10;
//!   $total = 0;
//!   for ($i = 1; $i <= $n; $i = $i + 1) { $total = $total + $i; }
//!   if ($total > 50) { echo "big: " . $total; } else { echo "small"; }
//!   while ($n > 0) { $n = $n - 1; }
//! ?>
//! ```
//!
//! Values are integers, floats, strings and booleans. Request query
//! parameters are pre-bound as `$name`. Builtins: `strlen(s)`,
//! `substr(s, start, len)`, `upper(s)`, `lower(s)`, `abs(x)`, `min`,
//! `max`, `str(x)`.

use std::collections::HashMap;
use std::fmt;

/// A FluxScript runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
}

impl Value {
    fn truthy(&self) -> bool {
        match self {
            Value::Int(n) => *n != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::Bool(b) => *b,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(*b as i64 as f64),
            Value::Str(_) => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => f.write_str(s),
            Value::Bool(b) => f.write_str(if *b { "1" } else { "" }),
        }
    }
}

/// A script evaluation error with a short message.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptError(pub String);

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fluxscript error: {}", self.0)
    }
}

impl std::error::Error for ScriptError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ScriptError> {
    Err(ScriptError(msg.into()))
}

/// Runaway-loop guard.
const MAX_STEPS: u64 = 5_000_000;

/// Renders a template: literal text is copied, `<?fx ... ?>` blocks are
/// executed with `vars` pre-bound.
pub fn render(template: &str, vars: &HashMap<String, Value>) -> Result<String, ScriptError> {
    let mut out = String::with_capacity(template.len());
    let mut env: HashMap<String, Value> = vars.clone();
    let mut rest = template;
    let mut steps = 0u64;
    while let Some(open) = rest.find("<?fx") {
        out.push_str(&rest[..open]);
        let after = &rest[open + 4..];
        let close = after
            .find("?>")
            .ok_or_else(|| ScriptError("unterminated <?fx block".into()))?;
        let code = &after[..close];
        let stmts = Parser::new(code).block_body()?;
        exec_block(&stmts, &mut env, &mut out, &mut steps)?;
        rest = &after[close + 2..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Executes a bare script (no template text), returning its output.
pub fn eval(code: &str, vars: &HashMap<String, Value>) -> Result<String, ScriptError> {
    render(&format!("<?fx {code} ?>"), vars)
}

// ---------------------------------------------------------------- AST --

#[derive(Debug, Clone)]
enum Stmt {
    Echo(Expr),
    Assign(String, Expr),
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    While(Expr, Vec<Stmt>),
    For(Box<Stmt>, Expr, Box<Stmt>, Vec<Stmt>),
}

#[derive(Debug, Clone)]
enum Expr {
    Lit(Value),
    Var(String),
    Unary(char, Box<Expr>),
    Binary(String, Box<Expr>, Box<Expr>),
    Call(String, Vec<Expr>),
}

// -------------------------------------------------------------- parser --

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else if b == b'/' && self.src.get(self.pos + 1) == Some(&b'/') {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ScriptError> {
        if self.eat(s) {
            Ok(())
        } else {
            err(format!(
                "expected `{s}` at byte {} of script block",
                self.pos
            ))
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.src.len()
    }

    fn ident(&mut self) -> Result<String, ScriptError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if start == self.pos {
            return err(format!("expected identifier at byte {start}"));
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn block_body(&mut self) -> Result<Vec<Stmt>, ScriptError> {
        let mut stmts = Vec::new();
        while !self.at_end() {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn braced_block(&mut self) -> Result<Vec<Stmt>, ScriptError> {
        self.expect("{")?;
        let mut stmts = Vec::new();
        loop {
            if self.eat("}") {
                return Ok(stmts);
            }
            if self.at_end() {
                return err("unterminated block");
            }
            stmts.push(self.stmt()?);
        }
    }

    fn stmt(&mut self) -> Result<Stmt, ScriptError> {
        self.skip_ws();
        if self.eat("echo") {
            let e = self.expr()?;
            self.expect(";")?;
            return Ok(Stmt::Echo(e));
        }
        if self.eat("if") {
            self.expect("(")?;
            let cond = self.expr()?;
            self.expect(")")?;
            let then = self.braced_block()?;
            let els = if self.eat("else") {
                if self.peek() == Some(b'i') && self.src[self.pos..].starts_with(b"if") {
                    vec![self.stmt()?]
                } else {
                    self.braced_block()?
                }
            } else {
                Vec::new()
            };
            return Ok(Stmt::If(cond, then, els));
        }
        if self.eat("while") {
            self.expect("(")?;
            let cond = self.expr()?;
            self.expect(")")?;
            let body = self.braced_block()?;
            return Ok(Stmt::While(cond, body));
        }
        if self.eat("for") {
            self.expect("(")?;
            let init = self.assign_stmt()?;
            self.expect(";")?;
            let cond = self.expr()?;
            self.expect(";")?;
            let step = self.assign_stmt()?;
            self.expect(")")?;
            let body = self.braced_block()?;
            return Ok(Stmt::For(Box::new(init), cond, Box::new(step), body));
        }
        let s = self.assign_stmt()?;
        self.expect(";")?;
        Ok(s)
    }

    fn assign_stmt(&mut self) -> Result<Stmt, ScriptError> {
        self.expect("$")?;
        let name = self.ident()?;
        self.expect("=")?;
        let e = self.expr()?;
        Ok(Stmt::Assign(name, e))
    }

    fn expr(&mut self) -> Result<Expr, ScriptError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ScriptError> {
        let mut lhs = self.and_expr()?;
        while self.eat("||") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary("||".into(), Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ScriptError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat("&&") {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary("&&".into(), Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ScriptError> {
        let lhs = self.add_expr()?;
        for op in ["==", "!=", "<=", ">=", "<", ">"] {
            if self.eat(op) {
                let rhs = self.add_expr()?;
                return Ok(Expr::Binary(op.into(), Box::new(lhs), Box::new(rhs)));
            }
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, ScriptError> {
        let mut lhs = self.mul_expr()?;
        loop {
            if self.eat("+") {
                let rhs = self.mul_expr()?;
                lhs = Expr::Binary("+".into(), Box::new(lhs), Box::new(rhs));
            } else if self.eat("-") {
                let rhs = self.mul_expr()?;
                lhs = Expr::Binary("-".into(), Box::new(lhs), Box::new(rhs));
            } else if self.eat(".") {
                let rhs = self.mul_expr()?;
                lhs = Expr::Binary(".".into(), Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, ScriptError> {
        let mut lhs = self.unary_expr()?;
        loop {
            if self.eat("*") {
                let rhs = self.unary_expr()?;
                lhs = Expr::Binary("*".into(), Box::new(lhs), Box::new(rhs));
            } else if self.eat("/") {
                let rhs = self.unary_expr()?;
                lhs = Expr::Binary("/".into(), Box::new(lhs), Box::new(rhs));
            } else if self.eat("%") {
                let rhs = self.unary_expr()?;
                lhs = Expr::Binary("%".into(), Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, ScriptError> {
        if self.eat("!") {
            return Ok(Expr::Unary('!', Box::new(self.unary_expr()?)));
        }
        if self.eat("-") {
            return Ok(Expr::Unary('-', Box::new(self.unary_expr()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ScriptError> {
        self.skip_ws();
        match self.peek() {
            Some(b'(') => {
                self.expect("(")?;
                let e = self.expr()?;
                self.expect(")")?;
                Ok(e)
            }
            Some(b'$') => {
                self.expect("$")?;
                Ok(Expr::Var(self.ident()?))
            }
            Some(b'"') | Some(b'\'') => self.string_lit(),
            Some(b) if b.is_ascii_digit() => self.number_lit(),
            Some(b) if b.is_ascii_alphabetic() => {
                let name = self.ident()?;
                match name.as_str() {
                    "true" => Ok(Expr::Lit(Value::Bool(true))),
                    "false" => Ok(Expr::Lit(Value::Bool(false))),
                    _ => {
                        self.expect("(")?;
                        let mut args = Vec::new();
                        if !self.eat(")") {
                            loop {
                                args.push(self.expr()?);
                                if self.eat(")") {
                                    break;
                                }
                                self.expect(",")?;
                            }
                        }
                        Ok(Expr::Call(name, args))
                    }
                }
            }
            other => err(format!("unexpected token {other:?} in expression")),
        }
    }

    fn string_lit(&mut self) -> Result<Expr, ScriptError> {
        self.skip_ws();
        let quote = self.src[self.pos];
        self.pos += 1;
        let mut s = String::new();
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            self.pos += 1;
            if b == quote {
                return Ok(Expr::Lit(Value::Str(s)));
            }
            if b == b'\\' && self.pos < self.src.len() {
                let esc = self.src[self.pos];
                self.pos += 1;
                s.push(match esc {
                    b'n' => '\n',
                    b't' => '\t',
                    other => other as char,
                });
            } else {
                s.push(b as char);
            }
        }
        err("unterminated string literal")
    }

    fn number_lit(&mut self) -> Result<Expr, ScriptError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_digit() || self.src[self.pos] == b'.')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("digits");
        if text.contains('.') {
            text.parse::<f64>()
                .map(|f| Expr::Lit(Value::Float(f)))
                .map_err(|_| ScriptError(format!("bad float `{text}`")))
        } else {
            text.parse::<i64>()
                .map(|n| Expr::Lit(Value::Int(n)))
                .map_err(|_| ScriptError(format!("bad int `{text}`")))
        }
    }
}

// ------------------------------------------------------------ evaluate --

fn exec_block(
    stmts: &[Stmt],
    env: &mut HashMap<String, Value>,
    out: &mut String,
    steps: &mut u64,
) -> Result<(), ScriptError> {
    for s in stmts {
        exec(s, env, out, steps)?;
    }
    Ok(())
}

fn bump(steps: &mut u64) -> Result<(), ScriptError> {
    *steps += 1;
    if *steps > MAX_STEPS {
        return err("script exceeded execution budget");
    }
    Ok(())
}

fn exec(
    s: &Stmt,
    env: &mut HashMap<String, Value>,
    out: &mut String,
    steps: &mut u64,
) -> Result<(), ScriptError> {
    bump(steps)?;
    match s {
        Stmt::Echo(e) => {
            let v = eval_expr(e, env, steps)?;
            out.push_str(&v.to_string());
            Ok(())
        }
        Stmt::Assign(name, e) => {
            let v = eval_expr(e, env, steps)?;
            env.insert(name.clone(), v);
            Ok(())
        }
        Stmt::If(cond, then, els) => {
            if eval_expr(cond, env, steps)?.truthy() {
                exec_block(then, env, out, steps)
            } else {
                exec_block(els, env, out, steps)
            }
        }
        Stmt::While(cond, body) => {
            while eval_expr(cond, env, steps)?.truthy() {
                bump(steps)?;
                exec_block(body, env, out, steps)?;
            }
            Ok(())
        }
        Stmt::For(init, cond, step, body) => {
            exec(init, env, out, steps)?;
            while eval_expr(cond, env, steps)?.truthy() {
                bump(steps)?;
                exec_block(body, env, out, steps)?;
                exec(step, env, out, steps)?;
            }
            Ok(())
        }
    }
}

fn eval_expr(
    e: &Expr,
    env: &HashMap<String, Value>,
    steps: &mut u64,
) -> Result<Value, ScriptError> {
    bump(steps)?;
    match e {
        Expr::Lit(v) => Ok(v.clone()),
        Expr::Var(name) => env
            .get(name)
            .cloned()
            .ok_or_else(|| ScriptError(format!("undefined variable ${name}"))),
        Expr::Unary('!', inner) => Ok(Value::Bool(!eval_expr(inner, env, steps)?.truthy())),
        Expr::Unary('-', inner) => match eval_expr(inner, env, steps)? {
            Value::Int(n) => Ok(Value::Int(-n)),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => err(format!("cannot negate {other:?}")),
        },
        Expr::Unary(op, _) => err(format!("unknown unary operator {op}")),
        Expr::Binary(op, lhs, rhs) => {
            // Short-circuit logic first.
            if op == "&&" {
                return Ok(Value::Bool(
                    eval_expr(lhs, env, steps)?.truthy() && eval_expr(rhs, env, steps)?.truthy(),
                ));
            }
            if op == "||" {
                return Ok(Value::Bool(
                    eval_expr(lhs, env, steps)?.truthy() || eval_expr(rhs, env, steps)?.truthy(),
                ));
            }
            let a = eval_expr(lhs, env, steps)?;
            let b = eval_expr(rhs, env, steps)?;
            binary(op, a, b)
        }
        Expr::Call(name, args) => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval_expr(a, env, steps))
                .collect::<Result<_, _>>()?;
            builtin(name, &vals)
        }
    }
}

fn binary(op: &str, a: Value, b: Value) -> Result<Value, ScriptError> {
    if op == "." {
        return Ok(Value::Str(format!("{a}{b}")));
    }
    // String equality compares as strings; other comparisons numeric.
    if matches!(op, "==" | "!=") {
        if let (Value::Str(x), Value::Str(y)) = (&a, &b) {
            let eq = x == y;
            return Ok(Value::Bool(if op == "==" { eq } else { !eq }));
        }
    }
    // Integer fast path keeps arithmetic exact.
    if let (Value::Int(x), Value::Int(y)) = (&a, &b) {
        let (x, y) = (*x, *y);
        return match op {
            "+" => Ok(Value::Int(x.wrapping_add(y))),
            "-" => Ok(Value::Int(x.wrapping_sub(y))),
            "*" => Ok(Value::Int(x.wrapping_mul(y))),
            "/" => {
                if y == 0 {
                    err("division by zero")
                } else {
                    Ok(Value::Int(x / y))
                }
            }
            "%" => {
                if y == 0 {
                    err("modulo by zero")
                } else {
                    Ok(Value::Int(x % y))
                }
            }
            "==" => Ok(Value::Bool(x == y)),
            "!=" => Ok(Value::Bool(x != y)),
            "<" => Ok(Value::Bool(x < y)),
            "<=" => Ok(Value::Bool(x <= y)),
            ">" => Ok(Value::Bool(x > y)),
            ">=" => Ok(Value::Bool(x >= y)),
            _ => err(format!("unknown operator {op}")),
        };
    }
    let (x, y) = match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => (x, y),
        _ => return err(format!("operator `{op}` needs numeric operands")),
    };
    match op {
        "+" => Ok(Value::Float(x + y)),
        "-" => Ok(Value::Float(x - y)),
        "*" => Ok(Value::Float(x * y)),
        "/" => {
            if y == 0.0 {
                err("division by zero")
            } else {
                Ok(Value::Float(x / y))
            }
        }
        "%" => err("modulo needs integers"),
        "==" => Ok(Value::Bool(x == y)),
        "!=" => Ok(Value::Bool(x != y)),
        "<" => Ok(Value::Bool(x < y)),
        "<=" => Ok(Value::Bool(x <= y)),
        ">" => Ok(Value::Bool(x > y)),
        ">=" => Ok(Value::Bool(x >= y)),
        _ => err(format!("unknown operator {op}")),
    }
}

fn builtin(name: &str, args: &[Value]) -> Result<Value, ScriptError> {
    match (name, args) {
        ("strlen", [Value::Str(s)]) => Ok(Value::Int(s.len() as i64)),
        ("upper", [Value::Str(s)]) => Ok(Value::Str(s.to_uppercase())),
        ("lower", [Value::Str(s)]) => Ok(Value::Str(s.to_lowercase())),
        ("str", [v]) => Ok(Value::Str(v.to_string())),
        ("abs", [Value::Int(n)]) => Ok(Value::Int(n.abs())),
        ("abs", [Value::Float(f)]) => Ok(Value::Float(f.abs())),
        ("min", [a, b]) => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => Ok(if x <= y { a.clone() } else { b.clone() }),
            _ => err("min needs numbers"),
        },
        ("max", [a, b]) => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => Ok(if x >= y { a.clone() } else { b.clone() }),
            _ => err("max needs numbers"),
        },
        ("substr", [Value::Str(s), Value::Int(start), Value::Int(len)]) => {
            let start = (*start).max(0) as usize;
            let len = (*len).max(0) as usize;
            Ok(Value::Str(s.chars().skip(start).take(len).collect()))
        }
        _ => err(format!(
            "unknown function `{name}` with {} argument(s)",
            args.len()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(code: &str) -> String {
        eval(code, &HashMap::new()).unwrap()
    }

    #[test]
    fn echo_and_arithmetic() {
        assert_eq!(run("echo 1 + 2 * 3;"), "7");
        assert_eq!(run("echo (1 + 2) * 3;"), "9");
        assert_eq!(run("echo 10 % 3;"), "1");
        assert_eq!(run("echo -4 + 1;"), "-3");
    }

    #[test]
    fn variables_and_concat() {
        assert_eq!(run("$x = 5; $y = $x * 2; echo \"v=\" . $y;"), "v=10");
    }

    #[test]
    fn conditionals() {
        assert_eq!(
            run("$x = 3; if ($x > 2) { echo \"big\"; } else { echo \"small\"; }"),
            "big"
        );
        assert_eq!(
            run("$x = 1; if ($x > 2) { echo \"big\"; } else { echo \"small\"; }"),
            "small"
        );
    }

    #[test]
    fn loops() {
        assert_eq!(
            run("$t = 0; for ($i = 1; $i <= 10; $i = $i + 1) { $t = $t + $i; } echo $t;"),
            "55"
        );
        assert_eq!(
            run("$n = 3; while ($n > 0) { echo $n; $n = $n - 1; }"),
            "321"
        );
    }

    #[test]
    fn template_interleaves_html() {
        let html = render(
            "<h1>Sum</h1><?fx $t = 0; for ($i = 1; $i <= 3; $i = $i + 1) { $t = $t + $i; } echo $t; ?><p>done</p>",
            &HashMap::new(),
        )
        .unwrap();
        assert_eq!(html, "<h1>Sum</h1>6<p>done</p>");
    }

    #[test]
    fn multiple_blocks_share_state() {
        let html = render("<?fx $x = 21; ?>mid<?fx echo $x * 2; ?>", &HashMap::new()).unwrap();
        assert_eq!(html, "mid42");
    }

    #[test]
    fn query_vars_prebound() {
        let mut vars = HashMap::new();
        vars.insert("n".to_string(), Value::Int(4));
        vars.insert("name".to_string(), Value::Str("flux".into()));
        let out = eval("echo $name . \"-\" . ($n * $n);", &vars).unwrap();
        assert_eq!(out, "flux-16");
    }

    #[test]
    fn builtins() {
        assert_eq!(run("echo strlen(\"hello\");"), "5");
        assert_eq!(run("echo upper(\"php\");"), "PHP");
        assert_eq!(run("echo substr(\"abcdef\", 2, 3);"), "cde");
        assert_eq!(run("echo min(3, 8) . max(3, 8);"), "38");
        assert_eq!(run("echo abs(-9);"), "9");
    }

    #[test]
    fn short_circuit_logic() {
        assert_eq!(run("echo (1 < 2) && (2 < 3);"), "1");
        assert_eq!(run("echo (1 > 2) || (2 > 3);"), "");
        // RHS of && not evaluated when LHS false: $undefined would error.
        assert_eq!(
            run("if ((1 > 2) && ($undefined == 1)) { echo \"x\"; } echo \"ok\";"),
            "ok"
        );
    }

    #[test]
    fn string_comparison() {
        assert_eq!(run("echo \"a\" == \"a\";"), "1");
        assert_eq!(run("echo \"a\" != \"b\";"), "1");
    }

    #[test]
    fn division_by_zero_errors() {
        assert!(eval("echo 1 / 0;", &HashMap::new()).is_err());
        assert!(eval("echo 1 % 0;", &HashMap::new()).is_err());
    }

    #[test]
    fn undefined_variable_errors() {
        let e = eval("echo $nope;", &HashMap::new()).unwrap_err();
        assert!(e.0.contains("nope"));
    }

    #[test]
    fn runaway_loop_bounded() {
        assert!(eval("$x = 1; while ($x > 0) { $x = $x + 1; }", &HashMap::new()).is_err());
    }

    #[test]
    fn unterminated_block_rejected() {
        assert!(render("<?fx echo 1;", &HashMap::new()).is_err());
    }

    #[test]
    fn floats() {
        assert_eq!(run("echo 1.5 + 2.25;"), "3.75");
        assert_eq!(run("echo 3 / 2;"), "1");
        assert_eq!(run("echo 3.0 / 2;"), "1.5");
    }

    #[test]
    fn else_if_chain() {
        let code = "$x = 2; if ($x == 1) { echo \"a\"; } else if ($x == 2) { echo \"b\"; } else { echo \"c\"; }";
        assert_eq!(run(code), "b");
    }

    #[test]
    fn escapes_in_strings() {
        assert_eq!(run("echo \"a\\nb\";"), "a\nb");
        assert_eq!(run("echo 'it\\'s';"), "it's");
    }
}
