//! HTTP/1.1 request parsing and response serialization.
//!
//! Implements the subset the paper's web server needs: GET/POST/HEAD,
//! header parsing, `Content-Length` bodies, keep-alive semantics
//! (HTTP/1.1 defaults to persistent connections; `Connection: close`
//! or HTTP/1.0 without `keep-alive` closes), and standard responses.

use std::collections::HashMap;
use std::io::{self, Read, Write};

/// Hard limits protecting the parser.
const MAX_HEAD_BYTES: usize = 64 * 1024;
const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// An HTTP request method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    Get,
    Head,
    Post,
    Other,
}

impl Method {
    fn parse(s: &str) -> Method {
        match s {
            "GET" => Method::Get,
            "HEAD" => Method::Head,
            "POST" => Method::Post,
            _ => Method::Other,
        }
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: Method,
    /// Decoded path without the query string (e.g. `/images/cat.ppm`).
    pub path: String,
    /// Raw query string (without `?`), empty if none.
    pub query: String,
    /// `true` for HTTP/1.1, `false` for 1.0.
    pub http11: bool,
    /// Header names are lower-cased.
    pub headers: HashMap<String, String>,
    pub body: Vec<u8>,
}

impl Request {
    /// Query parameters as key/value pairs (no percent-decoding beyond
    /// `%XX` and `+`).
    pub fn query_params(&self) -> Vec<(String, String)> {
        self.query
            .split('&')
            .filter(|s| !s.is_empty())
            .map(|kv| match kv.split_once('=') {
                Some((k, v)) => (percent_decode(k), percent_decode(v)),
                None => (percent_decode(kv), String::new()),
            })
            .collect()
    }

    /// Whether the connection should stay open after this exchange.
    pub fn keep_alive(&self) -> bool {
        match self
            .headers
            .get("connection")
            .map(|s| s.to_ascii_lowercase())
        {
            Some(v) if v.contains("close") => false,
            Some(v) if v.contains("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// Why parsing failed.
#[derive(Debug)]
pub enum ParseError {
    /// The peer closed before sending a complete request.
    ConnectionClosed,
    /// Malformed request line or headers.
    Malformed(&'static str),
    /// Request exceeded a size limit.
    TooLarge,
    /// Underlying transport error.
    Io(io::Error),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::ConnectionClosed => write!(f, "connection closed"),
            ParseError::Malformed(why) => write!(f, "malformed request: {why}"),
            ParseError::TooLarge => write!(f, "request too large"),
            ParseError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Reads and parses one request from `r`.
pub fn read_request(r: &mut dyn Read) -> Result<Request, ParseError> {
    let mut head = Vec::with_capacity(512);
    read_request_buffered(r, &mut head)
}

/// Like [`read_request`], but accumulates the request head into a
/// caller-supplied buffer (cleared first). Keep-alive servers pass a
/// per-connection scratch buffer so steady-state request parsing reuses
/// one allocation across every request on the connection.
pub fn read_request_buffered(r: &mut dyn Read, head: &mut Vec<u8>) -> Result<Request, ParseError> {
    // Accumulate until the blank line.
    head.clear();
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte) {
            Ok(0) => {
                return Err(if head.is_empty() {
                    ParseError::ConnectionClosed
                } else {
                    ParseError::Malformed("eof inside request head")
                });
            }
            Ok(_) => {
                head.push(byte[0]);
                if head.len() > MAX_HEAD_BYTES {
                    return Err(ParseError::TooLarge);
                }
                if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ParseError::Io(e)),
        }
    }
    let head_str = std::str::from_utf8(head).map_err(|_| ParseError::Malformed("non-utf8 head"))?;
    let mut lines = head_str.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines.next().ok_or(ParseError::Malformed("empty head"))?;
    let mut parts = request_line.split_whitespace();
    let method = Method::parse(parts.next().ok_or(ParseError::Malformed("no method"))?);
    let target = parts.next().ok_or(ParseError::Malformed("no target"))?;
    let version = parts.next().unwrap_or("HTTP/1.0");
    let http11 = version == "HTTP/1.1";

    let (raw_path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q.to_string()),
        None => (target, String::new()),
    };
    let path = sanitize_path(&percent_decode(raw_path))
        .ok_or(ParseError::Malformed("path escapes root"))?;

    let mut headers = HashMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (k, v) = line
            .split_once(':')
            .ok_or(ParseError::Malformed("header without colon"))?;
        headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
    }

    let mut body = Vec::new();
    if let Some(len) = headers.get("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| ParseError::Malformed("bad content-length"))?;
        if len > MAX_BODY_BYTES {
            return Err(ParseError::TooLarge);
        }
        body.resize(len, 0);
        let mut read = 0;
        while read < len {
            match r.read(&mut body[read..]) {
                Ok(0) => return Err(ParseError::Malformed("eof inside body")),
                Ok(n) => read += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ParseError::Io(e)),
            }
        }
    }

    Ok(Request {
        method,
        path,
        query,
        http11,
        headers,
        body,
    })
}

/// Decodes `%XX` escapes and `+` as space.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = |b: u8| -> Option<u8> {
                    match b {
                        b'0'..=b'9' => Some(b - b'0'),
                        b'a'..=b'f' => Some(b - b'a' + 10),
                        b'A'..=b'F' => Some(b - b'A' + 10),
                        _ => None,
                    }
                };
                if i + 2 < bytes.len() {
                    if let (Some(h), Some(l)) = (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                        out.push(h * 16 + l);
                        i += 3;
                        continue;
                    }
                }
                out.push(b'%');
                i += 1;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Normalizes a request path, rejecting traversal outside the root.
pub fn sanitize_path(p: &str) -> Option<String> {
    let mut stack: Vec<&str> = Vec::new();
    for seg in p.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                stack.pop()?;
            }
            s => stack.push(s),
        }
    }
    Ok::<_, ()>(()).ok()?;
    Some(format!("/{}", stack.join("/")))
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub reason: &'static str,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Response {
    /// 200 with a content type.
    pub fn ok(content_type: &str, body: Vec<u8>) -> Response {
        Response {
            status: 200,
            reason: "OK",
            headers: vec![("Content-Type".into(), content_type.into())],
            body,
        }
    }

    /// A standard error page.
    pub fn error(status: u16) -> Response {
        let reason = reason_for(status);
        Response {
            status,
            reason,
            headers: vec![("Content-Type".into(), "text/html".into())],
            body: format!(
                "<html><head><title>{status} {reason}</title></head>\
                 <body><h1>{status} {reason}</h1></body></html>"
            )
            .into_bytes(),
        }
    }

    /// The classic 404, used by the paper's `FourOhFour` node.
    pub fn not_found() -> Response {
        Response::error(404)
    }

    /// Adds a header.
    pub fn header(mut self, k: &str, v: &str) -> Response {
        self.headers.push((k.into(), v.into()));
        self
    }

    /// Serializes status line, headers (adding `Content-Length`,
    /// `Connection` and `Server`) and the body.
    pub fn write_to(&self, w: &mut dyn Write, keep_alive: bool) -> io::Result<()> {
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, self.reason);
        for (k, v) in &self.headers {
            head.push_str(k);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        head.push_str("Server: flux-rs/0.1\r\n");
        head.push_str(if keep_alive {
            "Connection: keep-alive\r\n"
        } else {
            "Connection: close\r\n"
        });
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }

    /// Total bytes `write_to` will emit (for throughput accounting).
    pub fn wire_len(&self, keep_alive: bool) -> usize {
        let mut n = format!("HTTP/1.1 {} {}\r\n", self.status, self.reason).len();
        for (k, v) in &self.headers {
            n += k.len() + 2 + v.len() + 2;
        }
        n += format!("Content-Length: {}\r\n", self.body.len()).len();
        n += "Server: flux-rs/0.1\r\n".len();
        n += if keep_alive {
            "Connection: keep-alive\r\n".len()
        } else {
            "Connection: close\r\n".len()
        };
        n += 2 + self.body.len();
        n
    }
}

/// Standard reason phrases.
pub fn reason_for(status: u16) -> &'static str {
    match status {
        200 => "OK",
        204 => "No Content",
        301 => "Moved Permanently",
        302 => "Found",
        304 => "Not Modified",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Reads one full response (for test clients): returns (status, body).
pub fn read_response(r: &mut dyn Read) -> Result<(u16, Vec<u8>), ParseError> {
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte) {
            Ok(0) => return Err(ParseError::ConnectionClosed),
            Ok(_) => {
                head.push(byte[0]);
                if head.len() > MAX_HEAD_BYTES {
                    return Err(ParseError::TooLarge);
                }
                if head.ends_with(b"\r\n\r\n") {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ParseError::Io(e)),
        }
    }
    let head_str =
        std::str::from_utf8(&head).map_err(|_| ParseError::Malformed("non-utf8 head"))?;
    let status: u16 = head_str
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or(ParseError::Malformed("no status"))?;
    let mut content_length = 0usize;
    for line in head_str.lines().skip(1) {
        if let Some((k, v)) = line.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v
                    .trim()
                    .parse()
                    .map_err(|_| ParseError::Malformed("bad content-length"))?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    let mut read = 0;
    while read < content_length {
        match r.read(&mut body[read..]) {
            Ok(0) => return Err(ParseError::Malformed("eof inside body")),
            Ok(n) => read += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ParseError::Io(e)),
        }
    }
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Request, ParseError> {
        let mut cursor = io::Cursor::new(raw.to_vec());
        read_request(&mut cursor)
    }

    #[test]
    fn parses_simple_get() {
        let req = parse(b"GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/index.html");
        assert!(req.http11);
        assert!(req.keep_alive());
        assert_eq!(req.headers["host"], "x");
    }

    #[test]
    fn parses_query_string() {
        let req = parse(b"GET /page.fxs?n=5&name=a+b%21 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/page.fxs");
        let params = req.query_params();
        assert_eq!(params[0], ("n".into(), "5".into()));
        assert_eq!(params[1], ("name".into(), "a b!".into()));
    }

    #[test]
    fn connection_close_overrides_11() {
        let req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive());
    }

    #[test]
    fn http10_defaults_to_close() {
        let req = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive());
        let req = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(req.keep_alive());
    }

    #[test]
    fn reads_post_body() {
        let req = parse(b"POST /submit HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn rejects_traversal() {
        assert!(matches!(
            parse(b"GET /../etc/passwd HTTP/1.1\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn sanitize_keeps_inner_dotdot_safe() {
        assert_eq!(sanitize_path("/a/b/../c"), Some("/a/c".into()));
        assert_eq!(sanitize_path("/a/./b"), Some("/a/b".into()));
        assert_eq!(sanitize_path("/.."), None);
    }

    #[test]
    fn closed_before_any_bytes() {
        assert!(matches!(parse(b""), Err(ParseError::ConnectionClosed)));
    }

    #[test]
    fn eof_mid_request() {
        assert!(matches!(parse(b"GET / HT"), Err(ParseError::Malformed(_))));
    }

    #[test]
    fn response_round_trip() {
        let resp = Response::ok("text/plain", b"body!".to_vec()).header("X-Test", "1");
        let mut wire = Vec::new();
        resp.write_to(&mut wire, true).unwrap();
        assert_eq!(wire.len(), resp.wire_len(true));
        let mut cursor = io::Cursor::new(wire);
        let (status, body) = read_response(&mut cursor).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"body!");
    }

    #[test]
    fn error_pages_have_reason() {
        let resp = Response::not_found();
        assert_eq!(resp.status, 404);
        assert!(String::from_utf8_lossy(&resp.body).contains("404 Not Found"));
    }

    #[test]
    fn percent_decode_edge_cases() {
        assert_eq!(percent_decode("a%20b"), "a b");
        assert_eq!(percent_decode("a%2"), "a%2");
        assert_eq!(percent_decode("a%zzb"), "a%zzb");
        assert_eq!(percent_decode("100%"), "100%");
    }
}
