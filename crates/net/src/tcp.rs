//! Real TCP/UDP transports over `std::net`, for examples and
//! interoperability testing. Benchmarks use the in-memory transport.

use crate::pool::{OutBuf, SharedPayload};
use crate::traits::{Conn, Datagram, Listener, WriteProgress};
use parking_lot::Mutex;
use std::io;
use std::net::{TcpListener, TcpStream, UdpSocket};
use std::time::Duration;

/// A TCP connection implementing [`Conn`].
///
/// Besides the plain blocking [`io::Write`] path, the connection keeps a
/// per-handle output buffer behind [`Conn::enqueue_write`]: writes that
/// would block are buffered and drained with non-blocking partial
/// writes, so the reactor can finish them on `POLLOUT` without ever
/// parking a thread in `send(2)`. The buffer is a segment queue
/// ([`OutBuf`]): plain writes copy their unwritten tail, shared fan-out
/// payloads ([`Conn::enqueue_write_shared`]) buffer a refcounted
/// reference instead of a per-subscriber copy.
pub struct TcpConn {
    stream: TcpStream,
    peer: String,
    /// Output segment queue for reactor-drained writes.
    out: OutBuf,
}

impl TcpConn {
    pub fn new(stream: TcpStream) -> Self {
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".into());
        TcpConn {
            stream,
            peer,
            out: OutBuf::new(),
        }
    }

    /// Connects to `addr` (e.g. `127.0.0.1:8080`).
    pub fn connect(addr: &str) -> io::Result<Self> {
        Ok(TcpConn::new(TcpStream::connect(addr)?))
    }

    /// Non-blocking drain of the output buffer. The socket is switched
    /// to non-blocking mode only for the duration of the call; callers
    /// hold the connection lock, so blocking reads elsewhere never
    /// observe the mode flip.
    fn drain_nonblocking(&mut self) -> io::Result<WriteProgress> {
        while let Some(front) = self.out.front() {
            let n = nb_write(&self.stream, front)?;
            let partial = n < front.len();
            self.out.advance(n);
            if partial {
                return Ok(WriteProgress::Pending);
            }
        }
        Ok(WriteProgress::Complete)
    }
}

/// Writes as much of `buf` as the socket accepts without blocking,
/// returning the number of bytes taken (the socket's non-blocking flag
/// is restored before returning).
fn nb_write(stream: &TcpStream, buf: &[u8]) -> io::Result<usize> {
    use std::io::Write as _;
    stream.set_nonblocking(true)?;
    let mut done = 0;
    let result = loop {
        if done >= buf.len() {
            break Ok(done);
        }
        match (&mut &*stream).write(&buf[done..]) {
            Ok(0) => {
                break Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "socket accepted zero bytes",
                ))
            }
            Ok(n) => done += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break Ok(done),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => break Err(e),
        }
    };
    stream.set_nonblocking(false)?;
    result
}

impl io::Read for TcpConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.stream.read(buf)
    }
}

impl io::Write for TcpConn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.stream.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }
}

impl Conn for TcpConn {
    fn peer_addr(&self) -> String {
        self.peer.clone()
    }

    fn set_read_timeout(&mut self, d: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(d)
    }

    fn wait_readable(&self, timeout: Option<Duration>) -> io::Result<bool> {
        // `peek` blocks until at least one byte is available or the peer
        // closes (returns 0); the read timeout bounds the wait. The
        // caller-configured timeout is restored afterwards so the wait
        // does not clobber subsequent reads.
        let previous = self.stream.read_timeout()?;
        self.stream.set_read_timeout(timeout)?;
        let mut byte = [0u8; 1];
        let result = match self.stream.peek(&mut byte) {
            Ok(_) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(false),
            Err(e) if e.kind() == io::ErrorKind::TimedOut => Ok(false),
            Err(e) => Err(e),
        };
        self.stream.set_read_timeout(previous)?;
        result
    }

    #[cfg(unix)]
    fn raw_fd(&self) -> Option<std::os::fd::RawFd> {
        use std::os::fd::AsRawFd;
        Some(self.stream.as_raw_fd())
    }

    fn enqueue_write(&mut self, bytes: &[u8]) -> io::Result<WriteProgress> {
        if self.out.is_empty() {
            // Fast path: nothing buffered, write straight from the
            // caller's slice and keep only the unwritten tail.
            let n = nb_write(&self.stream, bytes)?;
            if n >= bytes.len() {
                return Ok(WriteProgress::Complete);
            }
            self.out.push_owned(bytes, n);
            return Ok(WriteProgress::Pending);
        }
        self.out.push_owned(bytes, 0);
        self.drain_nonblocking()
    }

    fn enqueue_write_shared(&mut self, payload: &SharedPayload) -> io::Result<WriteProgress> {
        if self.out.is_empty() {
            let n = nb_write(&self.stream, payload)?;
            if n >= payload.len() {
                return Ok(WriteProgress::Complete);
            }
            self.out.push_shared(payload, n);
            return Ok(WriteProgress::Pending);
        }
        self.out.push_shared(payload, 0);
        self.drain_nonblocking()
    }

    fn pending_out(&self) -> usize {
        self.out.len()
    }

    fn drain_out(&mut self) -> io::Result<WriteProgress> {
        self.drain_nonblocking()
    }

    fn try_clone(&self) -> io::Result<Box<dyn Conn>> {
        Ok(Box::new(TcpConn::new(self.stream.try_clone()?)))
    }

    fn shutdown_write(&mut self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }
}

/// A TCP listener implementing [`Listener`]. Accept timeouts are emulated
/// with a non-blocking accept + sleep loop, since `std` exposes no
/// `SO_RCVTIMEO` for listeners.
pub struct TcpAcceptor {
    listener: TcpListener,
    timeout: Mutex<Option<Duration>>,
}

impl TcpAcceptor {
    /// Binds to `addr` (use port 0 for an ephemeral port).
    pub fn bind(addr: &str) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(TcpAcceptor {
            listener,
            timeout: Mutex::new(None),
        })
    }

    /// Raises the kernel listen backlog above the std default (128).
    ///
    /// Under overload, clients whose connections were shed reconnect in
    /// bursts; on a saturated host the acceptor thread drains the
    /// backlog in scheduling slices, and a 128-deep queue overflows
    /// between slices — dropped SYNs then stall each client in a
    /// full retransmission timeout. A deeper backlog absorbs the burst
    /// so reconnects fail fast (governor) or get served, never hang.
    /// On Linux, `listen(2)` on an already-listening socket just
    /// updates the backlog.
    #[cfg(unix)]
    pub fn set_backlog(&self, backlog: u32) -> io::Result<()> {
        use std::os::fd::AsRawFd;
        extern "C" {
            fn listen(sockfd: std::ffi::c_int, backlog: std::ffi::c_int) -> std::ffi::c_int;
        }
        let rc = unsafe {
            listen(
                self.listener.as_raw_fd(),
                backlog.min(i32::MAX as u32) as std::ffi::c_int,
            )
        };
        if rc == 0 {
            Ok(())
        } else {
            Err(io::Error::last_os_error())
        }
    }
}

impl Listener for TcpAcceptor {
    fn accept(&self) -> io::Result<Box<dyn Conn>> {
        let timeout = *self.timeout.lock();
        match timeout {
            None => {
                self.listener.set_nonblocking(false)?;
                let (s, _) = self.listener.accept()?;
                Ok(Box::new(TcpConn::new(s)))
            }
            Some(d) => {
                self.listener.set_nonblocking(true)?;
                let deadline = std::time::Instant::now() + d;
                loop {
                    match self.listener.accept() {
                        Ok((s, _)) => {
                            s.set_nonblocking(false)?;
                            return Ok(Box::new(TcpConn::new(s)));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            if std::time::Instant::now() >= deadline {
                                return Err(io::Error::new(
                                    io::ErrorKind::TimedOut,
                                    "accept timed out",
                                ));
                            }
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        }
    }

    fn set_accept_timeout(&self, d: Option<Duration>) {
        *self.timeout.lock() = d;
    }

    fn local_addr(&self) -> String {
        self.listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".into())
    }
}

/// A UDP socket implementing [`Datagram`].
pub struct UdpDatagram {
    socket: UdpSocket,
}

impl UdpDatagram {
    pub fn bind(addr: &str) -> io::Result<Self> {
        Ok(UdpDatagram {
            socket: UdpSocket::bind(addr)?,
        })
    }
}

impl Datagram for UdpDatagram {
    fn send_to(&self, buf: &[u8], addr: &str) -> io::Result<usize> {
        self.socket.send_to(buf, addr)
    }

    fn recv_from(
        &self,
        buf: &mut [u8],
        timeout: Option<Duration>,
    ) -> io::Result<Option<(usize, String)>> {
        self.socket.set_read_timeout(timeout)?;
        match self.socket.recv_from(buf) {
            Ok((n, from)) => Ok(Some((n, from.to_string()))),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    fn local_addr(&self) -> String {
        self.socket
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::thread;

    #[test]
    fn tcp_round_trip() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let t = thread::spawn(move || {
            let mut c = TcpConn::connect(&addr).unwrap();
            c.write_all(b"ping").unwrap();
            let mut buf = [0u8; 4];
            c.read_exact(&mut buf).unwrap();
            buf
        });
        let mut server = acceptor.accept().unwrap();
        let mut buf = [0u8; 4];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        server.write_all(b"pong").unwrap();
        assert_eq!(&t.join().unwrap(), b"pong");
    }

    #[test]
    fn tcp_accept_timeout() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        acceptor.set_accept_timeout(Some(Duration::from_millis(30)));
        let err = acceptor.accept().err().unwrap();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn tcp_wait_readable() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let t = thread::spawn(move || {
            let mut c = TcpConn::connect(&addr).unwrap();
            thread::sleep(Duration::from_millis(30));
            c.write_all(b"!").unwrap();
            thread::sleep(Duration::from_millis(50));
        });
        let server = acceptor.accept().unwrap();
        assert!(!server
            .wait_readable(Some(Duration::from_millis(5)))
            .unwrap());
        assert!(server.wait_readable(Some(Duration::from_secs(2))).unwrap());
        t.join().unwrap();
    }

    #[test]
    fn udp_round_trip() {
        let a = UdpDatagram::bind("127.0.0.1:0").unwrap();
        let b = UdpDatagram::bind("127.0.0.1:0").unwrap();
        a.send_to(b"tick", &b.local_addr()).unwrap();
        let mut buf = [0u8; 16];
        let (n, from) = b
            .recv_from(&mut buf, Some(Duration::from_secs(1)))
            .unwrap()
            .unwrap();
        assert_eq!(&buf[..n], b"tick");
        assert_eq!(from, a.local_addr());
    }

    #[test]
    fn udp_timeout_returns_none() {
        let a = UdpDatagram::bind("127.0.0.1:0").unwrap();
        let mut buf = [0u8; 4];
        assert!(a
            .recv_from(&mut buf, Some(Duration::from_millis(20)))
            .unwrap()
            .is_none());
    }
}
