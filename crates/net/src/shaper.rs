//! Link shaping: a shared token bucket that bounds aggregate bytes/sec,
//! used to reproduce network-saturation behaviour (Figure 4's BitTorrent
//! throughput plateau) on the in-memory transport.

use parking_lot::{Condvar, Mutex};
use std::time::{Duration, Instant};

#[derive(Debug)]
struct BucketState {
    tokens: f64,
    last_refill: Instant,
}

/// A blocking token bucket: `consume(n)` waits until `n` byte-tokens are
/// available. Shared across every connection of a shaped network, so the
/// bucket's rate is the *link* capacity, not a per-connection cap.
#[derive(Debug)]
pub struct Shaper {
    rate_bytes_per_s: f64,
    burst_bytes: f64,
    state: Mutex<BucketState>,
    cond: Condvar,
}

impl Shaper {
    /// Creates a shaper with the given sustained rate; bursts of up to
    /// 64 KiB (or 10 ms worth of tokens, whichever is larger) pass
    /// without delay.
    pub fn new(rate_bytes_per_s: f64) -> Self {
        let burst_bytes = (rate_bytes_per_s * 0.010).max(64.0 * 1024.0);
        Shaper {
            rate_bytes_per_s,
            burst_bytes,
            state: Mutex::new(BucketState {
                tokens: burst_bytes,
                last_refill: Instant::now(),
            }),
            cond: Condvar::new(),
        }
    }

    fn refill(&self, s: &mut BucketState) {
        let now = Instant::now();
        let dt = now.duration_since(s.last_refill).as_secs_f64();
        s.tokens = (s.tokens + dt * self.rate_bytes_per_s).min(self.burst_bytes);
        s.last_refill = now;
    }

    /// Blocks until `bytes` tokens are consumed.
    pub fn consume(&self, bytes: usize) {
        let mut need = bytes as f64;
        let mut s = self.state.lock();
        loop {
            self.refill(&mut s);
            if s.tokens >= need {
                s.tokens -= need;
                return;
            }
            // Take what is there and wait for the rest.
            need -= s.tokens;
            s.tokens = 0.0;
            let wait_s = need / self.rate_bytes_per_s;
            let timeout = Duration::from_secs_f64(wait_s.min(0.050));
            self.cond.wait_for(&mut s, timeout);
        }
    }

    /// Consumes `bytes` tokens only if all are available right now;
    /// returns `false` (consuming nothing) otherwise. The non-blocking
    /// fast path for enqueued writes: burst-sized traffic passes
    /// synchronously, anything past the bucket is left to a drain
    /// thread that can afford to block in [`Shaper::consume`].
    pub fn try_consume(&self, bytes: usize) -> bool {
        let mut s = self.state.lock();
        self.refill(&mut s);
        if s.tokens >= bytes as f64 {
            s.tokens -= bytes as f64;
            true
        } else {
            false
        }
    }

    /// The configured sustained rate.
    pub fn rate(&self) -> f64 {
        self.rate_bytes_per_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn burst_passes_instantly() {
        let s = Shaper::new(1_000_000.0);
        let t0 = Instant::now();
        s.consume(10_000);
        assert!(t0.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn sustained_rate_enforced() {
        // 1 MB/s, ask for ~200 KB beyond the burst: ~200 ms.
        let s = Shaper::new(1_000_000.0);
        s.consume(64 * 1024); // drain the burst
        let t0 = Instant::now();
        s.consume(200_000);
        let dt = t0.elapsed().as_secs_f64();
        assert!(dt > 0.15, "took {dt}s, expected ~0.2s");
        assert!(dt < 0.5, "took {dt}s, expected ~0.2s");
    }

    #[test]
    fn shared_across_threads_caps_aggregate() {
        let s = Arc::new(Shaper::new(2_000_000.0));
        s.consume(128 * 1024); // drain burst (burst = 64KiB vs 20ms => 40KB; 64KiB)
        let t0 = Instant::now();
        let mut joins = Vec::new();
        for _ in 0..4 {
            let s = s.clone();
            joins.push(std::thread::spawn(move || {
                for _ in 0..10 {
                    s.consume(10_000);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        // 400 KB at 2 MB/s ≈ 200 ms regardless of thread count.
        let dt = t0.elapsed().as_secs_f64();
        assert!(dt > 0.12, "aggregate rate enforced, took {dt}s");
    }
}
