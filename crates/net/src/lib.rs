//! # flux-net — network substrate for the Flux servers
//!
//! The paper's servers sit on POSIX sockets; this crate abstracts the
//! transport behind [`Conn`]/[`Listener`]/[`Datagram`] traits with three
//! implementations:
//!
//! * **mem** — a hermetic in-memory transport (duplex pipes, a listener
//!   registry, datagram sockets) with optional aggregate link shaping,
//!   so benchmarks are reproducible and can exhibit network saturation;
//! * **tcp** — real TCP/UDP over `std::net` for examples and interop;
//! * **driver** — a readiness multiplexer ([`ConnDriver`]) that turns
//!   accepts, per-connection readability and asynchronous write
//!   completions into one event stream, which Flux source nodes consume
//!   (the paper's select loop). [`ConnDriver::submit_write`] queues
//!   response bytes without blocking; `WriteDone`/`WriteFailed` events
//!   report completion;
//! * **reactor** — the poll(2) thread behind the driver: every
//!   registered TCP socket is multiplexed through a single `poll` call
//!   with per-token `POLLIN | POLLOUT` interest, draining output
//!   buffers on writability instead of parking an I/O worker in
//!   `send(2)`.

pub mod driver;
pub mod mem;
pub mod reactor;
pub mod shaper;
pub mod tcp;
pub mod traits;

pub use driver::{ConnDriver, DriverCounters, DriverEvent, SharedConn, Token};
pub use mem::{MemConn, MemDatagram, MemListener, MemNet};
#[cfg(unix)]
pub use reactor::Reactor;
pub use shaper::Shaper;
pub use tcp::{TcpAcceptor, TcpConn, UdpDatagram};
pub use traits::{read_exact_timeout, Conn, Datagram, Listener, WriteProgress};
