//! # flux-net — network substrate for the Flux servers
//!
//! The paper's servers sit on POSIX sockets; this crate abstracts the
//! transport behind [`Conn`]/[`Listener`]/[`Datagram`] traits and the
//! readiness machinery behind a layered, swappable stack:
//!
//! * **mem** — a hermetic in-memory transport (duplex pipes, a listener
//!   registry, datagram sockets) with optional aggregate link shaping,
//!   so benchmarks are reproducible and can exhibit network saturation;
//! * **tcp** — real TCP/UDP over `std::net` for examples and interop;
//! * **driver** — a readiness multiplexer ([`ConnDriver`]) that turns
//!   accepts, per-connection readability and asynchronous write
//!   completions into one event stream, which Flux source nodes consume
//!   (the paper's select loop). [`ConnDriver::submit_write`] queues
//!   response bytes without blocking; `WriteDone`/`WriteFailed` events
//!   report completion. Construction goes through [`NetConfig`]
//!   (backend choice, output-buffer bound, event-poll timeout) —
//!   servers reach it via `flux_servers::ServerBuilder`;
//! * **reactor** — the single multiplexer thread behind the driver:
//!   every registered TCP socket carries read/write *interest*, output
//!   buffers drain on writability instead of parking an I/O worker in
//!   `send(2)`, and the fd-reuse (generation) and shutdown invariants
//!   are enforced here once, above the backend;
//! * **poller** — the syscall-facing core, behind the [`Poller`] trait
//!   (`add`/`modify`/`delete`/`wait` over interest-tagged fds): a
//!   portable `poll(2)` backend (O(watched) per wakeup) and a raw-FFI
//!   `epoll(7)` backend (O(ready) per wakeup, one-shot re-arm), the
//!   Linux default. `FLUX_POLLER=poll|epoll` selects at runtime; both
//!   backends pass the same conformance suite in `tests/`. Future
//!   kqueue/io_uring backends slot in behind the same four methods.

pub mod driver;
pub mod mem;
#[cfg(unix)]
pub mod poller;
pub mod reactor;
pub mod shaper;
pub mod tcp;
pub mod traits;

pub use driver::{ConnDriver, DriverCounters, DriverEvent, NetConfig, SharedConn, Token};
pub use mem::{MemConn, MemDatagram, MemListener, MemNet};
#[cfg(target_os = "linux")]
pub use poller::EpollPoller;
#[cfg(unix)]
pub use poller::{Interest, PollPoller, Poller, PollerBackend, PollerEvent};
#[cfg(unix)]
pub use reactor::Reactor;
pub use shaper::Shaper;
pub use tcp::{TcpAcceptor, TcpConn, UdpDatagram};
pub use traits::{read_exact_timeout, Conn, Datagram, Listener, WriteProgress};
