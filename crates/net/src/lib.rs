//! # flux-net — network substrate for the Flux servers
//!
//! The paper's servers sit on POSIX sockets; this crate abstracts the
//! transport behind [`Conn`]/[`Listener`]/[`Datagram`] traits and the
//! readiness machinery behind a layered, swappable stack:
//!
//! * **mem** — a hermetic in-memory transport (duplex pipes, a listener
//!   registry, datagram sockets) with optional aggregate link shaping,
//!   so benchmarks are reproducible and can exhibit network saturation;
//! * **tcp** — real TCP/UDP over `std::net` for examples and interop;
//! * **driver** — a readiness multiplexer ([`ConnDriver`]) that turns
//!   accepts, per-connection readability and asynchronous write
//!   completions into one event stream, which Flux source nodes consume
//!   (the paper's select loop). [`ConnDriver::submit_write`] queues
//!   response bytes without blocking; `WriteDone`/`WriteFailed` events
//!   report completion. Construction goes through [`NetConfig`]
//!   (backend choice, output-buffer bound, event-poll timeout) —
//!   servers reach it via `flux_servers::ServerBuilder`;
//! * **reactor** — the single multiplexer thread behind the driver:
//!   every registered TCP socket carries read/write *interest*, output
//!   buffers drain on writability instead of parking an I/O worker in
//!   `send(2)`, and the fd-reuse (generation) and shutdown invariants
//!   are enforced here once, above the backend;
//! * **poller** — the syscall-facing core, behind the [`Poller`] trait
//!   (`add`/`modify`/`delete`/`wait` over interest-tagged fds): a
//!   portable `poll(2)` backend (interest maintained incrementally, so
//!   a wait costs O(changes) in bookkeeping, O(watched) only in the
//!   kernel scan poll(2) inherently pays), a raw-FFI `epoll(7)`
//!   backend (O(ready) per wakeup, one-shot re-arm), the Linux
//!   default, and a raw-FFI `io_uring` backend in readiness mode (see
//!   below). `FLUX_POLLER=poll|epoll|uring` selects at runtime; all
//!   three pass the same conformance suite in `tests/`. A kqueue
//!   backend would slot in behind the same four methods.
//!
//! ## io_uring: readiness vs completion mode
//!
//! io_uring supports two ways of doing network I/O, and the
//! [`poller::UringPoller`] backend deliberately implements only the
//! first:
//!
//! * **Readiness mode** (this backend): each interest arm is an
//!   `IORING_OP_POLL_ADD` submission — oneshot by default, which *is*
//!   the [`Poller`] trait's one-shot contract — and the actual
//!   `read(2)`/`write(2)` calls stay where they are, in the reactor
//!   and driver. The win is pure syscall-count: `add`/`modify`/
//!   `delete` build SQEs locally and [`Poller::wait`] flushes the
//!   whole batch *and* collects completions in **one**
//!   `io_uring_enter`. That is the batching invariant: a round that
//!   (re-)arms K connections costs 1 syscall where epoll pays K
//!   `epoll_ctl`s plus an `epoll_wait` — and one-shot re-arm makes K
//!   proportional to the ready set every round, so the saving scales
//!   with load. Because the trait contract is unchanged, the reactor's
//!   generation/liveness invariants and the whole conformance suite
//!   apply verbatim.
//! * **Completion mode** (the recorded follow-on): submit
//!   `IORING_OP_RECV`/`IORING_OP_SEND` and let the kernel move the
//!   bytes, eliminating the read/write syscalls too. That changes
//!   buffer ownership (the kernel holds them while ops are in flight)
//!   and so cannot hide behind the readiness-shaped `Poller` trait —
//!   it needs a driver-level seam. The SQ batching machinery this
//!   backend introduces (`wait` flushing a pending submission batch)
//!   is the foundation it will reuse.
//!
//! io_uring availability varies (pre-5.1 kernels lack it; seccomp
//!  policies in container runtimes commonly deny it), so `uring` is
//! opt-in (`FLUX_POLLER=uring` or `NetConfig.backend`) behind a
//! construction-time capability probe: if real ring setup fails the
//! driver comes up on epoll, and the substitution is *reported* —
//! [`ConnDriver::poller_backend`] names the resolved backend and
//! [`DriverCounters::poller_fallbacks`] counts the fallback — so a
//! bench or CI leg can refuse to attribute uring numbers to an epoll
//! run. [`poller::uring_available`] packages the probe for harnesses.
//!
//! ## The allocation-free hot path (slabs, batches, pools)
//!
//! The steady-state event path — socket ready → event delivered → flow
//! dispatched → response enqueued — performs no hashing, no global
//! lock and no heap allocation:
//!
//! * **Slab tables.** A [`Token`] encodes `(slot, generation)`
//!   ([`token_slot`]/[`token_gen`]). The driver's connection table is a
//!   slab of per-slot locks (no `Mutex<HashMap>`), and the reactor's
//!   watch table, fd map and liveness table are plain vectors indexed
//!   by slot and fd. The generation check — one atomic load against a
//!   per-slot cell — subsumes the old liveness `HashMap`: a stale
//!   token can never observe the slot's next tenant, which is the
//!   fd-reuse safety invariant PR 2 introduced, now O(1) and lock-free
//!   on the delivery path.
//! * **Batched delivery.** One backend `wait` round yields a batch of
//!   ready fds; the reactor ships the whole round as a single recycled
//!   `Vec<DriverEvent>` and consumers drain it via
//!   [`ConnDriver::next_events`] — one channel transfer and (in the
//!   runtime) one shard-queue lock per round instead of per event.
//! * **Buffer pooling.** Response payloads are serialized into buffers
//!   checked out of a bounded [`pool::BytePool`]
//!   ([`ConnDriver::take_write_buf`]/[`ConnDriver::submit_write_buf`])
//!   and recycled after the transport takes the bytes; per-connection
//!   read scratch ([`ConnDriver::take_read_buf`]) is reused across all
//!   requests on a keep-alive connection.
//! * **Shared fan-out payloads.** Multicast results are encoded once,
//!   sealed into a refcounted [`pool::SharedPayload`]
//!   ([`ConnDriver::seal_write_buf`]) and submitted to every
//!   subscriber via [`ConnDriver::submit_write_shared`]. A blocked
//!   connection buffers a *reference* in its segment-queue
//!   [`pool::OutBuf`], not a copy, and the buffer returns to the pool
//!   exactly once when the last drain (or teardown) releases it. A
//!   subscriber whose output buffer would exceed the configured bound
//!   is evicted (slow-consumer policy) rather than buffering without
//!   limit.
//!
//! On multi-core hosts the reactor thread pins itself to a core
//! ([`affinity`]; opt out with `FLUX_PIN=0`), matching the runtime's
//! pinned dispatcher shards.
//!
//! ## Overload invariants
//!
//! Edge admission lives here, in the [`ConnDriver`], in front of the
//! runtime's shard-queue depth caps (see `flux-runtime`'s "Overload
//! invariants" docs for the shedding layer above):
//!
//! * **Accept governing.** [`NetConfig::max_conns`] bounds live
//!   connections — past it an accepted socket is closed immediately
//!   (peers fail fast instead of parking in a backlog the server will
//!   never drain) — and [`NetConfig::accept_rate`] token-buckets the
//!   accept loop, *pacing* admission (the socket waits for a token)
//!   rather than rejecting. Both are counted
//!   ([`DriverCounters::accepts_governed`] vs
//!   [`DriverCounters::accepts_admitted`]), so `admitted + governed`
//!   always reconciles with accepts observed.
//! * **Idle and slow-loris reaping.** With [`NetConfig::idle_timeout`]
//!   set, every slot carries a *progress* stamp refreshed only by
//!   **application-level progress** — a complete parsed request or a
//!   successful response drain, via [`ConnDriver::mark_progress`] —
//!   never by raw readable bytes, so a peer trickling one header byte
//!   per second is reaped on schedule. The sweep
//!   ([`ConnDriver::reap_idle`]) runs off the reactor's wait loop
//!   (bounded cadence, CAS-deduped), skips connections with writes in
//!   flight, and releases the slab slot, its buffers and the epoll
//!   watch in one pass; `EMFILE`/`ENFILE` on accept triggers an
//!   immediate sweep before backing off.
//! * **Backpressure is visible before it is fatal.**
//!   [`DriverCounters::writes_deferred`] counts submissions that
//!   queued behind existing output — the early-warning signal — while
//!   the existing bound still evicts the slow consumer when the buffer
//!   limit is hit.

pub mod affinity;
pub mod driver;
pub mod mem;
#[cfg(unix)]
pub mod poller;
pub mod pool;
pub mod reactor;
pub mod shaper;
pub mod tcp;
pub mod traits;

pub use driver::{
    token_gen, token_slot, ConnDriver, DriverCounters, DriverEvent, NetConfig, SharedConn, Token,
};
pub use mem::{MemConn, MemDatagram, MemListener, MemNet};
#[cfg(unix)]
pub use poller::{
    create_poller, uring_available, Interest, PollPoller, Poller, PollerBackend, PollerEvent,
};
#[cfg(target_os = "linux")]
pub use poller::{EpollPoller, UringPoller};
pub use pool::{BytePool, OutBuf, SharedPayload};
#[cfg(unix)]
pub use reactor::Reactor;
pub use shaper::Shaper;
pub use tcp::{TcpAcceptor, TcpConn, UdpDatagram};
pub use traits::{read_exact_timeout, Conn, Datagram, Listener, WriteProgress};
