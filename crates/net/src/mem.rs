//! Hermetic in-memory transport: duplex pipes, a listener registry and
//! optional link shaping. Benchmarks run on this transport so results do
//! not depend on kernel socket buffers or loopback quirks.

use crate::pool::{OutBuf, SharedPayload};
use crate::shaper::Shaper;
use crate::traits::{Conn, Datagram, Listener};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::sync::Arc;
use std::time::Duration;

/// One direction of a duplex in-memory connection.
#[derive(Default)]
struct PipeState {
    data: VecDeque<u8>,
    closed: bool,
    watch: Option<Box<dyn FnOnce() + Send>>,
}

#[derive(Default)]
struct Pipe {
    state: Mutex<PipeState>,
    cond: Condvar,
}

impl Pipe {
    fn write(&self, buf: &[u8]) -> io::Result<usize> {
        let mut s = self.state.lock();
        if s.closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "peer closed the connection",
            ));
        }
        s.data.extend(buf);
        let watch = s.watch.take();
        drop(s);
        self.cond.notify_all();
        if let Some(w) = watch {
            w();
        }
        Ok(buf.len())
    }

    fn read(&self, buf: &mut [u8], timeout: Option<Duration>) -> io::Result<usize> {
        let mut s = self.state.lock();
        loop {
            if !s.data.is_empty() {
                let n = buf.len().min(s.data.len());
                for b in buf.iter_mut().take(n) {
                    *b = s.data.pop_front().expect("checked non-empty");
                }
                return Ok(n);
            }
            if s.closed {
                return Ok(0); // EOF
            }
            match timeout {
                None => self.cond.wait(&mut s),
                Some(d) => {
                    if self.cond.wait_for(&mut s, d).timed_out() && s.data.is_empty() && !s.closed {
                        return Err(io::Error::new(io::ErrorKind::TimedOut, "read timed out"));
                    }
                }
            }
        }
    }

    fn wait_readable(&self, timeout: Option<Duration>) -> io::Result<bool> {
        let mut s = self.state.lock();
        loop {
            if !s.data.is_empty() || s.closed {
                return Ok(true);
            }
            match timeout {
                None => self.cond.wait(&mut s),
                Some(d) => {
                    if self.cond.wait_for(&mut s, d).timed_out() && s.data.is_empty() && !s.closed {
                        return Ok(false);
                    }
                }
            }
        }
    }

    fn set_watch(&self, watch: Box<dyn FnOnce() + Send>) {
        let mut s = self.state.lock();
        if !s.data.is_empty() || s.closed {
            drop(s);
            watch();
        } else {
            s.watch = Some(watch);
        }
    }

    fn close(&self) {
        let mut s = self.state.lock();
        s.closed = true;
        let watch = s.watch.take();
        drop(s);
        self.cond.notify_all();
        if let Some(w) = watch {
            w();
        }
    }
}

/// One endpoint of an in-memory connection.
pub struct MemConn {
    rx: Arc<Pipe>,
    tx: Arc<Pipe>,
    read_timeout: Option<Duration>,
    shaper: Option<Arc<Shaper>>,
    /// Output segment queue for enqueued writes on *shaped* links,
    /// drained by the driver's drain thread (see [`Conn::enqueue_write`]
    /// below). Shared fan-out payloads buffer a reference, not a copy.
    out: OutBuf,
    local: String,
    peer: String,
}

impl MemConn {
    /// Creates a connected pair `(client, server)` without a network.
    pub fn pair() -> (MemConn, MemConn) {
        Self::pair_shaped(None)
    }

    /// Connected pair sharing a link shaper.
    pub fn pair_shaped(shaper: Option<Arc<Shaper>>) -> (MemConn, MemConn) {
        let a = Arc::new(Pipe::default());
        let b = Arc::new(Pipe::default());
        (
            MemConn {
                rx: a.clone(),
                tx: b.clone(),
                read_timeout: None,
                shaper: shaper.clone(),
                out: OutBuf::new(),
                local: "mem:client".into(),
                peer: "mem:server".into(),
            },
            MemConn {
                rx: b,
                tx: a,
                read_timeout: None,
                shaper,
                out: OutBuf::new(),
                local: "mem:server".into(),
                peer: "mem:client".into(),
            },
        )
    }
}

impl io::Read for MemConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        self.rx.read(buf, self.read_timeout)
    }
}

impl io::Write for MemConn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if let Some(s) = &self.shaper {
            s.consume(buf.len());
        }
        self.tx.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Conn for MemConn {
    fn peer_addr(&self) -> String {
        self.peer.clone()
    }

    fn set_read_timeout(&mut self, d: Option<Duration>) -> io::Result<()> {
        self.read_timeout = d;
        Ok(())
    }

    fn wait_readable(&self, timeout: Option<Duration>) -> io::Result<bool> {
        self.rx.wait_readable(timeout)
    }

    fn set_read_watch(&self, watch: Box<dyn FnOnce() + Send>) -> bool {
        self.rx.set_watch(watch);
        true
    }

    fn enqueue_write(&mut self, bytes: &[u8]) -> io::Result<crate::traits::WriteProgress> {
        if let Some(shaper) = self.shaper.clone() {
            // A shaped link *blocks* in the token bucket to model
            // transmission time. Burst-sized traffic whose tokens are
            // available passes synchronously; anything past the bucket
            // is buffered for the driver's drain thread, which can
            // afford the sleep (the submitting dispatcher shard cannot).
            if !self.out.is_empty() || !shaper.try_consume(bytes.len()) {
                self.out.push_owned(bytes, 0);
                return Ok(crate::traits::WriteProgress::Pending);
            }
            // Tokens already consumed: write to the pipe directly so
            // the shaper is not charged twice.
            self.tx.write(bytes)?;
            return Ok(crate::traits::WriteProgress::Complete);
        }
        // The unshaped pipe never exerts backpressure: enqueues complete
        // synchronously and no drain watch is needed.
        io::Write::write_all(self, bytes)?;
        Ok(crate::traits::WriteProgress::Complete)
    }

    fn enqueue_write_shared(
        &mut self,
        payload: &SharedPayload,
    ) -> io::Result<crate::traits::WriteProgress> {
        if let Some(shaper) = self.shaper.clone() {
            if !self.out.is_empty() || !shaper.try_consume(payload.len()) {
                // Blocked: buffer a reference, not a per-subscriber copy.
                self.out.push_shared(payload, 0);
                return Ok(crate::traits::WriteProgress::Pending);
            }
            self.tx.write(payload)?;
            return Ok(crate::traits::WriteProgress::Complete);
        }
        self.tx.write(payload)?;
        Ok(crate::traits::WriteProgress::Complete)
    }

    fn pending_out(&self) -> usize {
        self.out.len()
    }

    fn drain_out(&mut self) -> io::Result<crate::traits::WriteProgress> {
        // Runs on the driver's flux-net-drain thread, which may sleep in
        // the shaper. One bounded chunk per call keeps the connection
        // lock's hold time to a single chunk's transmission, so flows
        // and fresh enqueues interleave with a long drain.
        const DRAIN_CHUNK: usize = 16 * 1024;
        let Some(front) = self.out.front() else {
            return Ok(crate::traits::WriteProgress::Complete);
        };
        let n = front.len().min(DRAIN_CHUNK);
        if let Some(s) = &self.shaper {
            // The buffered bytes never passed `try_consume`, so the
            // drain pays their transmission time here (blocking).
            s.consume(n);
        }
        self.tx.write(&front[..n])?;
        self.out.advance(n);
        Ok(if self.out.is_empty() {
            crate::traits::WriteProgress::Complete
        } else {
            crate::traits::WriteProgress::Pending
        })
    }

    fn try_clone(&self) -> io::Result<Box<dyn Conn>> {
        Ok(Box::new(MemConn {
            rx: self.rx.clone(),
            tx: self.tx.clone(),
            read_timeout: self.read_timeout,
            shaper: self.shaper.clone(),
            out: OutBuf::new(),
            local: self.local.clone(),
            peer: self.peer.clone(),
        }))
    }

    fn shutdown_write(&mut self) -> io::Result<()> {
        self.tx.close();
        Ok(())
    }
}

impl Drop for MemConn {
    fn drop(&mut self) {
        // Only close when this is the last handle to the tx pipe other
        // than the peer's rx reference (2 = peer rx + our tx).
        if Arc::strong_count(&self.tx) <= 2 {
            self.tx.close();
        }
    }
}

type PendingConn = (MemConn, Sender<()>);

struct ListenerEntry {
    tx: Sender<PendingConn>,
}

/// An in-memory network: a registry of listeners by address, with an
/// optional shared link shaper applied to every connection's writes.
#[derive(Default)]
pub struct MemNet {
    listeners: Mutex<HashMap<String, ListenerEntry>>,
    shaper: Mutex<Option<Arc<Shaper>>>,
    datagrams: Mutex<HashMap<String, Sender<(Vec<u8>, String)>>>,
}

impl MemNet {
    pub fn new() -> Arc<Self> {
        Arc::new(MemNet::default())
    }

    /// Caps aggregate write throughput across all connections (the
    /// simulated link capacity). Applies to connections made afterwards.
    pub fn set_link_capacity(&self, bytes_per_s: Option<f64>) {
        *self.shaper.lock() = bytes_per_s.map(|r| Arc::new(Shaper::new(r)));
    }

    /// Starts listening on `addr`.
    pub fn listen(self: &Arc<Self>, addr: &str) -> io::Result<MemListener> {
        let (tx, rx) = bounded(1024);
        let mut map = self.listeners.lock();
        if map.contains_key(addr) {
            return Err(io::Error::new(
                io::ErrorKind::AddrInUse,
                format!("mem address `{addr}` already bound"),
            ));
        }
        map.insert(addr.to_string(), ListenerEntry { tx });
        Ok(MemListener {
            net: self.clone(),
            addr: addr.to_string(),
            rx,
            accept_timeout: Mutex::new(None),
        })
    }

    /// Connects to a listening address.
    pub fn connect(self: &Arc<Self>, addr: &str) -> io::Result<MemConn> {
        let entry_tx = {
            let map = self.listeners.lock();
            match map.get(addr) {
                Some(e) => e.tx.clone(),
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionRefused,
                        format!("nothing listening on mem address `{addr}`"),
                    ))
                }
            }
        };
        let shaper = self.shaper.lock().clone();
        let (client, server) = MemConn::pair_shaped(shaper);
        let (ack_tx, ack_rx) = bounded(1);
        entry_tx
            .send((server, ack_tx))
            .map_err(|_| io::Error::new(io::ErrorKind::ConnectionRefused, "listener closed"))?;
        // Wait for accept so connect() has TCP-like semantics.
        ack_rx
            .recv_timeout(Duration::from_secs(10))
            .map_err(|_| io::Error::new(io::ErrorKind::TimedOut, "accept timed out"))?;
        Ok(client)
    }

    /// Binds a datagram socket on `addr`.
    pub fn bind_datagram(self: &Arc<Self>, addr: &str) -> io::Result<MemDatagram> {
        let (tx, rx) = bounded(4096);
        let mut map = self.datagrams.lock();
        if map.contains_key(addr) {
            return Err(io::Error::new(
                io::ErrorKind::AddrInUse,
                format!("mem datagram address `{addr}` already bound"),
            ));
        }
        map.insert(addr.to_string(), tx);
        Ok(MemDatagram {
            net: self.clone(),
            addr: addr.to_string(),
            rx,
        })
    }
}

/// An in-memory listener.
pub struct MemListener {
    net: Arc<MemNet>,
    addr: String,
    rx: Receiver<PendingConn>,
    accept_timeout: Mutex<Option<Duration>>,
}

impl Listener for MemListener {
    fn accept(&self) -> io::Result<Box<dyn Conn>> {
        let timeout = *self.accept_timeout.lock();
        let (conn, ack) = match timeout {
            None => self
                .rx
                .recv()
                .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "net closed"))?,
            Some(d) => match self.rx.recv_timeout(d) {
                Ok(p) => p,
                Err(RecvTimeoutError::Timeout) => {
                    return Err(io::Error::new(io::ErrorKind::TimedOut, "accept timed out"))
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(io::Error::new(io::ErrorKind::BrokenPipe, "net closed"))
                }
            },
        };
        // Ack the connect so the client's connect() returns.
        let _ = ack.send(());
        Ok(Box::new(conn))
    }

    fn set_accept_timeout(&self, d: Option<Duration>) {
        *self.accept_timeout.lock() = d;
    }

    fn local_addr(&self) -> String {
        self.addr.clone()
    }
}

impl Drop for MemListener {
    fn drop(&mut self) {
        self.net.listeners.lock().remove(&self.addr);
    }
}

/// An in-memory datagram socket.
pub struct MemDatagram {
    net: Arc<MemNet>,
    addr: String,
    rx: Receiver<(Vec<u8>, String)>,
}

impl Datagram for MemDatagram {
    fn send_to(&self, buf: &[u8], addr: &str) -> io::Result<usize> {
        let map = self.net.datagrams.lock();
        if let Some(tx) = map.get(addr) {
            // Datagram semantics: drop on full queue or dead receiver.
            let _ = tx.try_send((buf.to_vec(), self.addr.clone()));
        }
        Ok(buf.len())
    }

    fn recv_from(
        &self,
        buf: &mut [u8],
        timeout: Option<Duration>,
    ) -> io::Result<Option<(usize, String)>> {
        let msg = match timeout {
            None => self.rx.recv().ok(),
            Some(d) => self.rx.recv_timeout(d).ok(),
        };
        match msg {
            None => Ok(None),
            Some((data, from)) => {
                let n = data.len().min(buf.len());
                buf[..n].copy_from_slice(&data[..n]);
                Ok(Some((n, from)))
            }
        }
    }

    fn local_addr(&self) -> String {
        self.addr.clone()
    }
}

impl Drop for MemDatagram {
    fn drop(&mut self) {
        self.net.datagrams.lock().remove(&self.addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::thread;

    #[test]
    fn pair_round_trip() {
        let (mut a, mut b) = MemConn::pair();
        a.write_all(b"hello").unwrap();
        let mut buf = [0u8; 5];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        b.write_all(b"world").unwrap();
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"world");
    }

    #[test]
    fn eof_after_shutdown() {
        let (mut a, mut b) = MemConn::pair();
        a.write_all(b"x").unwrap();
        a.shutdown_write().unwrap();
        let mut buf = Vec::new();
        b.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"x");
    }

    #[test]
    fn read_timeout_fires() {
        let (a, mut b) = MemConn::pair();
        b.set_read_timeout(Some(Duration::from_millis(20))).unwrap();
        let mut buf = [0u8; 1];
        let err = b.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        drop(a);
    }

    #[test]
    fn watch_fires_on_write() {
        let (mut a, b) = MemConn::pair();
        let (tx, rx) = bounded(1);
        assert!(b.set_read_watch(Box::new(move || {
            let _ = tx.send(());
        })));
        assert!(rx.try_recv().is_err(), "not readable yet");
        a.write_all(b"!").unwrap();
        rx.recv_timeout(Duration::from_secs(1)).unwrap();
    }

    #[test]
    fn watch_fires_immediately_when_data_pending() {
        let (mut a, b) = MemConn::pair();
        a.write_all(b"!").unwrap();
        let (tx, rx) = bounded(1);
        b.set_read_watch(Box::new(move || {
            let _ = tx.send(());
        }));
        rx.recv_timeout(Duration::from_secs(1)).unwrap();
    }

    #[test]
    fn watch_fires_on_close() {
        let (a, b) = MemConn::pair();
        let (tx, rx) = bounded(1);
        b.set_read_watch(Box::new(move || {
            let _ = tx.send(());
        }));
        drop(a);
        rx.recv_timeout(Duration::from_secs(1)).unwrap();
    }

    #[test]
    fn listener_accept_connect() {
        let net = MemNet::new();
        let listener = net.listen("srv").unwrap();
        let net2 = net.clone();
        let client = thread::spawn(move || {
            let mut c = net2.connect("srv").unwrap();
            c.write_all(b"ping").unwrap();
            let mut buf = [0u8; 4];
            c.read_exact(&mut buf).unwrap();
            buf
        });
        let mut server = listener.accept().unwrap();
        let mut buf = [0u8; 4];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        server.write_all(b"pong").unwrap();
        assert_eq!(&client.join().unwrap(), b"pong");
    }

    #[test]
    fn connect_refused_without_listener() {
        let net = MemNet::new();
        let err = net.connect("nobody").err().unwrap();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
    }

    #[test]
    fn accept_timeout() {
        let net = MemNet::new();
        let l = net.listen("srv").unwrap();
        l.set_accept_timeout(Some(Duration::from_millis(20)));
        let err = l.accept().err().unwrap();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn address_reuse_after_drop() {
        let net = MemNet::new();
        let l = net.listen("srv").unwrap();
        assert!(net.listen("srv").is_err());
        drop(l);
        assert!(net.listen("srv").is_ok());
    }

    #[test]
    fn datagram_send_recv() {
        let net = MemNet::new();
        let a = net.bind_datagram("a").unwrap();
        let b = net.bind_datagram("b").unwrap();
        a.send_to(b"tick", "b").unwrap();
        let mut buf = [0u8; 16];
        let (n, from) = b
            .recv_from(&mut buf, Some(Duration::from_secs(1)))
            .unwrap()
            .unwrap();
        assert_eq!(&buf[..n], b"tick");
        assert_eq!(from, "a");
    }

    #[test]
    fn datagram_to_nowhere_is_dropped() {
        let net = MemNet::new();
        let a = net.bind_datagram("a").unwrap();
        assert_eq!(a.send_to(b"x", "ghost").unwrap(), 1);
    }

    #[test]
    fn shaped_link_caps_throughput() {
        let net = MemNet::new();
        net.set_link_capacity(Some(1_000_000.0)); // 1 MB/s
        let l = net.listen("srv").unwrap();
        let net2 = net.clone();
        let t = thread::spawn(move || {
            let mut c = net2.connect("srv").unwrap();
            let chunk = vec![0u8; 64 * 1024];
            let t0 = std::time::Instant::now();
            // 320 KB beyond the 64KB burst at 1MB/s ≈ 0.26+ s.
            for _ in 0..5 {
                c.write_all(&chunk).unwrap();
            }
            t0.elapsed()
        });
        let mut server = l.accept().unwrap();
        let mut sunk = 0usize;
        let mut buf = vec![0u8; 64 * 1024];
        while sunk < 5 * 64 * 1024 {
            sunk += server.read(&mut buf).unwrap();
        }
        let dt = t.join().unwrap();
        assert!(
            dt > Duration::from_millis(180),
            "shaping must slow writes, took {dt:?}"
        );
    }

    #[test]
    fn clone_shares_stream() {
        let (mut a, b) = MemConn::pair();
        let mut b2 = b.try_clone().unwrap();
        a.write_all(b"xy").unwrap();
        let mut buf = [0u8; 1];
        let mut bb = b;
        bb.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"x");
        b2.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"y");
    }
}
