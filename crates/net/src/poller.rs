//! Pluggable readiness backends: the syscall-facing core of the
//! reactor, extracted behind the [`Poller`] trait.
//!
//! The paper's central claim is runtime independence — the same Flux
//! program runs on any concurrency substrate. This module extends that
//! symmetry one layer down: the [`Reactor`](crate::reactor::Reactor)
//! owns *policy* (interest bookkeeping, generation-tagged liveness
//! against fd reuse, drain scheduling, the self-pipe wakeup) while the
//! backend owns only the *mechanism* of waiting on file descriptors:
//!
//! * [`PollPoller`] — the portable `poll(2)` backend. The `pollfd`
//!   array is maintained incrementally on `add`/`modify`/`delete`
//!   (fired entries are masked in place by negating the fd), so the
//!   per-wait bookkeeping is O(changes); only the kernel's own scan
//!   remains O(watched fds).
//! * [`EpollPoller`] — raw-FFI `epoll(7)` (Linux). Interest lives in
//!   the kernel (`EPOLL_CTL_ADD`/`MOD`/`DEL`) and every registration
//!   carries `EPOLLONESHOT`, so a wait costs O(ready fds) and a fired
//!   watch stays quiet until it is re-armed. This is the Linux default.
//!
//! **The one-shot contract.** Both backends deliver *one-shot* events:
//! after [`Poller::wait`] reports an fd, that fd is disarmed until the
//! caller re-issues [`Poller::modify`] (or removes it with
//! [`Poller::delete`]). The reactor therefore finishes handling every
//! reported fd with exactly one `modify`/`delete` call before its next
//! `wait`. `poll(2)` has no kernel-side one-shot, so [`PollPoller`]
//! emulates it by leaving fired fds out of the poll set until the
//! re-arm. That includes error conditions: `POLLERR`/`POLLHUP` cannot
//! be masked on a polled fd, so omission is what makes a fired watch
//! deliver hangups at most once per arm — exactly like a fired
//! `EPOLLONESHOT` watch — keeping the two backends observationally
//! identical, which is what the conformance suite in
//! `crates/net/tests/` checks.
//!
//! Backend selection: [`PollerBackend::default()`] picks epoll on
//! Linux and poll elsewhere; the `FLUX_POLLER` environment variable
//! (`poll` / `epoll`) overrides at runtime, and an epoll that fails to
//! initialize falls back to poll automatically. Future backends
//! (kqueue, io_uring) slot in behind the same four methods.

#![cfg(unix)]

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Which readiness conditions a watch cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    pub read: bool,
    pub write: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };

    /// No conditions armed. The fd stays registered but delivers no
    /// read/write readiness. Whether unmaskable error conditions
    /// (ERR/HUP) surface in this state is backend-specific — `poll(2)`
    /// reports them for any fd in its set, a oneshot epoll arm delivers
    /// them once — which is why the reactor never hands a backend an
    /// empty interest: a watch with nothing armed is deleted, and a
    /// Busy-parked write-only watch is simply left disarmed (fired),
    /// where both backends are silent until the re-arm.
    pub fn none() -> Interest {
        Interest::default()
    }
}

/// One readiness event out of [`Poller::wait`]. Error/hangup conditions
/// (`POLLERR`/`POLLHUP`/`POLLNVAL`, `EPOLLERR`/`EPOLLHUP`) are folded
/// into **both** flags so the read path can observe the error on its
/// next read and the write path can fail its drain — mirroring how the
/// reactor treated raw `revents`.
#[derive(Debug, Clone, Copy)]
pub struct PollerEvent {
    pub fd: RawFd,
    pub readable: bool,
    pub writable: bool,
}

/// A readiness multiplexer over interest-tagged file descriptors.
///
/// Implementations are driven from a single thread (the reactor's); the
/// trait is `Send` so the whole poller moves into that thread, not
/// `Sync`. See the module docs for the one-shot contract shared by all
/// backends.
pub trait Poller: Send {
    /// The backend's name, for stats, logs and benchmark records.
    fn name(&self) -> &'static str;

    /// Registers `fd` with `interest`. Registering an already-watched
    /// fd replaces its interest (upsert), so callers need not track
    /// which of add/modify applies after an fd was reused.
    fn add(&mut self, fd: RawFd, interest: Interest) -> io::Result<()>;

    /// Re-arms `fd` with `interest` — the one-shot re-arm. Modifying an
    /// unregistered fd registers it.
    fn modify(&mut self, fd: RawFd, interest: Interest) -> io::Result<()>;

    /// Drops the watch on `fd`. Deleting an fd that is not registered
    /// (or already closed by the kernel) is not an error.
    fn delete(&mut self, fd: RawFd) -> io::Result<()>;

    /// Blocks until at least one watched fd is ready or `timeout`
    /// elapses, appending ready fds to `events` (cleared first). Each
    /// reported fd is disarmed until the caller re-issues
    /// [`Poller::modify`] for it.
    fn wait(&mut self, events: &mut Vec<PollerEvent>, timeout: Duration) -> io::Result<()>;
}

/// Which [`Poller`] implementation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollerBackend {
    /// Portable `poll(2)`: O(watched fds) per wakeup.
    Poll,
    /// Linux `epoll(7)`: O(ready fds) per wakeup, kernel-held interest.
    Epoll,
}

impl Default for PollerBackend {
    /// Epoll on Linux, poll elsewhere — unless `FLUX_POLLER` overrides
    /// (`FLUX_POLLER=poll` selects the fallback at runtime, the knob the
    /// CI matrix leg exercises).
    fn default() -> Self {
        match std::env::var("FLUX_POLLER").as_deref() {
            Ok("poll") => PollerBackend::Poll,
            Ok("epoll") => PollerBackend::Epoll,
            _ => {
                if cfg!(target_os = "linux") {
                    PollerBackend::Epoll
                } else {
                    PollerBackend::Poll
                }
            }
        }
    }
}

/// Instantiates the chosen backend, falling back to [`PollPoller`] when
/// epoll is unavailable (non-Linux hosts, or a failed `epoll_create1`).
pub fn create_poller(backend: PollerBackend) -> Box<dyn Poller> {
    match backend {
        PollerBackend::Poll => Box::new(PollPoller::new()),
        PollerBackend::Epoll => {
            #[cfg(target_os = "linux")]
            let poller: Box<dyn Poller> = match EpollPoller::new() {
                Ok(p) => Box::new(p),
                Err(_) => Box::new(PollPoller::new()),
            };
            #[cfg(not(target_os = "linux"))]
            let poller: Box<dyn Poller> = Box::new(PollPoller::new());
            poller
        }
    }
}

/// The tiny slice of libc the backends need, declared directly so the
/// offline build does not depend on the `libc` crate.
#[allow(non_camel_case_types)]
mod sys {
    pub type c_short = i16;
    pub type c_int = i32;
    pub type nfds_t = std::ffi::c_ulong;

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;
    pub const POLLNVAL: c_short = 0x020;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct pollfd {
        pub fd: super::RawFd,
        pub events: c_short,
        pub revents: c_short,
    }

    extern "C" {
        pub fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
    }

    #[cfg(target_os = "linux")]
    pub mod epoll {
        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLLONESHOT: u32 = 1 << 30;

        pub const EPOLL_CTL_ADD: super::c_int = 1;
        pub const EPOLL_CTL_DEL: super::c_int = 2;
        pub const EPOLL_CTL_MOD: super::c_int = 3;
        pub const EPOLL_CLOEXEC: super::c_int = 0o2000000;

        /// `struct epoll_event`; packed on x86-64, naturally aligned on
        /// every other architecture (matching the kernel ABI).
        #[repr(C)]
        #[cfg_attr(target_arch = "x86_64", repr(packed))]
        #[derive(Clone, Copy)]
        pub struct epoll_event {
            pub events: u32,
            pub data: u64,
        }

        extern "C" {
            pub fn epoll_create1(flags: super::c_int) -> super::c_int;
            pub fn epoll_ctl(
                epfd: super::c_int,
                op: super::c_int,
                fd: super::c_int,
                event: *mut epoll_event,
            ) -> super::c_int;
            pub fn epoll_wait(
                epfd: super::c_int,
                events: *mut epoll_event,
                maxevents: super::c_int,
                timeout: super::c_int,
            ) -> super::c_int;
            pub fn close(fd: super::c_int) -> super::c_int;
        }
    }
}

/// Clamps a wait timeout to poll/epoll's millisecond argument.
fn timeout_ms(timeout: Duration) -> sys::c_int {
    timeout.as_millis().clamp(0, sys::c_int::MAX as u128) as sys::c_int
}

/// The portable `poll(2)` backend. The `pollfd` array is maintained
/// *incrementally*: `add`/`modify`/`delete` edit it in place (an
/// fd-indexed side table maps each fd to its array position), so the
/// bookkeeping per wait is O(changes since the last wait) — the old
/// rebuild-from-a-HashMap-every-round cost is gone. The kernel scan
/// itself remains O(watched fds): that is inherent to `poll(2)` and is
/// exactly the cost the epoll backend exists to avoid. Both tables
/// shrink back after churn (see `maybe_shrink`): when the watch count
/// falls to a quarter of a table's size, capacity is released, so a
/// connection spike does not pin peak-fd-sized vectors for the rest of
/// the server's life.
///
/// One-shot emulation: a fired entry's fd is negated in place
/// (`poll(2)` ignores negative fds, clearing their `revents`), which
/// masks even unmaskable `POLLERR`/`POLLHUP` until `modify` re-arms it
/// by restoring the fd — observationally identical to a fired
/// `EPOLLONESHOT` watch.
pub struct PollPoller {
    pollfds: Vec<sys::pollfd>,
    /// fd → index into `pollfds` (`usize::MAX` = not registered),
    /// indexed by raw fd. Raw fds are small kernel-allocated integers,
    /// so this is a dense table, not a map.
    index_of: Vec<usize>,
    /// 1 + the highest registered fd (0 when nothing is registered):
    /// the live tail of `index_of`, maintained incrementally — bumped
    /// on `add`, recomputed (one backward scan) only when the highest
    /// fd itself is deleted — so the shrink check in `maybe_shrink`
    /// never scans on an ordinary delete.
    tail: usize,
}

/// Masks a fired entry: negative fds are ignored by `poll(2)`.
fn masked(fd: RawFd) -> RawFd {
    debug_assert!(fd >= 0);
    -fd - 1
}

/// Recovers the registered fd from a possibly-masked `pollfd.fd`.
fn unmasked(fd: RawFd) -> RawFd {
    if fd < 0 {
        -(fd + 1)
    } else {
        fd
    }
}

fn interest_bits(interest: Interest) -> sys::c_short {
    let mut bits: sys::c_short = 0;
    if interest.read {
        bits |= sys::POLLIN;
    }
    if interest.write {
        bits |= sys::POLLOUT;
    }
    bits
}

impl PollPoller {
    pub fn new() -> Self {
        PollPoller {
            pollfds: Vec::new(),
            index_of: Vec::new(),
            tail: 0,
        }
    }

    fn index(&self, fd: RawFd) -> Option<usize> {
        match self.index_of.get(fd as usize) {
            Some(&i) if i != usize::MAX => Some(i),
            _ => None,
        }
    }

    /// Memory footprint observability for the churn-shrink tests and
    /// debugging: `(pollfd array capacity, fd-index table length)`.
    /// Not part of the [`Poller`] contract.
    pub fn footprint(&self) -> (usize, usize) {
        (self.pollfds.capacity(), self.index_of.len())
    }

    /// Gives memory back after churn, so a long-lived server that once
    /// peaked at N connections (or at a high fd number) does not hold
    /// peak-sized tables forever. Called from `delete`; every check is
    /// a cheap comparison (the live tail is maintained incrementally,
    /// see [`PollPoller::tail`]), so deletes stay O(1) outside the rare
    /// highest-fd recompute.
    fn maybe_shrink(&mut self) {
        const FLOOR: usize = 64;
        if self.pollfds.capacity() > FLOOR && self.pollfds.len() * 4 <= self.pollfds.capacity() {
            self.pollfds
                .shrink_to(self.pollfds.len().max(FLOOR / 2) * 2);
        }
        // The table is dense by raw fd: everything past the highest
        // registered fd (`tail`) is reclaimable.
        if self.index_of.len() > FLOOR && self.tail * 2 <= self.index_of.len() {
            self.index_of.truncate(self.tail);
            self.index_of.shrink_to(self.tail.max(FLOOR / 2) * 2);
        }
    }
}

impl Default for PollPoller {
    fn default() -> Self {
        Self::new()
    }
}

impl Poller for PollPoller {
    fn name(&self) -> &'static str {
        "poll"
    }

    fn add(&mut self, fd: RawFd, interest: Interest) -> io::Result<()> {
        if fd < 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "negative fd"));
        }
        let bits = interest_bits(interest);
        match self.index(fd) {
            Some(i) => {
                // Upsert: replace interest and clear the fired mask.
                self.pollfds[i] = sys::pollfd {
                    fd,
                    events: bits,
                    revents: 0,
                };
            }
            None => {
                let i = self.pollfds.len();
                self.pollfds.push(sys::pollfd {
                    fd,
                    events: bits,
                    revents: 0,
                });
                let idx = fd as usize;
                if self.index_of.len() <= idx {
                    self.index_of.resize(idx + 1, usize::MAX);
                }
                self.index_of[idx] = i;
                self.tail = self.tail.max(idx + 1);
            }
        }
        Ok(())
    }

    fn modify(&mut self, fd: RawFd, interest: Interest) -> io::Result<()> {
        self.add(fd, interest)
    }

    fn delete(&mut self, fd: RawFd) -> io::Result<()> {
        if fd < 0 {
            return Ok(());
        }
        let Some(i) = self.index(fd) else {
            return Ok(()); // not registered: not an error (trait contract)
        };
        self.index_of[fd as usize] = usize::MAX;
        self.pollfds.swap_remove(i);
        // The former last entry moved into slot `i`: fix its index (it
        // may be fired, i.e. masked — map back to the registered fd).
        if let Some(moved) = self.pollfds.get(i) {
            self.index_of[unmasked(moved.fd) as usize] = i;
        }
        // Deleting the highest registered fd moves the live tail down:
        // recompute it with one backward scan (amortized — each scanned
        // slot was paid for by the add that grew past it).
        if fd as usize + 1 == self.tail {
            self.tail = self.index_of[..self.tail]
                .iter()
                .rposition(|&i| i != usize::MAX)
                .map_or(0, |p| p + 1);
        }
        self.maybe_shrink();
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<PollerEvent>, timeout: Duration) -> io::Result<()> {
        events.clear();
        let n = unsafe {
            sys::poll(
                self.pollfds.as_mut_ptr(),
                self.pollfds.len() as sys::nfds_t,
                timeout_ms(timeout),
            )
        };
        if n < 0 {
            return Err(io::Error::last_os_error());
        }
        const ERRS: sys::c_short = sys::POLLERR | sys::POLLHUP | sys::POLLNVAL;
        let mut remaining = n as usize;
        for pfd in &mut self.pollfds {
            if remaining == 0 {
                break;
            }
            if pfd.fd < 0 || pfd.revents == 0 {
                continue;
            }
            remaining -= 1;
            let readable = pfd.revents & (sys::POLLIN | ERRS) != 0;
            let writable = pfd.revents & (sys::POLLOUT | ERRS) != 0;
            let fd = pfd.fd;
            // One-shot: mask the entry in place until the re-arm.
            pfd.fd = masked(fd);
            pfd.revents = 0;
            events.push(PollerEvent {
                fd,
                readable,
                writable,
            });
        }
        Ok(())
    }
}

/// The Linux `epoll(7)` backend: raw FFI, no `libc` crate. Interest is
/// held by the kernel; every registration carries `EPOLLONESHOT`, so a
/// fired watch stays disarmed until [`Poller::modify`] re-arms it and a
/// wakeup costs O(ready fds) regardless of how many are watched.
#[cfg(target_os = "linux")]
pub struct EpollPoller {
    epfd: RawFd,
    buf: Vec<sys::epoll::epoll_event>,
}

#[cfg(target_os = "linux")]
impl EpollPoller {
    pub fn new() -> io::Result<Self> {
        let epfd = unsafe { sys::epoll::epoll_create1(sys::epoll::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EpollPoller {
            epfd,
            buf: vec![sys::epoll::epoll_event { events: 0, data: 0 }; 256],
        })
    }

    fn mask(interest: Interest) -> u32 {
        let mut events = sys::epoll::EPOLLONESHOT;
        if interest.read {
            events |= sys::epoll::EPOLLIN;
        }
        if interest.write {
            events |= sys::epoll::EPOLLOUT;
        }
        events
    }

    fn ctl(&self, op: sys::c_int, fd: RawFd, interest: Interest) -> io::Result<()> {
        let mut ev = sys::epoll::epoll_event {
            events: Self::mask(interest),
            data: fd as u64,
        };
        let rc = unsafe { sys::epoll::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollPoller {
    fn drop(&mut self) {
        unsafe {
            sys::epoll::close(self.epfd);
        }
    }
}

#[cfg(target_os = "linux")]
impl Poller for EpollPoller {
    fn name(&self) -> &'static str {
        "epoll"
    }

    fn add(&mut self, fd: RawFd, interest: Interest) -> io::Result<()> {
        match self.ctl(sys::epoll::EPOLL_CTL_ADD, fd, interest) {
            Ok(()) => Ok(()),
            // Already registered (a reused fd raced ahead of its
            // delete): replace the interest instead.
            Err(e) if e.raw_os_error() == Some(17 /* EEXIST */) => {
                self.ctl(sys::epoll::EPOLL_CTL_MOD, fd, interest)
            }
            Err(e) => Err(e),
        }
    }

    fn modify(&mut self, fd: RawFd, interest: Interest) -> io::Result<()> {
        match self.ctl(sys::epoll::EPOLL_CTL_MOD, fd, interest) {
            Ok(()) => Ok(()),
            // The kernel dropped the registration when the fd closed
            // (or it was never added): register fresh.
            Err(e) if e.raw_os_error() == Some(2 /* ENOENT */) => self.add(fd, interest),
            Err(e) => Err(e),
        }
    }

    fn delete(&mut self, fd: RawFd) -> io::Result<()> {
        let rc = unsafe {
            sys::epoll::epoll_ctl(
                self.epfd,
                sys::epoll::EPOLL_CTL_DEL,
                fd,
                std::ptr::null_mut(),
            )
        };
        // ENOENT/EBADF: the kernel already dropped it with the fd.
        if rc < 0 {
            let e = io::Error::last_os_error();
            if !matches!(e.raw_os_error(), Some(2) | Some(9)) {
                return Err(e);
            }
        }
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<PollerEvent>, timeout: Duration) -> io::Result<()> {
        events.clear();
        let n = unsafe {
            sys::epoll::epoll_wait(
                self.epfd,
                self.buf.as_mut_ptr(),
                self.buf.len() as sys::c_int,
                timeout_ms(timeout),
            )
        };
        if n < 0 {
            return Err(io::Error::last_os_error());
        }
        for ev in &self.buf[..n as usize] {
            let bits = ev.events;
            const ERRS: u32 = sys::epoll::EPOLLERR | sys::epoll::EPOLLHUP;
            events.push(PollerEvent {
                fd: ev.data as RawFd,
                readable: bits & (sys::epoll::EPOLLIN | ERRS) != 0,
                writable: bits & (sys::epoll::EPOLLOUT | ERRS) != 0,
            });
        }
        // A full buffer means more events may be pending: grow so a
        // burst cannot starve high-numbered fds across rounds.
        if n as usize == self.buf.len() {
            self.buf.resize(
                self.buf.len() * 2,
                sys::epoll::epoll_event { events: 0, data: 0 },
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::os::fd::AsRawFd;

    fn backends() -> Vec<Box<dyn Poller>> {
        let mut v: Vec<Box<dyn Poller>> = vec![Box::new(PollPoller::new())];
        #[cfg(target_os = "linux")]
        v.push(Box::new(EpollPoller::new().expect("epoll_create1")));
        v
    }

    /// Both backends: readable fires once (one-shot), stays quiet until
    /// re-armed, and delete drops the watch.
    #[test]
    fn oneshot_contract_holds_on_every_backend() {
        for mut p in backends() {
            let (rx, mut tx) = std::io::pipe().unwrap();
            let fd = rx.as_raw_fd();
            p.add(fd, Interest::READ).unwrap();
            let mut events = Vec::new();

            p.wait(&mut events, Duration::from_millis(10)).unwrap();
            assert!(events.is_empty(), "{}: nothing readable yet", p.name());

            tx.write_all(b"x").unwrap();
            p.wait(&mut events, Duration::from_secs(2)).unwrap();
            assert_eq!(events.len(), 1, "{}", p.name());
            assert_eq!(events[0].fd, fd);
            assert!(events[0].readable);

            // One-shot: without a re-arm the level-triggered condition
            // must not be re-reported.
            p.wait(&mut events, Duration::from_millis(20)).unwrap();
            assert!(
                events.is_empty(),
                "{}: fired watch must stay quiet",
                p.name()
            );

            // Re-arm: the still-unread byte fires again.
            p.modify(fd, Interest::READ).unwrap();
            p.wait(&mut events, Duration::from_secs(2)).unwrap();
            assert_eq!(events.len(), 1, "{}: re-arm re-delivers", p.name());

            p.delete(fd).unwrap();
            p.modify(events[0].fd, Interest::none()).ok();
            p.delete(fd).unwrap(); // idempotent
        }
    }

    /// A fired (disarmed) entry stays quiet even when the peer hangs
    /// up. `POLLERR`/`POLLHUP` cannot be masked on a polled fd, so
    /// [`PollPoller`] drops fired fds from its set entirely — matching
    /// `EPOLLONESHOT`, which disables the whole watch (hangups
    /// included) until the re-arm.
    #[test]
    fn fired_entry_masks_hangup_until_rearm() {
        for mut p in backends() {
            let (rx, mut tx) = std::io::pipe().unwrap();
            let fd = rx.as_raw_fd();
            p.add(fd, Interest::READ).unwrap();
            let mut events = Vec::new();
            tx.write_all(b"x").unwrap();
            p.wait(&mut events, Duration::from_secs(2)).unwrap();
            assert_eq!(events.len(), 1, "{}", p.name());

            drop(tx); // hangup while the watch is fired/disarmed
            p.wait(&mut events, Duration::from_millis(20)).unwrap();
            assert!(
                events.is_empty(),
                "{}: fired watch re-reported the hangup",
                p.name()
            );

            p.modify(fd, Interest::READ).unwrap();
            p.wait(&mut events, Duration::from_secs(2)).unwrap();
            assert_eq!(events.len(), 1, "{}: re-arm delivers the hangup", p.name());
            assert!(events[0].readable, "{}", p.name());
            p.delete(fd).unwrap();
        }
    }

    /// Write interest: a pipe with buffer space reports writable.
    #[test]
    fn write_interest_fires_when_writable() {
        for mut p in backends() {
            let (_rx, tx) = std::io::pipe().unwrap();
            let fd = tx.as_raw_fd();
            p.add(fd, Interest::WRITE).unwrap();
            let mut events = Vec::new();
            p.wait(&mut events, Duration::from_secs(2)).unwrap();
            assert_eq!(events.len(), 1, "{}", p.name());
            assert!(events[0].writable, "{}", p.name());
            p.delete(fd).unwrap();
        }
    }

    /// Interest::none keeps the fd registered without read/write
    /// delivery (the Busy-park state).
    #[test]
    fn empty_interest_delivers_nothing() {
        for mut p in backends() {
            let (rx, mut tx) = std::io::pipe().unwrap();
            let fd = rx.as_raw_fd();
            p.add(fd, Interest::none()).unwrap();
            tx.write_all(b"x").unwrap();
            let mut events = Vec::new();
            p.wait(&mut events, Duration::from_millis(20)).unwrap();
            assert!(events.is_empty(), "{}: parked fd delivered", p.name());
            // Re-arm with read interest: delivery resumes.
            p.modify(fd, Interest::READ).unwrap();
            p.wait(&mut events, Duration::from_secs(2)).unwrap();
            assert_eq!(events.len(), 1, "{}", p.name());
            p.delete(fd).unwrap();
        }
    }

    /// Churning add/delete keeps the incrementally-maintained pollfd
    /// array consistent: after a swap_remove the moved entry (fired or
    /// not) must still deliver for the right fd.
    #[test]
    fn poll_survives_add_delete_churn() {
        let mut p = PollPoller::new();
        let pipes: Vec<_> = (0..4).map(|_| std::io::pipe().unwrap()).collect();
        for (rx, _tx) in &pipes {
            p.add(rx.as_raw_fd(), Interest::READ).unwrap();
        }
        let mut events = Vec::new();
        // Fire the last entry so it is masked, then delete the first:
        // the masked entry is swap-moved into slot 0 and must keep a
        // correct index mapping.
        pipes[3].1.try_clone().unwrap().write_all(b"x").unwrap();
        p.wait(&mut events, Duration::from_secs(2)).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].fd, pipes[3].0.as_raw_fd());
        p.delete(pipes[0].0.as_raw_fd()).unwrap();

        // Re-arm the moved (masked) entry and fire it again.
        p.modify(pipes[3].0.as_raw_fd(), Interest::READ).unwrap();
        p.wait(&mut events, Duration::from_secs(2)).unwrap();
        assert_eq!(events.len(), 1, "re-armed moved entry fires");
        assert_eq!(events[0].fd, pipes[3].0.as_raw_fd());

        // A surviving middle entry still delivers for its own fd.
        pipes[2].1.try_clone().unwrap().write_all(b"y").unwrap();
        p.wait(&mut events, Duration::from_secs(2)).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].fd, pipes[2].0.as_raw_fd());

        // Deleting everything (including already-deleted fds) is clean.
        for (rx, _tx) in &pipes {
            p.delete(rx.as_raw_fd()).unwrap();
        }
        p.wait(&mut events, Duration::from_millis(10)).unwrap();
        assert!(events.is_empty());
    }

    /// After a connection spike drains, both of PollPoller's tables
    /// give their memory back instead of staying peak-sized, and the
    /// surviving watch still delivers.
    #[test]
    fn poll_shrinks_tables_after_churn() {
        let mut p = PollPoller::new();
        let keeper = std::io::pipe().unwrap();
        p.add(keeper.0.as_raw_fd(), Interest::READ).unwrap();

        // Spike: hold 128 pipes (256 fds) watched at once, so both the
        // pollfd array and the fd-indexed side table grow well past the
        // shrink floor.
        let spike: Vec<_> = (0..128).map(|_| std::io::pipe().unwrap()).collect();
        for (rx, _tx) in &spike {
            p.add(rx.as_raw_fd(), Interest::READ).unwrap();
        }
        let (peak_cap, peak_index) = p.footprint();
        assert!(peak_cap >= 129, "pollfds grew to the spike ({peak_cap})");
        assert!(
            peak_index > 128,
            "fd table grew to the peak fd ({peak_index})"
        );

        // Churn out: the spike's connections close.
        for (rx, _tx) in &spike {
            p.delete(rx.as_raw_fd()).unwrap();
        }
        drop(spike);
        let (cap, index) = p.footprint();
        assert!(
            cap < peak_cap && cap <= 64,
            "pollfd capacity must shrink after churn ({peak_cap} -> {cap})"
        );
        assert!(
            index < peak_index,
            "fd-index table must drop its unregistered tail ({peak_index} -> {index})"
        );

        // The surviving watch is untouched by the shrink.
        keeper.1.try_clone().unwrap().write_all(b"x").unwrap();
        let mut events = Vec::new();
        p.wait(&mut events, Duration::from_secs(2)).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].fd, keeper.0.as_raw_fd());
        p.delete(keeper.0.as_raw_fd()).unwrap();
    }

    #[test]
    fn env_override_selects_backend() {
        // Not testing the env var itself (process-global), just the
        // fallback construction paths.
        let p = create_poller(PollerBackend::Poll);
        assert_eq!(p.name(), "poll");
        let p = create_poller(PollerBackend::Epoll);
        if cfg!(target_os = "linux") {
            assert_eq!(p.name(), "epoll");
        } else {
            assert_eq!(p.name(), "poll");
        }
    }
}
