//! Pluggable readiness backends: the syscall-facing core of the
//! reactor, extracted behind the [`Poller`] trait.
//!
//! The paper's central claim is runtime independence — the same Flux
//! program runs on any concurrency substrate. This module extends that
//! symmetry one layer down: the [`Reactor`](crate::reactor::Reactor)
//! owns *policy* (interest bookkeeping, generation-tagged liveness
//! against fd reuse, drain scheduling, the self-pipe wakeup) while the
//! backend owns only the *mechanism* of waiting on file descriptors:
//!
//! * [`PollPoller`] — the portable `poll(2)` backend. The `pollfd`
//!   array is maintained incrementally on `add`/`modify`/`delete`
//!   (fired entries are masked in place by negating the fd), so the
//!   per-wait bookkeeping is O(changes); only the kernel's own scan
//!   remains O(watched fds).
//! * [`EpollPoller`] — raw-FFI `epoll(7)` (Linux). Interest lives in
//!   the kernel (`EPOLL_CTL_ADD`/`MOD`/`DEL`) and every registration
//!   carries `EPOLLONESHOT`, so a wait costs O(ready fds) and a fired
//!   watch stays quiet until it is re-armed. This is the Linux default.
//! * [`UringPoller`] — raw-FFI `io_uring` (Linux, readiness mode). Each
//!   arm is an `IORING_OP_POLL_ADD` submission queue entry in oneshot
//!   mode — which matches the trait's one-shot contract *exactly*, so
//!   the backend inherits the conformance suite unchanged — and each
//!   disarm an `IORING_OP_POLL_REMOVE`. The syscall-count win over
//!   epoll: `add`/`modify`/`delete` only append SQEs to a local batch,
//!   and [`Poller::wait`] flushes the whole batch *and* collects
//!   completions in a single `io_uring_enter`, so a round with K
//!   arm/disarm changes costs **one syscall** instead of K `epoll_ctl`s
//!   plus an `epoll_wait`. Opt in with `FLUX_POLLER=uring`; a runtime
//!   capability probe (`io_uring_setup` returning `ENOSYS`/`EPERM` in
//!   seccomp'd containers or on old kernels) falls back to epoll, and
//!   the resolved backend is reported by `ConnDriver::poller_backend()`
//!   so tests and benches never lie about what ran. See the module-level
//!   "io_uring: readiness vs completion mode" section in the crate docs
//!   for where this backend stops and what the recorded follow-on
//!   (completion-mode reads/writes riding the same SQ batching seam)
//!   adds.
//!
//! **The one-shot contract.** Both backends deliver *one-shot* events:
//! after [`Poller::wait`] reports an fd, that fd is disarmed until the
//! caller re-issues [`Poller::modify`] (or removes it with
//! [`Poller::delete`]). The reactor therefore finishes handling every
//! reported fd with exactly one `modify`/`delete` call before its next
//! `wait`. `poll(2)` has no kernel-side one-shot, so [`PollPoller`]
//! emulates it by leaving fired fds out of the poll set until the
//! re-arm. That includes error conditions: `POLLERR`/`POLLHUP` cannot
//! be masked on a polled fd, so omission is what makes a fired watch
//! deliver hangups at most once per arm — exactly like a fired
//! `EPOLLONESHOT` watch — keeping the two backends observationally
//! identical, which is what the conformance suite in
//! `crates/net/tests/` checks.
//!
//! Backend selection: [`PollerBackend::default()`] picks epoll on
//! Linux and poll elsewhere; the `FLUX_POLLER` environment variable
//! (`poll` / `epoll` / `uring`) overrides at runtime. Fallback is a
//! chain — a uring that fails its capability probe falls back to
//! epoll, an epoll that fails to initialize falls back to poll — and
//! always resolved at construction, so `Poller::name` (and everything
//! reporting it) reflects what actually runs. A kqueue backend
//! (macOS/BSD) would slot in behind the same four methods.

#![cfg(unix)]

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Which readiness conditions a watch cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    pub read: bool,
    pub write: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };

    /// No conditions armed. The fd stays registered but delivers no
    /// read/write readiness. Whether unmaskable error conditions
    /// (ERR/HUP) surface in this state is backend-specific — `poll(2)`
    /// reports them for any fd in its set, a oneshot epoll arm delivers
    /// them once — which is why the reactor never hands a backend an
    /// empty interest: a watch with nothing armed is deleted, and a
    /// Busy-parked write-only watch is simply left disarmed (fired),
    /// where both backends are silent until the re-arm.
    pub fn none() -> Interest {
        Interest::default()
    }
}

/// One readiness event out of [`Poller::wait`]. Error/hangup conditions
/// (`POLLERR`/`POLLHUP`/`POLLNVAL`, `EPOLLERR`/`EPOLLHUP`) are folded
/// into **both** flags so the read path can observe the error on its
/// next read and the write path can fail its drain — mirroring how the
/// reactor treated raw `revents`.
#[derive(Debug, Clone, Copy)]
pub struct PollerEvent {
    pub fd: RawFd,
    pub readable: bool,
    pub writable: bool,
}

/// A readiness multiplexer over interest-tagged file descriptors.
///
/// Implementations are driven from a single thread (the reactor's); the
/// trait is `Send` so the whole poller moves into that thread, not
/// `Sync`. See the module docs for the one-shot contract shared by all
/// backends.
pub trait Poller: Send {
    /// The backend's name, for stats, logs and benchmark records.
    fn name(&self) -> &'static str;

    /// Registers `fd` with `interest`. Registering an already-watched
    /// fd replaces its interest (upsert), so callers need not track
    /// which of add/modify applies after an fd was reused.
    fn add(&mut self, fd: RawFd, interest: Interest) -> io::Result<()>;

    /// Re-arms `fd` with `interest` — the one-shot re-arm. Modifying an
    /// unregistered fd registers it.
    fn modify(&mut self, fd: RawFd, interest: Interest) -> io::Result<()>;

    /// Drops the watch on `fd`. Deleting an fd that is not registered
    /// (or already closed by the kernel) is not an error.
    fn delete(&mut self, fd: RawFd) -> io::Result<()>;

    /// Blocks until at least one watched fd is ready or `timeout`
    /// elapses, appending ready fds to `events` (cleared first). Each
    /// reported fd is disarmed until the caller re-issues
    /// [`Poller::modify`] for it.
    fn wait(&mut self, events: &mut Vec<PollerEvent>, timeout: Duration) -> io::Result<()>;
}

/// Which [`Poller`] implementation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollerBackend {
    /// Portable `poll(2)`: O(watched fds) per wakeup.
    Poll,
    /// Linux `epoll(7)`: O(ready fds) per wakeup, kernel-held interest.
    Epoll,
    /// Linux `io_uring` in readiness (poll) mode: one batched
    /// `io_uring_enter` per wait round covers every arm/disarm change
    /// *and* the wait itself. Falls back to epoll when the kernel or
    /// container refuses `io_uring_setup`.
    Uring,
}

impl PollerBackend {
    /// The name this backend reports through [`Poller::name`] when the
    /// request is honoured (no fallback).
    pub fn label(&self) -> &'static str {
        match self {
            PollerBackend::Poll => "poll",
            PollerBackend::Epoll => "epoll",
            PollerBackend::Uring => "uring",
        }
    }
}

impl Default for PollerBackend {
    /// Epoll on Linux, poll elsewhere — unless `FLUX_POLLER` overrides
    /// (`FLUX_POLLER=poll|epoll|uring` selects at runtime, the knob the
    /// CI matrix legs exercise). io_uring stays opt-in until the
    /// completion-mode work lands: in pure readiness mode its win over
    /// epoll is the batched control plane, which only pays off once
    /// arm/disarm traffic dominates.
    fn default() -> Self {
        match std::env::var("FLUX_POLLER").as_deref() {
            Ok("poll") => PollerBackend::Poll,
            Ok("epoll") => PollerBackend::Epoll,
            Ok("uring") => PollerBackend::Uring,
            _ => {
                if cfg!(target_os = "linux") {
                    PollerBackend::Epoll
                } else {
                    PollerBackend::Poll
                }
            }
        }
    }
}

/// True when this host can actually set up an io_uring (kernel support
/// present, not refused by seccomp/rlimits, not disabled via
/// `FLUX_URING_DISABLE=1`). The probe performs a real
/// `io_uring_setup` and tears it down again — the same call
/// [`create_poller`] makes, so a `true` here means `Uring` will be
/// honoured, not guessed at.
pub fn uring_available() -> bool {
    #[cfg(target_os = "linux")]
    {
        UringPoller::new().is_ok()
    }
    #[cfg(not(target_os = "linux"))]
    {
        false
    }
}

/// Instantiates the chosen backend, resolving the fallback chain at
/// construction: `Uring` falls back to [`EpollPoller`] when the
/// capability probe fails (old kernel, seccomp'd container,
/// `FLUX_URING_DISABLE=1`), and `Epoll` falls back to [`PollPoller`]
/// (non-Linux hosts, or a failed `epoll_create1`). The returned
/// poller's [`Poller::name`] is therefore always the backend that
/// actually runs.
pub fn create_poller(backend: PollerBackend) -> Box<dyn Poller> {
    match backend {
        PollerBackend::Poll => Box::new(PollPoller::new()),
        PollerBackend::Epoll => {
            #[cfg(target_os = "linux")]
            let poller: Box<dyn Poller> = match EpollPoller::new() {
                Ok(p) => Box::new(p),
                Err(_) => Box::new(PollPoller::new()),
            };
            #[cfg(not(target_os = "linux"))]
            let poller: Box<dyn Poller> = Box::new(PollPoller::new());
            poller
        }
        PollerBackend::Uring => {
            #[cfg(target_os = "linux")]
            let poller: Box<dyn Poller> = match UringPoller::new() {
                Ok(p) => Box::new(p),
                Err(_) => create_poller(PollerBackend::Epoll),
            };
            #[cfg(not(target_os = "linux"))]
            let poller: Box<dyn Poller> = Box::new(PollPoller::new());
            poller
        }
    }
}

/// The tiny slice of libc the backends need, declared directly so the
/// offline build does not depend on the `libc` crate.
#[allow(non_camel_case_types)]
mod sys {
    pub type c_short = i16;
    pub type c_int = i32;
    pub type nfds_t = std::ffi::c_ulong;

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;
    pub const POLLNVAL: c_short = 0x020;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct pollfd {
        pub fd: super::RawFd,
        pub events: c_short,
        pub revents: c_short,
    }

    extern "C" {
        pub fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
    }

    #[cfg(target_os = "linux")]
    pub mod epoll {
        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLLONESHOT: u32 = 1 << 30;

        pub const EPOLL_CTL_ADD: super::c_int = 1;
        pub const EPOLL_CTL_DEL: super::c_int = 2;
        pub const EPOLL_CTL_MOD: super::c_int = 3;
        pub const EPOLL_CLOEXEC: super::c_int = 0o2000000;

        /// `struct epoll_event`; packed on x86-64, naturally aligned on
        /// every other architecture (matching the kernel ABI).
        #[repr(C)]
        #[cfg_attr(target_arch = "x86_64", repr(packed))]
        #[derive(Clone, Copy)]
        pub struct epoll_event {
            pub events: u32,
            pub data: u64,
        }

        extern "C" {
            pub fn epoll_create1(flags: super::c_int) -> super::c_int;
            pub fn epoll_ctl(
                epfd: super::c_int,
                op: super::c_int,
                fd: super::c_int,
                event: *mut epoll_event,
            ) -> super::c_int;
            pub fn epoll_wait(
                epfd: super::c_int,
                events: *mut epoll_event,
                maxevents: super::c_int,
                timeout: super::c_int,
            ) -> super::c_int;
            pub fn close(fd: super::c_int) -> super::c_int;
        }
    }

    /// io_uring ABI subset for the readiness-mode backend: setup/enter
    /// syscall numbers (asm-generic, shared by x86-64 and aarch64), the
    /// ring mmap offsets, and the three ops the backend submits
    /// (`POLL_ADD`, `POLL_REMOVE`, `TIMEOUT`). Field layouts mirror
    /// `<linux/io_uring.h>`.
    #[cfg(target_os = "linux")]
    pub mod uring {
        use super::c_int;
        use std::ffi::{c_long, c_void};

        pub const SYS_IO_URING_SETUP: c_long = 425;
        pub const SYS_IO_URING_ENTER: c_long = 426;

        pub const IORING_OFF_SQ_RING: i64 = 0;
        pub const IORING_OFF_CQ_RING: i64 = 0x800_0000;
        pub const IORING_OFF_SQES: i64 = 0x1000_0000;

        /// `io_uring_setup` flag: honour `params.cq_entries` instead of
        /// defaulting the CQ to 2x the SQ (kernel 5.5+).
        pub const IORING_SETUP_CQSIZE: u32 = 1 << 3;
        pub const IORING_ENTER_GETEVENTS: u32 = 1;
        /// `io_uring_enter` flag: the `sig` argument points at an
        /// [`getevents_arg`] carrying a wait timeout (kernel 5.11+).
        pub const IORING_ENTER_EXT_ARG: u32 = 1 << 3;
        /// Feature bit advertising [`IORING_ENTER_EXT_ARG`] support.
        pub const IORING_FEAT_EXT_ARG: u32 = 1 << 8;

        pub const IORING_OP_POLL_ADD: u8 = 6;
        pub const IORING_OP_POLL_REMOVE: u8 = 7;
        pub const IORING_OP_TIMEOUT: u8 = 11;

        #[repr(C)]
        #[derive(Clone, Copy, Default)]
        pub struct io_sqring_offsets {
            pub head: u32,
            pub tail: u32,
            pub ring_mask: u32,
            pub ring_entries: u32,
            pub flags: u32,
            pub dropped: u32,
            pub array: u32,
            pub resv1: u32,
            pub user_addr: u64,
        }

        #[repr(C)]
        #[derive(Clone, Copy, Default)]
        pub struct io_cqring_offsets {
            pub head: u32,
            pub tail: u32,
            pub ring_mask: u32,
            pub ring_entries: u32,
            pub overflow: u32,
            pub cqes: u32,
            pub flags: u32,
            pub resv1: u32,
            pub user_addr: u64,
        }

        #[repr(C)]
        #[derive(Clone, Copy, Default)]
        pub struct io_uring_params {
            pub sq_entries: u32,
            pub cq_entries: u32,
            pub flags: u32,
            pub sq_thread_cpu: u32,
            pub sq_thread_idle: u32,
            pub features: u32,
            pub wq_fd: u32,
            pub resv: [u32; 3],
            pub sq_off: io_sqring_offsets,
            pub cq_off: io_cqring_offsets,
        }

        /// One submission-queue entry (64 bytes). The unions of the
        /// kernel struct are flattened to the fields the three ops use:
        /// `off` doubles as the TIMEOUT completion count, `addr` as the
        /// TIMEOUT timespec pointer / POLL_REMOVE target `user_data`,
        /// and `op_flags` as `poll32_events` (little-endian layout, the
        /// only byte order this backend is compiled for via the
        /// x86-64/aarch64 syscall numbers above).
        #[repr(C)]
        #[derive(Clone, Copy, Default)]
        pub struct io_uring_sqe {
            pub opcode: u8,
            pub flags: u8,
            pub ioprio: u16,
            pub fd: c_int,
            pub off: u64,
            pub addr: u64,
            pub len: u32,
            pub op_flags: u32,
            pub user_data: u64,
            pub pad: [u64; 3],
        }

        /// One completion-queue entry (16 bytes; `IORING_SETUP_CQE32`
        /// is never requested).
        #[repr(C)]
        #[derive(Clone, Copy, Default)]
        pub struct io_uring_cqe {
            pub user_data: u64,
            pub res: i32,
            pub flags: u32,
        }

        #[repr(C)]
        #[derive(Clone, Copy, Default)]
        pub struct kernel_timespec {
            pub tv_sec: i64,
            pub tv_nsec: i64,
        }

        /// `IORING_ENTER_EXT_ARG` payload: a wait timeout without a
        /// sigmask (and without burning an SQE on `IORING_OP_TIMEOUT`).
        #[repr(C)]
        #[derive(Clone, Copy, Default)]
        pub struct getevents_arg {
            pub sigmask: u64,
            pub sigmask_sz: u32,
            pub pad: u32,
            pub ts: u64,
        }

        pub const PROT_READ: c_int = 0x1;
        pub const PROT_WRITE: c_int = 0x2;
        pub const MAP_SHARED: c_int = 0x01;
        pub const MAP_POPULATE: c_int = 0x8000;

        extern "C" {
            pub fn syscall(num: c_long, ...) -> c_long;
            pub fn mmap(
                addr: *mut c_void,
                len: usize,
                prot: c_int,
                flags: c_int,
                fd: c_int,
                offset: i64,
            ) -> *mut c_void;
            pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
            pub fn close(fd: c_int) -> c_int;
        }
    }
}

/// Clamps a wait timeout to poll/epoll's millisecond argument.
fn timeout_ms(timeout: Duration) -> sys::c_int {
    timeout.as_millis().clamp(0, sys::c_int::MAX as u128) as sys::c_int
}

/// The portable `poll(2)` backend. The `pollfd` array is maintained
/// *incrementally*: `add`/`modify`/`delete` edit it in place (an
/// fd-indexed side table maps each fd to its array position), so the
/// bookkeeping per wait is O(changes since the last wait) — the old
/// rebuild-from-a-HashMap-every-round cost is gone. The kernel scan
/// itself remains O(watched fds): that is inherent to `poll(2)` and is
/// exactly the cost the epoll backend exists to avoid. Both tables
/// shrink back after churn (see `maybe_shrink`): when the watch count
/// falls to a quarter of a table's size, capacity is released, so a
/// connection spike does not pin peak-fd-sized vectors for the rest of
/// the server's life.
///
/// One-shot emulation: a fired entry's fd is negated in place
/// (`poll(2)` ignores negative fds, clearing their `revents`), which
/// masks even unmaskable `POLLERR`/`POLLHUP` until `modify` re-arms it
/// by restoring the fd — observationally identical to a fired
/// `EPOLLONESHOT` watch.
pub struct PollPoller {
    pollfds: Vec<sys::pollfd>,
    /// fd → index into `pollfds` (`usize::MAX` = not registered),
    /// indexed by raw fd. Raw fds are small kernel-allocated integers,
    /// so this is a dense table, not a map.
    index_of: Vec<usize>,
    /// 1 + the highest registered fd (0 when nothing is registered):
    /// the live tail of `index_of`, maintained incrementally — bumped
    /// on `add`, recomputed (one backward scan) only when the highest
    /// fd itself is deleted — so the shrink check in `maybe_shrink`
    /// never scans on an ordinary delete.
    tail: usize,
}

/// Masks a fired entry: negative fds are ignored by `poll(2)`.
fn masked(fd: RawFd) -> RawFd {
    debug_assert!(fd >= 0);
    -fd - 1
}

/// Recovers the registered fd from a possibly-masked `pollfd.fd`.
fn unmasked(fd: RawFd) -> RawFd {
    if fd < 0 {
        -(fd + 1)
    } else {
        fd
    }
}

fn interest_bits(interest: Interest) -> sys::c_short {
    let mut bits: sys::c_short = 0;
    if interest.read {
        bits |= sys::POLLIN;
    }
    if interest.write {
        bits |= sys::POLLOUT;
    }
    bits
}

impl PollPoller {
    pub fn new() -> Self {
        PollPoller {
            pollfds: Vec::new(),
            index_of: Vec::new(),
            tail: 0,
        }
    }

    fn index(&self, fd: RawFd) -> Option<usize> {
        match self.index_of.get(fd as usize) {
            Some(&i) if i != usize::MAX => Some(i),
            _ => None,
        }
    }

    /// Memory footprint observability for the churn-shrink tests and
    /// debugging: `(pollfd array capacity, fd-index table length)`.
    /// Not part of the [`Poller`] contract.
    pub fn footprint(&self) -> (usize, usize) {
        (self.pollfds.capacity(), self.index_of.len())
    }

    /// Gives memory back after churn, so a long-lived server that once
    /// peaked at N connections (or at a high fd number) does not hold
    /// peak-sized tables forever. Called from `delete`; every check is
    /// a cheap comparison (the live tail is maintained incrementally,
    /// see [`PollPoller::tail`]), so deletes stay O(1) outside the rare
    /// highest-fd recompute.
    fn maybe_shrink(&mut self) {
        const FLOOR: usize = 64;
        if self.pollfds.capacity() > FLOOR && self.pollfds.len() * 4 <= self.pollfds.capacity() {
            self.pollfds
                .shrink_to(self.pollfds.len().max(FLOOR / 2) * 2);
        }
        // The table is dense by raw fd: everything past the highest
        // registered fd (`tail`) is reclaimable.
        if self.index_of.len() > FLOOR && self.tail * 2 <= self.index_of.len() {
            self.index_of.truncate(self.tail);
            self.index_of.shrink_to(self.tail.max(FLOOR / 2) * 2);
        }
    }
}

impl Default for PollPoller {
    fn default() -> Self {
        Self::new()
    }
}

impl Poller for PollPoller {
    fn name(&self) -> &'static str {
        "poll"
    }

    fn add(&mut self, fd: RawFd, interest: Interest) -> io::Result<()> {
        if fd < 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "negative fd"));
        }
        let bits = interest_bits(interest);
        match self.index(fd) {
            Some(i) => {
                // Upsert: replace interest and clear the fired mask.
                self.pollfds[i] = sys::pollfd {
                    fd,
                    events: bits,
                    revents: 0,
                };
            }
            None => {
                let i = self.pollfds.len();
                self.pollfds.push(sys::pollfd {
                    fd,
                    events: bits,
                    revents: 0,
                });
                let idx = fd as usize;
                if self.index_of.len() <= idx {
                    self.index_of.resize(idx + 1, usize::MAX);
                }
                self.index_of[idx] = i;
                self.tail = self.tail.max(idx + 1);
            }
        }
        Ok(())
    }

    fn modify(&mut self, fd: RawFd, interest: Interest) -> io::Result<()> {
        self.add(fd, interest)
    }

    fn delete(&mut self, fd: RawFd) -> io::Result<()> {
        if fd < 0 {
            return Ok(());
        }
        let Some(i) = self.index(fd) else {
            return Ok(()); // not registered: not an error (trait contract)
        };
        self.index_of[fd as usize] = usize::MAX;
        self.pollfds.swap_remove(i);
        // The former last entry moved into slot `i`: fix its index (it
        // may be fired, i.e. masked — map back to the registered fd).
        if let Some(moved) = self.pollfds.get(i) {
            self.index_of[unmasked(moved.fd) as usize] = i;
        }
        // Deleting the highest registered fd moves the live tail down:
        // recompute it with one backward scan (amortized — each scanned
        // slot was paid for by the add that grew past it).
        if fd as usize + 1 == self.tail {
            self.tail = self.index_of[..self.tail]
                .iter()
                .rposition(|&i| i != usize::MAX)
                .map_or(0, |p| p + 1);
        }
        self.maybe_shrink();
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<PollerEvent>, timeout: Duration) -> io::Result<()> {
        events.clear();
        let n = unsafe {
            sys::poll(
                self.pollfds.as_mut_ptr(),
                self.pollfds.len() as sys::nfds_t,
                timeout_ms(timeout),
            )
        };
        if n < 0 {
            return Err(io::Error::last_os_error());
        }
        const ERRS: sys::c_short = sys::POLLERR | sys::POLLHUP | sys::POLLNVAL;
        let mut remaining = n as usize;
        for pfd in &mut self.pollfds {
            if remaining == 0 {
                break;
            }
            if pfd.fd < 0 || pfd.revents == 0 {
                continue;
            }
            remaining -= 1;
            let readable = pfd.revents & (sys::POLLIN | ERRS) != 0;
            let writable = pfd.revents & (sys::POLLOUT | ERRS) != 0;
            let fd = pfd.fd;
            // One-shot: mask the entry in place until the re-arm.
            pfd.fd = masked(fd);
            pfd.revents = 0;
            events.push(PollerEvent {
                fd,
                readable,
                writable,
            });
        }
        Ok(())
    }
}

/// The Linux `epoll(7)` backend: raw FFI, no `libc` crate. Interest is
/// held by the kernel; every registration carries `EPOLLONESHOT`, so a
/// fired watch stays disarmed until [`Poller::modify`] re-arms it and a
/// wakeup costs O(ready fds) regardless of how many are watched.
#[cfg(target_os = "linux")]
pub struct EpollPoller {
    epfd: RawFd,
    buf: Vec<sys::epoll::epoll_event>,
}

#[cfg(target_os = "linux")]
impl EpollPoller {
    pub fn new() -> io::Result<Self> {
        let epfd = unsafe { sys::epoll::epoll_create1(sys::epoll::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EpollPoller {
            epfd,
            buf: vec![sys::epoll::epoll_event { events: 0, data: 0 }; 256],
        })
    }

    fn mask(interest: Interest) -> u32 {
        let mut events = sys::epoll::EPOLLONESHOT;
        if interest.read {
            events |= sys::epoll::EPOLLIN;
        }
        if interest.write {
            events |= sys::epoll::EPOLLOUT;
        }
        events
    }

    fn ctl(&self, op: sys::c_int, fd: RawFd, interest: Interest) -> io::Result<()> {
        let mut ev = sys::epoll::epoll_event {
            events: Self::mask(interest),
            data: fd as u64,
        };
        let rc = unsafe { sys::epoll::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollPoller {
    fn drop(&mut self) {
        unsafe {
            sys::epoll::close(self.epfd);
        }
    }
}

#[cfg(target_os = "linux")]
impl Poller for EpollPoller {
    fn name(&self) -> &'static str {
        "epoll"
    }

    fn add(&mut self, fd: RawFd, interest: Interest) -> io::Result<()> {
        match self.ctl(sys::epoll::EPOLL_CTL_ADD, fd, interest) {
            Ok(()) => Ok(()),
            // Already registered (a reused fd raced ahead of its
            // delete): replace the interest instead.
            Err(e) if e.raw_os_error() == Some(17 /* EEXIST */) => {
                self.ctl(sys::epoll::EPOLL_CTL_MOD, fd, interest)
            }
            Err(e) => Err(e),
        }
    }

    fn modify(&mut self, fd: RawFd, interest: Interest) -> io::Result<()> {
        match self.ctl(sys::epoll::EPOLL_CTL_MOD, fd, interest) {
            Ok(()) => Ok(()),
            // The kernel dropped the registration when the fd closed
            // (or it was never added): register fresh.
            Err(e) if e.raw_os_error() == Some(2 /* ENOENT */) => self.add(fd, interest),
            Err(e) => Err(e),
        }
    }

    fn delete(&mut self, fd: RawFd) -> io::Result<()> {
        let rc = unsafe {
            sys::epoll::epoll_ctl(
                self.epfd,
                sys::epoll::EPOLL_CTL_DEL,
                fd,
                std::ptr::null_mut(),
            )
        };
        // ENOENT/EBADF: the kernel already dropped it with the fd.
        if rc < 0 {
            let e = io::Error::last_os_error();
            if !matches!(e.raw_os_error(), Some(2) | Some(9)) {
                return Err(e);
            }
        }
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<PollerEvent>, timeout: Duration) -> io::Result<()> {
        events.clear();
        let n = unsafe {
            sys::epoll::epoll_wait(
                self.epfd,
                self.buf.as_mut_ptr(),
                self.buf.len() as sys::c_int,
                timeout_ms(timeout),
            )
        };
        if n < 0 {
            return Err(io::Error::last_os_error());
        }
        for ev in &self.buf[..n as usize] {
            let bits = ev.events;
            const ERRS: u32 = sys::epoll::EPOLLERR | sys::epoll::EPOLLHUP;
            events.push(PollerEvent {
                fd: ev.data as RawFd,
                readable: bits & (sys::epoll::EPOLLIN | ERRS) != 0,
                writable: bits & (sys::epoll::EPOLLOUT | ERRS) != 0,
            });
        }
        // A full buffer means more events may be pending: grow so a
        // burst cannot starve high-numbered fds across rounds.
        if n as usize == self.buf.len() {
            self.buf.resize(
                self.buf.len() * 2,
                sys::epoll::epoll_event { events: 0, data: 0 },
            );
        }
        Ok(())
    }
}

/// One mmap'd ring region, unmapped on drop.
#[cfg(target_os = "linux")]
struct RingMmap {
    ptr: *mut std::ffi::c_void,
    len: usize,
}

#[cfg(target_os = "linux")]
impl RingMmap {
    fn map(ring_fd: RawFd, len: usize, offset: i64) -> io::Result<RingMmap> {
        let ptr = unsafe {
            sys::uring::mmap(
                std::ptr::null_mut(),
                len,
                sys::uring::PROT_READ | sys::uring::PROT_WRITE,
                sys::uring::MAP_SHARED | sys::uring::MAP_POPULATE,
                ring_fd,
                offset,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(RingMmap { ptr, len })
    }

    /// A typed pointer `off` bytes into the mapping.
    fn at<T>(&self, off: u32) -> *mut T {
        unsafe { (self.ptr as *mut u8).add(off as usize) as *mut T }
    }
}

#[cfg(target_os = "linux")]
impl Drop for RingMmap {
    fn drop(&mut self) {
        unsafe {
            sys::uring::munmap(self.ptr, self.len);
        }
    }
}

/// Per-fd backend state for [`UringPoller`]: whether the fd is
/// registered at all, which poll op (if any) is armed in the kernel,
/// and the interest it was armed with (kept for the defensive re-arm on
/// a spurious zero-mask completion).
#[cfg(target_os = "linux")]
#[derive(Clone, Copy, Default)]
struct UringFdState {
    registered: bool,
    /// Non-zero while an `IORING_OP_POLL_ADD` is in flight for this fd:
    /// the op id baked into its `user_data`. A completion whose id does
    /// not match is stale (superseded or cancelled) and is discarded —
    /// the same role the reactor's generation cells play one layer up.
    armed_id: u32,
    interest: Interest,
}

/// `user_data` tag for the per-wait `IORING_OP_TIMEOUT` entry (the
/// pre-`EXT_ARG` kernel path); its completions carry no readiness.
#[cfg(target_os = "linux")]
const URING_TIMEOUT_KEY: u64 = u64::MAX;
/// `user_data` tag for `IORING_OP_POLL_REMOVE` entries: cancellation
/// results (`0` / `-ENOENT` / `-EALREADY`) are uninteresting — the
/// cancelled op's own CQE is already discarded by its stale id.
#[cfg(target_os = "linux")]
const URING_REMOVE_KEY: u64 = u64::MAX - 1;

/// The Linux `io_uring` backend in **readiness mode**: raw FFI
/// (`io_uring_setup` + `io_uring_enter`, mmap'd SQ/CQ rings, no
/// external crates), no completion-mode I/O yet — every arm is an
/// `IORING_OP_POLL_ADD` in its default **oneshot** mode, which is
/// exactly the [`Poller`] trait's one-shot contract, so the reactor
/// and the conformance suite run unchanged on top.
///
/// **The batching invariant.** `add`/`modify`/`delete` perform *no
/// syscall*: they append pre-built SQEs to a local pending batch (a
/// `modify` of an armed fd appends `POLL_REMOVE` + `POLL_ADD`, keyed so
/// the superseded op's completion is discarded). [`Poller::wait`]
/// flushes the whole batch into the shared SQ ring and collects
/// completions with **one** `io_uring_enter(to_submit, 1,
/// GETEVENTS)` — so a round that re-arms K connections costs one
/// syscall where epoll pays K `epoll_ctl`s plus an `epoll_wait`. (The
/// ring only forces extra `enter`s when a round carries more SQEs than
/// the 256-entry SQ, i.e. >85 interest changes in one round.)
///
/// **Wait timeouts.** On kernels with `IORING_FEAT_EXT_ARG` (5.11+)
/// the timeout travels in the `enter` call itself; older kernels get a
/// per-wait `IORING_OP_TIMEOUT` SQE whose completion count of 1 makes
/// it fire with (or instead of) the first readiness completion — its
/// CQE is discarded by key either way.
///
/// **Lifetime of an armed op.** A `POLL_ADD` holds a kernel reference
/// on the *file*, so closing the fd neither completes nor leaks it:
/// the reactor's `delete` (queued before any close can race ahead)
/// submits the `POLL_REMOVE` that releases it, and ring teardown on
/// drop releases anything still in flight.
#[cfg(target_os = "linux")]
pub struct UringPoller {
    ring_fd: RawFd,
    // Held only to keep the mappings alive for the raw pointers below;
    // unmapped on drop.
    _sq_ring: RingMmap,
    _cq_ring: RingMmap,
    _sqe_mem: RingMmap,
    /// SQ consumer head (kernel writes, we read with Acquire).
    sq_khead: *const std::sync::atomic::AtomicU32,
    /// SQ producer tail (we write with Release).
    sq_ktail: *const std::sync::atomic::AtomicU32,
    sq_mask: u32,
    sq_entries: u32,
    /// SQ index array: `array[tail & mask]` names the SQE slot.
    sq_array: *mut u32,
    sqes: *mut sys::uring::io_uring_sqe,
    /// CQ consumer head (we write with Release).
    cq_khead: *const std::sync::atomic::AtomicU32,
    /// CQ producer tail (kernel writes, we read with Acquire).
    cq_ktail: *const std::sync::atomic::AtomicU32,
    cq_mask: u32,
    cqes: *const sys::uring::io_uring_cqe,
    /// Local mirror of the SQ tail (single-threaded producer).
    tail: u32,
    ext_arg: bool,
    states: Vec<UringFdState>,
    /// SQEs built by `add`/`modify`/`delete`, flushed by `wait`.
    pending: Vec<sys::uring::io_uring_sqe>,
    next_id: u32,
    /// Timespec for the in-flight wait timeout; field-held so the
    /// pointer baked into an `IORING_OP_TIMEOUT` SQE (read by the
    /// kernel at submission) can never dangle.
    ts: sys::uring::kernel_timespec,
}

// SAFETY: the raw pointers all target the three mmap'd regions owned
// (and kept alive) by the struct itself; the trait contract drives the
// poller from a single thread at a time, which is all `Send` promises.
#[cfg(target_os = "linux")]
unsafe impl Send for UringPoller {}

#[cfg(target_os = "linux")]
impl UringPoller {
    /// SQ depth: bounds how many arm/disarm SQEs one `enter` can carry,
    /// not how many fds can be watched (armed polls live in the kernel,
    /// off the ring).
    const SQ_ENTRIES: u32 = 256;
    /// CQ depth (requested via `IORING_SETUP_CQSIZE`): sized well past
    /// the SQ so a burst of thousands of simultaneous completions rides
    /// the ring instead of the kernel's overflow list.
    const CQ_ENTRIES: u32 = 4096;

    /// Sets up the ring, or reports why this host cannot
    /// (`ENOSYS` pre-5.1 kernels, `EPERM` under seccomp policies that
    /// deny io_uring, `ENOMEM`/`EPERM` under tight memlock limits —
    /// this is the capability probe `create_poller` and
    /// [`uring_available`] rely on). `FLUX_URING_DISABLE=1` forces the
    /// probe to fail, which is how the fallback path is tested on hosts
    /// where the real setup would succeed.
    pub fn new() -> io::Result<Self> {
        if std::env::var("FLUX_URING_DISABLE").as_deref() == Ok("1") {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "io_uring disabled via FLUX_URING_DISABLE",
            ));
        }
        let mut params = sys::uring::io_uring_params {
            flags: sys::uring::IORING_SETUP_CQSIZE,
            cq_entries: Self::CQ_ENTRIES,
            ..Default::default()
        };
        let mut ring_fd = unsafe {
            sys::uring::syscall(
                sys::uring::SYS_IO_URING_SETUP,
                Self::SQ_ENTRIES,
                &mut params as *mut sys::uring::io_uring_params,
            )
        } as RawFd;
        if ring_fd < 0 && io::Error::last_os_error().raw_os_error() == Some(22 /* EINVAL */) {
            // Pre-5.5 kernel without IORING_SETUP_CQSIZE: take the
            // default CQ (2x SQ) rather than refusing the backend.
            params = Default::default();
            ring_fd = unsafe {
                sys::uring::syscall(
                    sys::uring::SYS_IO_URING_SETUP,
                    Self::SQ_ENTRIES,
                    &mut params as *mut sys::uring::io_uring_params,
                )
            } as RawFd;
        }
        if ring_fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // From here on the fd must not leak on an early error.
        let close_on_err = |e: io::Error| {
            unsafe { sys::uring::close(ring_fd) };
            e
        };
        let sq_len = params.sq_off.array as usize + params.sq_entries as usize * 4;
        let cq_len = params.cq_off.cqes as usize
            + params.cq_entries as usize * std::mem::size_of::<sys::uring::io_uring_cqe>();
        // Two independent ring mmaps (the legacy layout): valid on
        // every kernel, with or without IORING_FEAT_SINGLE_MMAP.
        let sq_ring =
            RingMmap::map(ring_fd, sq_len, sys::uring::IORING_OFF_SQ_RING).map_err(close_on_err)?;
        let cq_ring =
            RingMmap::map(ring_fd, cq_len, sys::uring::IORING_OFF_CQ_RING).map_err(close_on_err)?;
        let sqe_mem = RingMmap::map(
            ring_fd,
            params.sq_entries as usize * std::mem::size_of::<sys::uring::io_uring_sqe>(),
            sys::uring::IORING_OFF_SQES,
        )
        .map_err(close_on_err)?;
        let poller = UringPoller {
            sq_khead: sq_ring.at(params.sq_off.head),
            sq_ktail: sq_ring.at(params.sq_off.tail),
            sq_mask: unsafe { *sq_ring.at::<u32>(params.sq_off.ring_mask) },
            sq_entries: params.sq_entries,
            sq_array: sq_ring.at(params.sq_off.array),
            sqes: sqe_mem.at(0),
            cq_khead: cq_ring.at(params.cq_off.head),
            cq_ktail: cq_ring.at(params.cq_off.tail),
            cq_mask: unsafe { *cq_ring.at::<u32>(params.cq_off.ring_mask) },
            cqes: cq_ring.at(params.cq_off.cqes),
            ring_fd,
            _sq_ring: sq_ring,
            _cq_ring: cq_ring,
            _sqe_mem: sqe_mem,
            tail: 0,
            ext_arg: params.features & sys::uring::IORING_FEAT_EXT_ARG != 0,
            states: Vec::new(),
            pending: Vec::new(),
            next_id: 1,
            ts: Default::default(),
        };
        Ok(poller)
    }

    fn alloc_id(&mut self) -> u32 {
        let id = self.next_id;
        // 0 is the "not armed" sentinel; ids wrap far past any op that
        // could still be in flight.
        self.next_id = self.next_id.checked_add(1).unwrap_or(1);
        id
    }

    /// `user_data` for a poll op: fd in the low half, op id in the high
    /// half, so a completion both routes to its fd and proves it is the
    /// *current* arm of that fd.
    fn key(fd: RawFd, id: u32) -> u64 {
        ((id as u64) << 32) | fd as u32 as u64
    }

    fn poll_mask(interest: Interest) -> u32 {
        let mut mask = 0u32;
        if interest.read {
            mask |= sys::POLLIN as u32;
        }
        if interest.write {
            mask |= sys::POLLOUT as u32;
        }
        mask
    }

    /// The one syscall. `arg` carries the EXT_ARG timeout when used.
    fn enter(
        &self,
        to_submit: u32,
        min_complete: u32,
        flags: u32,
        arg: *const sys::uring::getevents_arg,
        argsz: usize,
    ) -> io::Result<u32> {
        let rc = unsafe {
            sys::uring::syscall(
                sys::uring::SYS_IO_URING_ENTER,
                self.ring_fd,
                to_submit,
                min_complete,
                flags,
                arg,
                argsz,
            )
        };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(rc as u32)
    }

    /// SQEs placed in the ring but not yet consumed by the kernel.
    fn unsubmitted(&self) -> u32 {
        let khead = unsafe { &*self.sq_khead }.load(std::sync::atomic::Ordering::Acquire);
        self.tail.wrapping_sub(khead)
    }

    /// Places one SQE in the shared ring, submitting the backlog first
    /// if the ring is full (only possible when one wait round carries
    /// more than `SQ_ENTRIES` interest changes).
    fn place(&mut self, sqe: sys::uring::io_uring_sqe) -> io::Result<()> {
        while self.unsubmitted() == self.sq_entries {
            self.enter(self.sq_entries, 0, 0, std::ptr::null(), 0)?;
        }
        let idx = self.tail & self.sq_mask;
        unsafe {
            *self.sqes.add(idx as usize) = sqe;
            *self.sq_array.add(idx as usize) = idx;
        }
        self.tail = self.tail.wrapping_add(1);
        unsafe { &*self.sq_ktail }.store(self.tail, std::sync::atomic::Ordering::Release);
        Ok(())
    }

    fn flush_pending(&mut self) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let ops = std::mem::take(&mut self.pending);
        for sqe in &ops {
            self.place(*sqe)?;
        }
        // Hand the (now empty) buffer's capacity back for the next
        // round of control ops.
        self.pending = ops;
        self.pending.clear();
        Ok(())
    }

    /// Appends the SQEs that move `fd` to `interest`: a `POLL_REMOVE`
    /// for any in-flight arm (its completion, fired or cancelled, is
    /// discarded by the id bump), then a fresh oneshot `POLL_ADD` when
    /// any interest remains. Shared by `add` and `modify` — like epoll's
    /// upsert, the distinction carries no information the state table
    /// doesn't already hold.
    fn rearm(&mut self, fd: RawFd, interest: Interest) -> io::Result<()> {
        if fd < 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "negative fd"));
        }
        let idx = fd as usize;
        if self.states.len() <= idx {
            self.states.resize(idx + 1, UringFdState::default());
        }
        if self.states[idx].armed_id != 0 {
            self.pending.push(sys::uring::io_uring_sqe {
                opcode: sys::uring::IORING_OP_POLL_REMOVE,
                fd: -1,
                addr: Self::key(fd, self.states[idx].armed_id),
                user_data: URING_REMOVE_KEY,
                ..Default::default()
            });
            self.states[idx].armed_id = 0;
        }
        if interest.read || interest.write {
            let id = self.alloc_id();
            self.pending.push(sys::uring::io_uring_sqe {
                opcode: sys::uring::IORING_OP_POLL_ADD,
                fd,
                op_flags: Self::poll_mask(interest),
                user_data: Self::key(fd, id),
                ..Default::default()
            });
            self.states[idx].armed_id = id;
        }
        self.states[idx].registered = true;
        self.states[idx].interest = interest;
        Ok(())
    }

    /// Drains every published CQE, translating matching poll
    /// completions into [`PollerEvent`]s.
    fn drain_cq(&mut self, events: &mut Vec<PollerEvent>) {
        use std::sync::atomic::Ordering;
        let tail = unsafe { &*self.cq_ktail }.load(Ordering::Acquire);
        let mut head = unsafe { &*self.cq_khead }.load(Ordering::Relaxed);
        if head == tail {
            return;
        }
        while head != tail {
            let cqe = unsafe { *self.cqes.add((head & self.cq_mask) as usize) };
            head = head.wrapping_add(1);
            if cqe.user_data == URING_TIMEOUT_KEY || cqe.user_data == URING_REMOVE_KEY {
                continue;
            }
            let fd = cqe.user_data as u32 as RawFd;
            let id = (cqe.user_data >> 32) as u32;
            let Some(state) = self.states.get_mut(fd as usize) else {
                continue;
            };
            if !state.registered || state.armed_id != id {
                continue; // stale: superseded, cancelled, or fd deleted
            }
            // The oneshot consumed itself: disarmed until `modify`.
            state.armed_id = 0;
            const ERRS: u32 =
                (sys::POLLERR as u32) | (sys::POLLHUP as u32) | (sys::POLLNVAL as u32);
            let (readable, writable) = if cqe.res >= 0 {
                let bits = cqe.res as u32;
                (
                    bits & (sys::POLLIN as u32 | ERRS) != 0,
                    bits & (sys::POLLOUT as u32 | ERRS) != 0,
                )
            } else {
                // The arm itself failed (e.g. the fd closed under a
                // still-queued SQE): fold into both flags, like ERR/HUP,
                // so read and write paths both observe the error.
                (true, true)
            };
            if readable || writable {
                events.push(PollerEvent {
                    fd,
                    readable,
                    writable,
                });
            } else {
                // Defensive: a zero-mask completion would otherwise
                // strand the watch (the caller never saw an event, so
                // it will never re-arm). Re-arm with the recorded
                // interest instead.
                let interest = state.interest;
                let _ = self.rearm(fd, interest);
            }
        }
        unsafe { &*self.cq_khead }.store(head, Ordering::Release);
    }
}

#[cfg(target_os = "linux")]
impl Drop for UringPoller {
    fn drop(&mut self) {
        // Tearing the ring down cancels and releases every in-flight
        // poll op (and the file references they hold).
        unsafe {
            sys::uring::close(self.ring_fd);
        }
    }
}

#[cfg(target_os = "linux")]
impl Poller for UringPoller {
    fn name(&self) -> &'static str {
        "uring"
    }

    fn add(&mut self, fd: RawFd, interest: Interest) -> io::Result<()> {
        self.rearm(fd, interest)
    }

    fn modify(&mut self, fd: RawFd, interest: Interest) -> io::Result<()> {
        self.rearm(fd, interest)
    }

    fn delete(&mut self, fd: RawFd) -> io::Result<()> {
        if fd < 0 {
            return Ok(());
        }
        let Some(state) = self.states.get_mut(fd as usize) else {
            return Ok(());
        };
        if state.armed_id != 0 {
            let key = Self::key(fd, state.armed_id);
            self.pending.push(sys::uring::io_uring_sqe {
                opcode: sys::uring::IORING_OP_POLL_REMOVE,
                fd: -1,
                addr: key,
                user_data: URING_REMOVE_KEY,
                ..Default::default()
            });
        }
        self.states[fd as usize] = UringFdState::default();
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<PollerEvent>, timeout: Duration) -> io::Result<()> {
        events.clear();
        // Batch-flush every control change since the last round into
        // the SQ; in the common case nothing is entered here and the
        // single enter below both submits and waits.
        self.flush_pending()?;
        let mut flags = sys::uring::IORING_ENTER_GETEVENTS;
        let mut min_complete = 0u32;
        let mut arg = sys::uring::getevents_arg::default();
        let mut arg_ptr: *const sys::uring::getevents_arg = std::ptr::null();
        let mut argsz = 0usize;
        if !timeout.is_zero() {
            min_complete = 1;
            self.ts = sys::uring::kernel_timespec {
                tv_sec: timeout.as_secs() as i64,
                tv_nsec: timeout.subsec_nanos() as i64,
            };
            if self.ext_arg {
                arg.ts = &self.ts as *const sys::uring::kernel_timespec as u64;
                arg_ptr = &arg;
                argsz = std::mem::size_of::<sys::uring::getevents_arg>();
                flags |= sys::uring::IORING_ENTER_EXT_ARG;
            } else {
                // Pre-5.11 kernel: a TIMEOUT op with completion count 1
                // bounds the wait. It posts exactly one (discarded) CQE
                // — with the round's first completion, or with -ETIME.
                self.place(sys::uring::io_uring_sqe {
                    opcode: sys::uring::IORING_OP_TIMEOUT,
                    fd: -1,
                    off: 1,
                    addr: &self.ts as *const sys::uring::kernel_timespec as u64,
                    len: 1,
                    user_data: URING_TIMEOUT_KEY,
                    ..Default::default()
                })?;
            }
        }
        // One io_uring_enter for the whole round: submits every batched
        // arm/disarm AND waits for readiness. A CQ already holding
        // completions returns immediately (min_complete is satisfied).
        match self.enter(self.unsubmitted(), min_complete, flags, arg_ptr, argsz) {
            Ok(_) => {}
            Err(e) => match e.raw_os_error() {
                // ETIME: the wait timed out (EXT_ARG path). EINTR: a
                // signal; the caller re-waits. EBUSY: CQ overflow
                // backlog — drain below, the kernel flushes the
                // overflow list on the next GETEVENTS enter.
                Some(62 /* ETIME */) | Some(4 /* EINTR */) | Some(16 /* EBUSY */) => {}
                _ => return Err(e),
            },
        }
        self.drain_cq(events);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::os::fd::AsRawFd;

    fn backends() -> Vec<Box<dyn Poller>> {
        let mut v: Vec<Box<dyn Poller>> = vec![Box::new(PollPoller::new())];
        #[cfg(target_os = "linux")]
        {
            v.push(Box::new(EpollPoller::new().expect("epoll_create1")));
            match UringPoller::new() {
                Ok(p) => v.push(Box::new(p)),
                Err(e) => eprintln!("skipping uring backend (unavailable on this host): {e}"),
            }
        }
        v
    }

    /// Both backends: readable fires once (one-shot), stays quiet until
    /// re-armed, and delete drops the watch.
    #[test]
    fn oneshot_contract_holds_on_every_backend() {
        for mut p in backends() {
            let (rx, mut tx) = std::io::pipe().unwrap();
            let fd = rx.as_raw_fd();
            p.add(fd, Interest::READ).unwrap();
            let mut events = Vec::new();

            p.wait(&mut events, Duration::from_millis(10)).unwrap();
            assert!(events.is_empty(), "{}: nothing readable yet", p.name());

            tx.write_all(b"x").unwrap();
            p.wait(&mut events, Duration::from_secs(2)).unwrap();
            assert_eq!(events.len(), 1, "{}", p.name());
            assert_eq!(events[0].fd, fd);
            assert!(events[0].readable);

            // One-shot: without a re-arm the level-triggered condition
            // must not be re-reported.
            p.wait(&mut events, Duration::from_millis(20)).unwrap();
            assert!(
                events.is_empty(),
                "{}: fired watch must stay quiet",
                p.name()
            );

            // Re-arm: the still-unread byte fires again.
            p.modify(fd, Interest::READ).unwrap();
            p.wait(&mut events, Duration::from_secs(2)).unwrap();
            assert_eq!(events.len(), 1, "{}: re-arm re-delivers", p.name());

            p.delete(fd).unwrap();
            p.modify(events[0].fd, Interest::none()).ok();
            p.delete(fd).unwrap(); // idempotent
        }
    }

    /// A fired (disarmed) entry stays quiet even when the peer hangs
    /// up. `POLLERR`/`POLLHUP` cannot be masked on a polled fd, so
    /// [`PollPoller`] drops fired fds from its set entirely — matching
    /// `EPOLLONESHOT`, which disables the whole watch (hangups
    /// included) until the re-arm.
    #[test]
    fn fired_entry_masks_hangup_until_rearm() {
        for mut p in backends() {
            let (rx, mut tx) = std::io::pipe().unwrap();
            let fd = rx.as_raw_fd();
            p.add(fd, Interest::READ).unwrap();
            let mut events = Vec::new();
            tx.write_all(b"x").unwrap();
            p.wait(&mut events, Duration::from_secs(2)).unwrap();
            assert_eq!(events.len(), 1, "{}", p.name());

            drop(tx); // hangup while the watch is fired/disarmed
            p.wait(&mut events, Duration::from_millis(20)).unwrap();
            assert!(
                events.is_empty(),
                "{}: fired watch re-reported the hangup",
                p.name()
            );

            p.modify(fd, Interest::READ).unwrap();
            p.wait(&mut events, Duration::from_secs(2)).unwrap();
            assert_eq!(events.len(), 1, "{}: re-arm delivers the hangup", p.name());
            assert!(events[0].readable, "{}", p.name());
            p.delete(fd).unwrap();
        }
    }

    /// Write interest: a pipe with buffer space reports writable.
    #[test]
    fn write_interest_fires_when_writable() {
        for mut p in backends() {
            let (_rx, tx) = std::io::pipe().unwrap();
            let fd = tx.as_raw_fd();
            p.add(fd, Interest::WRITE).unwrap();
            let mut events = Vec::new();
            p.wait(&mut events, Duration::from_secs(2)).unwrap();
            assert_eq!(events.len(), 1, "{}", p.name());
            assert!(events[0].writable, "{}", p.name());
            p.delete(fd).unwrap();
        }
    }

    /// Interest::none keeps the fd registered without read/write
    /// delivery (the Busy-park state).
    #[test]
    fn empty_interest_delivers_nothing() {
        for mut p in backends() {
            let (rx, mut tx) = std::io::pipe().unwrap();
            let fd = rx.as_raw_fd();
            p.add(fd, Interest::none()).unwrap();
            tx.write_all(b"x").unwrap();
            let mut events = Vec::new();
            p.wait(&mut events, Duration::from_millis(20)).unwrap();
            assert!(events.is_empty(), "{}: parked fd delivered", p.name());
            // Re-arm with read interest: delivery resumes.
            p.modify(fd, Interest::READ).unwrap();
            p.wait(&mut events, Duration::from_secs(2)).unwrap();
            assert_eq!(events.len(), 1, "{}", p.name());
            p.delete(fd).unwrap();
        }
    }

    /// Churning add/delete keeps the incrementally-maintained pollfd
    /// array consistent: after a swap_remove the moved entry (fired or
    /// not) must still deliver for the right fd.
    #[test]
    fn poll_survives_add_delete_churn() {
        let mut p = PollPoller::new();
        let pipes: Vec<_> = (0..4).map(|_| std::io::pipe().unwrap()).collect();
        for (rx, _tx) in &pipes {
            p.add(rx.as_raw_fd(), Interest::READ).unwrap();
        }
        let mut events = Vec::new();
        // Fire the last entry so it is masked, then delete the first:
        // the masked entry is swap-moved into slot 0 and must keep a
        // correct index mapping.
        pipes[3].1.try_clone().unwrap().write_all(b"x").unwrap();
        p.wait(&mut events, Duration::from_secs(2)).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].fd, pipes[3].0.as_raw_fd());
        p.delete(pipes[0].0.as_raw_fd()).unwrap();

        // Re-arm the moved (masked) entry and fire it again.
        p.modify(pipes[3].0.as_raw_fd(), Interest::READ).unwrap();
        p.wait(&mut events, Duration::from_secs(2)).unwrap();
        assert_eq!(events.len(), 1, "re-armed moved entry fires");
        assert_eq!(events[0].fd, pipes[3].0.as_raw_fd());

        // A surviving middle entry still delivers for its own fd.
        pipes[2].1.try_clone().unwrap().write_all(b"y").unwrap();
        p.wait(&mut events, Duration::from_secs(2)).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].fd, pipes[2].0.as_raw_fd());

        // Deleting everything (including already-deleted fds) is clean.
        for (rx, _tx) in &pipes {
            p.delete(rx.as_raw_fd()).unwrap();
        }
        p.wait(&mut events, Duration::from_millis(10)).unwrap();
        assert!(events.is_empty());
    }

    /// After a connection spike drains, both of PollPoller's tables
    /// give their memory back instead of staying peak-sized, and the
    /// surviving watch still delivers.
    #[test]
    fn poll_shrinks_tables_after_churn() {
        let mut p = PollPoller::new();
        let keeper = std::io::pipe().unwrap();
        p.add(keeper.0.as_raw_fd(), Interest::READ).unwrap();

        // Spike: hold 128 pipes (256 fds) watched at once, so both the
        // pollfd array and the fd-indexed side table grow well past the
        // shrink floor.
        let spike: Vec<_> = (0..128).map(|_| std::io::pipe().unwrap()).collect();
        for (rx, _tx) in &spike {
            p.add(rx.as_raw_fd(), Interest::READ).unwrap();
        }
        let (peak_cap, peak_index) = p.footprint();
        assert!(peak_cap >= 129, "pollfds grew to the spike ({peak_cap})");
        assert!(
            peak_index > 128,
            "fd table grew to the peak fd ({peak_index})"
        );

        // Churn out: the spike's connections close.
        for (rx, _tx) in &spike {
            p.delete(rx.as_raw_fd()).unwrap();
        }
        drop(spike);
        let (cap, index) = p.footprint();
        assert!(
            cap < peak_cap && cap <= 64,
            "pollfd capacity must shrink after churn ({peak_cap} -> {cap})"
        );
        assert!(
            index < peak_index,
            "fd-index table must drop its unregistered tail ({peak_index} -> {index})"
        );

        // The surviving watch is untouched by the shrink.
        keeper.1.try_clone().unwrap().write_all(b"x").unwrap();
        let mut events = Vec::new();
        p.wait(&mut events, Duration::from_secs(2)).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].fd, keeper.0.as_raw_fd());
        p.delete(keeper.0.as_raw_fd()).unwrap();
    }

    #[test]
    fn env_override_selects_backend() {
        // Not testing the env var itself (process-global), just the
        // fallback construction paths.
        let p = create_poller(PollerBackend::Poll);
        assert_eq!(p.name(), "poll");
        let p = create_poller(PollerBackend::Epoll);
        if cfg!(target_os = "linux") {
            assert_eq!(p.name(), "epoll");
        } else {
            assert_eq!(p.name(), "poll");
        }
        // Uring resolves to itself where the ring comes up, and must
        // land on a working backend (the epoll link of the fallback
        // chain) everywhere else — never panic, never a dead poller.
        let p = create_poller(PollerBackend::Uring);
        #[cfg(target_os = "linux")]
        if uring_available() {
            assert_eq!(p.name(), "uring");
        } else {
            assert_eq!(p.name(), "epoll");
        }
        #[cfg(not(target_os = "linux"))]
        assert_eq!(p.name(), "poll");
    }

    /// A `modify` while a poll op is armed must supersede it: the old
    /// op's completion (cancelled or already fired) may not surface,
    /// and the new interest must. This exercises the
    /// POLL_REMOVE + POLL_ADD batch and the stale-id discard in the CQ
    /// drain — the uring-specific machinery the shared contract tests
    /// touch only incidentally.
    #[cfg(target_os = "linux")]
    #[test]
    fn uring_modify_supersedes_armed_op() {
        let Ok(mut p) = UringPoller::new() else {
            eprintln!("skipping: io_uring unavailable on this host");
            return;
        };
        let (rx, mut tx) = std::io::pipe().unwrap();
        let fd = rx.as_raw_fd();
        tx.write_all(b"x").unwrap(); // readable from the start

        // Arm for read, then — without waiting — swap to write-only
        // interest. The read op is cancelled while its completion may
        // already be posted; neither form may leak through.
        p.add(fd, Interest::READ).unwrap();
        p.modify(fd, Interest::WRITE).unwrap();
        let mut events = Vec::new();
        p.wait(&mut events, Duration::from_millis(100)).unwrap();
        assert!(
            events
                .iter()
                .all(|e| e.fd != fd || !e.readable || e.writable),
            "superseded read-only arm leaked a read event: {events:?}"
        );
        // A pipe read end is never writable: nothing should fire even
        // across a second round.
        p.wait(&mut events, Duration::from_millis(50)).unwrap();
        assert!(events.is_empty(), "write interest on pipe read end fired");

        // Swap back to read: the buffered byte fires immediately.
        p.modify(fd, Interest::READ).unwrap();
        p.wait(&mut events, Duration::from_secs(2)).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].fd, fd);
        assert!(events[0].readable);
        p.delete(fd).unwrap();
    }

    /// `delete` with a readiness completion already posted in the CQ:
    /// the stale CQE must be discarded, and a later re-`add` of the
    /// same fd must not be confused by it (id mismatch, not fd match).
    #[cfg(target_os = "linux")]
    #[test]
    fn uring_delete_discards_posted_completion() {
        let Ok(mut p) = UringPoller::new() else {
            eprintln!("skipping: io_uring unavailable on this host");
            return;
        };
        let (rx, mut tx) = std::io::pipe().unwrap();
        let fd = rx.as_raw_fd();
        p.add(fd, Interest::READ).unwrap();
        let mut events = Vec::new();
        // Flush the arm into the kernel, then make it fire while no
        // wait is in progress: the CQE sits in the ring.
        p.wait(&mut events, Duration::ZERO).unwrap();
        tx.write_all(b"x").unwrap();
        std::thread::sleep(Duration::from_millis(20));
        // Deleted before the completion is drained → never delivered.
        p.delete(fd).unwrap();
        p.wait(&mut events, Duration::from_millis(50)).unwrap();
        assert!(events.is_empty(), "deleted fd delivered: {events:?}");
        // Fresh registration on the same fd still works.
        p.add(fd, Interest::READ).unwrap();
        p.wait(&mut events, Duration::from_secs(2)).unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].readable);
        p.delete(fd).unwrap();
    }

    // The FLUX_URING_DISABLE construction knob is tested in the
    // dedicated `uring_fallback` integration binary: env vars are
    // process-global, so flipping it here would race the parallel
    // tests that probe ring availability.
}
