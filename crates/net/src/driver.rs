//! The connection driver: a readiness queue over a table of connections.
//!
//! Flux flows are acyclic, so a keep-alive connection cannot loop inside
//! one flow; instead (as in the paper's web and BitTorrent servers, whose
//! source nodes select over existing clients) the *source* multiplexes:
//! it emits one unit of work per ready connection. The driver supplies
//! that readiness stream from three producers feeding one channel:
//!
//! * an **acceptor thread** per listener, queueing
//!   [`DriverEvent::Incoming`];
//! * the in-memory transport's **watch callbacks** (zero threads: the
//!   writer's thread fires the callback at write time);
//! * the shared **poll(2) reactor** ([`crate::reactor::Reactor`]) for
//!   every transport that exposes a raw file descriptor (TCP). One
//!   reactor thread serves *all* registered sockets — the seed's
//!   one-helper-thread-per-connection readiness path is gone, and with
//!   it the hidden thread-per-connection scaling cliff. A per-connection
//!   helper thread survives only as a fallback for hypothetical
//!   transports with neither watch support nor a file descriptor.
//!
//! Watches are one-shot: after a `Readable` event the connection is
//! quiescent until [`ConnDriver::arm`] is called again (the web server's
//! `Complete` node re-arms keep-alive connections).

use crate::traits::{Conn, Listener};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A registered connection's identity.
pub type Token = u64;

/// What the driver reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverEvent {
    /// A new connection was accepted and registered.
    Incoming(Token),
    /// A watched connection became readable (or hit EOF).
    Readable(Token),
}

/// A shared handle to a registered connection. Nodes lock it for the
/// duration of one read/write interaction.
pub type SharedConn = Arc<Mutex<Box<dyn Conn>>>;

/// Multiplexes connection readiness into a single event stream.
pub struct ConnDriver {
    tx: Sender<DriverEvent>,
    rx: Receiver<DriverEvent>,
    conns: Mutex<HashMap<Token, SharedConn>>,
    next_token: AtomicU64,
    stopping: AtomicBool,
    /// The poll(2) multiplexer for fd-backed transports. Its thread is
    /// spawned lazily on the first fd registration.
    #[cfg(unix)]
    reactor: Arc<crate::reactor::Reactor>,
}

impl Default for ConnDriver {
    fn default() -> Self {
        Self::new()
    }
}

impl ConnDriver {
    pub fn new() -> Self {
        let (tx, rx) = unbounded();
        ConnDriver {
            #[cfg(unix)]
            reactor: crate::reactor::Reactor::new(tx.clone()),
            tx,
            rx,
            conns: Mutex::new(HashMap::new()),
            next_token: AtomicU64::new(1),
            stopping: AtomicBool::new(false),
        }
    }

    /// Registers an existing connection, returning its token. No
    /// readiness watch is armed until [`ConnDriver::arm`].
    pub fn add(&self, conn: Box<dyn Conn>) -> Token {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        self.conns.lock().insert(token, Arc::new(Mutex::new(conn)));
        token
    }

    /// The shared handle for `token`.
    pub fn get(&self, token: Token) -> Option<SharedConn> {
        self.conns.lock().get(&token).cloned()
    }

    /// Removes (closes) the connection, dropping any armed reactor
    /// watch so the reactor stops polling a soon-to-be-closed fd.
    pub fn remove(&self, token: Token) -> Option<SharedConn> {
        let conn = self.conns.lock().remove(&token);
        #[cfg(unix)]
        if conn.is_some() {
            self.reactor.deregister(token);
        }
        conn
    }

    /// Number of registered connections.
    pub fn len(&self) -> usize {
        self.conns.lock().len()
    }

    /// True when no connections are registered.
    pub fn is_empty(&self) -> bool {
        self.conns.lock().is_empty()
    }

    /// Arms a one-shot readability watch: when the connection has data
    /// (or EOF), a [`DriverEvent::Readable`] is queued. In-memory
    /// transports install a watch callback; fd-backed transports (TCP)
    /// are registered with the shared poll(2) reactor thread. Only a
    /// transport with neither capability falls back to a helper thread.
    pub fn arm(self: &Arc<Self>, token: Token) {
        let Some(shared) = self.get(token) else {
            return;
        };
        let tx = self.tx.clone();
        let watched = {
            let conn = shared.lock();
            conn.set_read_watch(Box::new({
                let tx = tx.clone();
                move || {
                    let _ = tx.send(DriverEvent::Readable(token));
                }
            }))
        };
        if watched {
            return;
        }
        #[cfg(unix)]
        {
            let fd = shared.lock().raw_fd();
            if let Some(fd) = fd {
                self.reactor.register(fd, token);
                return;
            }
        }
        self.arm_with_helper_thread(shared, token, tx);
    }

    /// Last-resort watch for transports with neither watch callbacks nor
    /// a raw fd: one helper thread performs the wait (the paper's
    /// select-simulation thread). No in-tree transport takes this path.
    fn arm_with_helper_thread(
        self: &Arc<Self>,
        shared: SharedConn,
        token: Token,
        tx: Sender<DriverEvent>,
    ) {
        let this = self.clone();
        let clone = {
            let conn = shared.lock();
            conn.try_clone()
        };
        std::thread::Builder::new()
            .name("flux-net-watch".into())
            .spawn(move || {
                let Ok(conn) = clone else {
                    let _ = tx.send(DriverEvent::Readable(token));
                    return;
                };
                loop {
                    if this.stopping.load(Ordering::Relaxed) {
                        return;
                    }
                    match conn.wait_readable(Some(Duration::from_millis(100))) {
                        Ok(true) => {
                            let _ = tx.send(DriverEvent::Readable(token));
                            return;
                        }
                        Ok(false) => continue,
                        Err(_) => {
                            let _ = tx.send(DriverEvent::Readable(token));
                            return;
                        }
                    }
                }
            })
            .expect("spawn watch thread");
    }

    /// Accepts connections from `listener` on a background thread,
    /// registering each and queueing [`DriverEvent::Incoming`]. The
    /// thread exits when [`ConnDriver::stop`] is called.
    pub fn spawn_acceptor(self: &Arc<Self>, listener: Box<dyn Listener>) {
        let this = self.clone();
        listener.set_accept_timeout(Some(Duration::from_millis(50)));
        std::thread::Builder::new()
            .name("flux-net-accept".into())
            .spawn(move || loop {
                if this.stopping.load(Ordering::Relaxed) {
                    return;
                }
                match listener.accept() {
                    Ok(conn) => {
                        let token = this.add(conn);
                        let _ = this.tx.send(DriverEvent::Incoming(token));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::TimedOut => continue,
                    Err(_) => return,
                }
            })
            .expect("spawn acceptor thread");
    }

    /// Next readiness event, or `None` on timeout.
    pub fn next_event(&self, timeout: Duration) -> Option<DriverEvent> {
        match self.rx.recv_timeout(timeout) {
            Ok(ev) => Some(ev),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Injects a synthetic event (used by timer sources).
    pub fn inject(&self, ev: DriverEvent) {
        let _ = self.tx.send(ev);
    }

    /// Stops acceptor, reactor and watcher threads (cooperatively).
    pub fn stop(&self) {
        self.stopping.store(true, Ordering::Relaxed);
        #[cfg(unix)]
        self.reactor.stop();
    }

    /// The number of readiness events delivered by the poll reactor
    /// (fd-backed transports only; watch-based events are not counted).
    #[cfg(unix)]
    pub fn reactor_events(&self) -> u64 {
        self.reactor.events_delivered()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemNet;
    use std::io::Write;

    #[test]
    fn incoming_and_readable_events() {
        let net = MemNet::new();
        let listener = net.listen("srv").unwrap();
        let driver = Arc::new(ConnDriver::new());
        driver.spawn_acceptor(Box::new(listener));

        let mut client = net.connect("srv").unwrap();
        let ev = driver.next_event(Duration::from_secs(2)).unwrap();
        let DriverEvent::Incoming(token) = ev else {
            panic!("expected Incoming, got {ev:?}");
        };
        driver.arm(token);
        assert!(
            driver.next_event(Duration::from_millis(50)).is_none(),
            "no data yet"
        );
        client.write_all(b"hello").unwrap();
        assert_eq!(
            driver.next_event(Duration::from_secs(2)),
            Some(DriverEvent::Readable(token))
        );
        driver.stop();
    }

    #[test]
    fn arm_fires_on_eof() {
        let net = MemNet::new();
        let listener = net.listen("srv").unwrap();
        let driver = Arc::new(ConnDriver::new());
        driver.spawn_acceptor(Box::new(listener));
        let client = net.connect("srv").unwrap();
        let DriverEvent::Incoming(token) = driver.next_event(Duration::from_secs(2)).unwrap()
        else {
            panic!()
        };
        driver.arm(token);
        drop(client);
        assert_eq!(
            driver.next_event(Duration::from_secs(2)),
            Some(DriverEvent::Readable(token))
        );
        driver.stop();
    }

    #[test]
    fn remove_drops_connection() {
        let driver = Arc::new(ConnDriver::new());
        let (a, _b) = crate::mem::MemConn::pair();
        let t = driver.add(Box::new(a));
        assert_eq!(driver.len(), 1);
        assert!(driver.remove(t).is_some());
        assert!(driver.is_empty());
        assert!(driver.get(t).is_none());
    }

    #[test]
    fn inject_synthetic_events() {
        let driver = ConnDriver::new();
        driver.inject(DriverEvent::Readable(99));
        assert_eq!(
            driver.next_event(Duration::from_millis(10)),
            Some(DriverEvent::Readable(99))
        );
    }

    #[test]
    fn tcp_readiness_via_reactor() {
        let acceptor = crate::tcp::TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let driver = Arc::new(ConnDriver::new());
        driver.spawn_acceptor(Box::new(acceptor));
        let mut client = crate::tcp::TcpConn::connect(&addr).unwrap();
        let DriverEvent::Incoming(token) = driver.next_event(Duration::from_secs(2)).unwrap()
        else {
            panic!()
        };
        driver.arm(token);
        client.write_all(b"x").unwrap();
        assert_eq!(
            driver.next_event(Duration::from_secs(2)),
            Some(DriverEvent::Readable(token))
        );
        #[cfg(unix)]
        assert_eq!(
            driver.reactor_events(),
            1,
            "TCP readiness must come from the poll reactor, not helper threads"
        );
        driver.stop();
    }

    /// Many armed TCP connections are all served by the single reactor
    /// thread — the acceptance criterion for retiring the per-connection
    /// helper threads.
    #[test]
    #[cfg(unix)]
    fn one_reactor_thread_serves_many_tcp_conns() {
        let acceptor = crate::tcp::TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let driver = Arc::new(ConnDriver::new());
        driver.spawn_acceptor(Box::new(acceptor));
        let mut clients = Vec::new();
        let mut tokens = Vec::new();
        for _ in 0..32 {
            clients.push(crate::tcp::TcpConn::connect(&addr).unwrap());
            let DriverEvent::Incoming(token) = driver.next_event(Duration::from_secs(2)).unwrap()
            else {
                panic!()
            };
            driver.arm(token);
            tokens.push(token);
        }
        for c in &mut clients {
            c.write_all(b"!").unwrap();
        }
        let mut seen = std::collections::HashSet::new();
        while seen.len() < 32 {
            match driver.next_event(Duration::from_secs(2)) {
                Some(DriverEvent::Readable(t)) => {
                    seen.insert(t);
                }
                other => panic!("expected Readable, got {other:?}"),
            }
        }
        assert_eq!(seen, tokens.iter().copied().collect());
        assert_eq!(driver.reactor_events(), 32);
        driver.stop();
    }
}
