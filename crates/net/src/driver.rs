//! The connection driver: a readiness queue over a table of connections.
//!
//! Flux flows are acyclic, so a keep-alive connection cannot loop inside
//! one flow; instead (as in the paper's web and BitTorrent servers, whose
//! source nodes select over existing clients) the *source* multiplexes:
//! it emits one unit of work per ready connection. The driver supplies
//! that readiness stream from three producers feeding one channel:
//!
//! * an **acceptor thread** per listener, queueing
//!   [`DriverEvent::Incoming`]; transient accept failures (`EMFILE`,
//!   `ECONNABORTED`, …) are retried with a short backoff instead of
//!   killing the listener, with retries counted in [`DriverCounters`];
//! * the in-memory transport's **watch callbacks** (zero threads: the
//!   writer's thread fires the callback at write time). Callbacks are
//!   *coalesced*: each appends to a shared buffer and only the
//!   empty→non-empty transition sends a channel marker
//!   ([`Delivery::Coalesced`]), so a burst of N mem writes costs one
//!   channel op, mirroring the reactor's batch delivery
//!   ([`DriverCounters::watch_coalesced`] counts the saved sends);
//! * the shared **readiness reactor** ([`crate::reactor::Reactor`]) for
//!   every transport that exposes a raw file descriptor (TCP). One
//!   reactor thread serves *all* registered sockets over the configured
//!   [`crate::poller::Poller`] backend (`poll(2)`, or `epoll(7)` — the
//!   Linux default; see [`NetConfig`]).
//!
//! **The hot path is slab-indexed and batched.** A [`Token`] encodes a
//! `(slot, generation)` pair ([`token_slot`]/[`token_gen`]): the
//! connection table is a slab of per-slot locks, so looking a token up
//! costs one shared read of the slot vector plus one uncontended
//! per-slot mutex — no global `Mutex<HashMap>` and no hashing — and a
//! `submit_write` on one connection never contends with another
//! connection's event dispatch. The generation in the token makes
//! stale handles safe: a removed token's generation never matches the
//! slot again (the slot's generation advances on every reuse), so a
//! late `get`/`submit_write`/`arm` against a closed connection is a
//! clean `None`/`false`, never a hit on the slot's next tenant.
//!
//! Readiness events travel in **batches**: the reactor ships one
//! recycled `Vec<DriverEvent>` per `wait` round and consumers drain it
//! through [`ConnDriver::next_events`], so a burst of N ready sockets
//! costs one channel transfer instead of N — the runtime's
//! `route_home_batch` then appends the whole batch to a shard queue
//! under one lock. [`ConnDriver::next_event`] remains for
//! one-at-a-time consumers (and is how non-batching servers poll).
//!
//! Read watches are one-shot: after a `Readable` event the connection is
//! quiescent until [`ConnDriver::arm`] is called again (the web server's
//! `Complete` node re-arms keep-alive connections).
//!
//! **The write path.** [`ConnDriver::submit_write`] queues response
//! bytes on the connection's output buffer without blocking: transports
//! that complete synchronously (the in-memory pipe, or TCP with socket
//! buffer room) emit [`DriverEvent::WriteDone`] immediately; a partial
//! TCP write arms a `POLLOUT` drain on the reactor, which batches
//! non-blocking writes until the buffer empties (`WriteDone`) or the
//! connection breaks (`WriteFailed`, after which the connection is
//! removed). `Write` nodes therefore never occupy an I/O worker thread
//! or hold a session lock across a send. [`ConnDriver::submit_write_buf`]
//! is the pooled variant: the payload `Vec` (checked out with
//! [`ConnDriver::take_write_buf`]) is recycled through a bounded
//! [`crate::pool::BytePool`] as soon as the transport has taken or
//! buffered the bytes, so steady-state response serialization performs
//! no heap allocation. [`ConnDriver::remove_when_flushed`] defers a
//! close until every queued byte has drained, and
//! [`ConnDriver::set_max_pending_out`] bounds each connection's buffer
//! (replacing the blocking path's socket-buffer backpressure) so a peer
//! that never reads cannot grow server memory without limit.
//!
//! [`ConnDriver::stop`] is a real shutdown: it joins the reactor,
//! acceptor and fallback-watch threads (all of which poll the stop flag
//! on bounded timeouts), so no driver thread can outlive the server and
//! fire into a dropped channel.

use crate::pool::{BatchPool, BytePool, SharedPayload};
use crate::traits::{Conn, Listener, WriteProgress};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Mutex, RwLock};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A registered connection's identity: `(generation << 32) | slot`.
/// The slot indexes the driver's connection slab; the generation
/// distinguishes successive tenants of the same slot, so a stale token
/// can never alias a newer connection (see [`token_slot`]).
pub type Token = u64;

/// The slab slot a token addresses (low 32 bits).
#[inline]
pub fn token_slot(token: Token) -> usize {
    (token & 0xFFFF_FFFF) as usize
}

/// The registration generation a token carries (high 32 bits). The
/// driver's slots start at generation 1, so tokens it issues are
/// always `> u32::MAX`; small literal tokens (tests, synthetic timer
/// events) carry generation 0 and can never match a live slot.
#[inline]
pub fn token_gen(token: Token) -> u32 {
    (token >> 32) as u32
}

#[inline]
fn make_token(slot: u32, gen: u32) -> Token {
    ((gen as u64) << 32) | slot as u64
}

/// Network-layer configuration, consumed by [`ConnDriver::with_config`]
/// and carried by `flux_servers::ServerBuilder` so every server,
/// example, bench harness and test constructs its driver the same way.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Which readiness backend multiplexes fd-backed transports.
    /// Defaults to epoll on Linux (io_uring is opt-in until it has
    /// broader soak time); `FLUX_POLLER=poll|epoll|uring` overrides at
    /// runtime. A backend that fails its capability probe falls back
    /// down the chain (uring → epoll → poll) and the substitution is
    /// counted in [`DriverCounters::poller_fallbacks`].
    #[cfg(unix)]
    pub backend: crate::poller::PollerBackend,
    /// Per-connection output-buffer bound for the non-blocking write
    /// path (see [`ConnDriver::set_max_pending_out`]). Default 64 MiB.
    pub max_pending_out: usize,
    /// How long event consumers (server `Listen` sources) block in
    /// [`ConnDriver::next_event`] per poll before re-checking their
    /// shutdown flag. Default 20 ms.
    pub io_timeout: Duration,
    /// Hard cap on live registered connections (edge admission). An
    /// accept at capacity is completed and immediately closed — the
    /// kernel backlog keeps draining, the peer sees a clean reset-ish
    /// close instead of a hung SYN — and counted in
    /// [`DriverCounters::accepts_governed`]. `0` = unlimited (default).
    pub max_conns: usize,
    /// Token-bucket accept-rate bound in accepts/second (edge
    /// admission): the acceptor delays between accepts once the bucket
    /// (burst = one second's worth) empties, counting each delayed
    /// accept in [`DriverCounters::accepts_governed`]. `0` = unlimited
    /// (default).
    pub accept_rate: u32,
    /// Idle / slow-loris reaping deadline: a connection that makes no
    /// *application progress* (request completed, response drained —
    /// see [`ConnDriver::mark_progress`]) for this long is removed by
    /// the periodic idle sweep, releasing its slab slot and reactor
    /// watch. Raw received bytes do NOT count as progress, so a
    /// slow-loris trickling header bytes forever is still reaped.
    /// `None` = no reaping (default).
    pub idle_timeout: Option<Duration>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            #[cfg(unix)]
            backend: crate::poller::PollerBackend::default(),
            max_pending_out: 64 * 1024 * 1024,
            io_timeout: Duration::from_millis(20),
            max_conns: 0,
            accept_rate: 0,
            idle_timeout: None,
        }
    }
}

/// What the driver reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverEvent {
    /// A new connection was accepted and registered.
    Incoming(Token),
    /// A watched connection became readable (or hit EOF).
    Readable(Token),
    /// One submitted write fully reached the transport.
    WriteDone(Token),
    /// A submitted write failed; the connection has been removed.
    WriteFailed(Token),
}

/// What travels on the driver's event channel: the reactor ships one
/// recycled batch per `wait` round; mem-transport watch callbacks
/// accumulate into the driver's shared coalescing buffer and send one
/// `Coalesced` marker per empty→non-empty transition; everything else
/// (accepts, write completions) sends single events.
pub(crate) enum Delivery {
    One(DriverEvent),
    Batch(Vec<DriverEvent>),
    /// Marker: the watch coalescing buffer went non-empty. The events
    /// themselves are in [`ConnDriver::watch_batch`]; `unpack` drains
    /// it wholesale, so a burst of watch callbacks costs one channel
    /// send + one unpack instead of one channel op per event.
    Coalesced,
}

/// A shared handle to a registered connection. Nodes lock it for the
/// duration of one read/write interaction.
pub type SharedConn = Arc<Mutex<Box<dyn Conn>>>;

/// Driver-level counters, cheap enough to stay on in production. The
/// server glue publishes them into `flux_runtime::ServerStats` next to
/// the shard counters.
#[derive(Debug, Default)]
pub struct DriverCounters {
    /// Transient accept errors survived by the acceptor's retry loop.
    pub accept_retries: AtomicU64,
    /// Writes handed to [`ConnDriver::submit_write`].
    pub writes_submitted: AtomicU64,
    /// Writes fully drained (synchronously or by the reactor).
    pub writes_drained: AtomicU64,
    /// Times a write hit `WouldBlock` and (re-)armed a `POLLOUT` drain.
    pub write_would_block: AtomicU64,
    /// Writes that failed (connection removed).
    pub writes_failed: AtomicU64,
    /// Shared fan-out payloads handed to
    /// [`ConnDriver::submit_write_shared`] (each is also counted in
    /// `writes_submitted`).
    pub writes_shared: AtomicU64,
    /// Connections evicted because a submission would push their
    /// output buffer past [`ConnDriver::set_max_pending_out`] — the
    /// slow-consumer policy: drop the subscriber, never buffer without
    /// bound.
    pub slow_consumer_evicted: AtomicU64,
    /// Watch-callback events that piggybacked on an already-pending
    /// `Coalesced` marker instead of sending their own channel op —
    /// the mem-transport batching amortization factor.
    pub watch_coalesced: AtomicU64,
    /// Connections admitted by the acceptor (registered and announced
    /// as `Incoming`). With the overload books, `accepts_admitted +
    /// accepts_governed` equals the accepts the listener completed.
    pub accepts_admitted: AtomicU64,
    /// Accepts refused or delayed by edge admission: at
    /// [`NetConfig::max_conns`] capacity the connection is closed on
    /// the spot; past the [`NetConfig::accept_rate`] token bucket the
    /// acceptor stalls until a token accrues. Either way the work never
    /// enters the system — refused at the edge, counted, not queued.
    pub accepts_governed: AtomicU64,
    /// Connections retired by the idle sweep: no application progress
    /// within [`NetConfig::idle_timeout`] (the slow-loris defence).
    pub idle_reaped: AtomicU64,
    /// Write submissions that joined an already non-empty output buffer
    /// (the connection is falling behind but is still under the
    /// eviction cap) — the backpressure signal operators see *before*
    /// the `slow_consumer_evicted` cliff.
    pub writes_deferred: AtomicU64,
    /// 1 when the requested poller backend failed its capability probe
    /// at construction and a fallback was substituted (e.g. `uring`
    /// requested on a kernel without io_uring → epoll). Paired with
    /// [`ConnDriver::poller_backend`] so harnesses can refuse to
    /// attribute numbers to a backend that never actually ran.
    pub poller_fallbacks: AtomicU64,
}

/// One slab slot's state, behind its own lock. `gen` is written only
/// here (under the lock), so every token check is consistent with the
/// conn/write state it guards.
#[derive(Default)]
struct SlotState {
    /// Generation of the current (or, while the slot is free, the most
    /// recent) registration. Advances on every [`ConnDriver::add`], so
    /// a removed token can only false-match after 2^32 reuses of one
    /// slot — and even then only while the slot is empty, where every
    /// operation still observes `conn: None`.
    gen: u32,
    conn: Option<SharedConn>,
    /// Submissions whose bytes are still (partially) buffered.
    submissions: u64,
    /// Close the connection once the buffer drains
    /// ([`ConnDriver::remove_when_flushed`]).
    close_after: bool,
    /// Per-connection read scratch, reused across requests (see
    /// [`ConnDriver::take_read_buf`]).
    scratch: Vec<u8>,
    /// Milliseconds (since the driver's epoch) of the last observed
    /// application progress: set on registration, refreshed by
    /// [`ConnDriver::mark_progress`] and by successful write drains.
    /// The idle sweep reaps connections whose stamp falls behind
    /// [`NetConfig::idle_timeout`]. Raw received bytes deliberately do
    /// not refresh it — that is what makes slow-loris reapable.
    progress: u64,
    /// Raw fd captured at registration (fd-backed transports only).
    /// Lets the idle reaper sever the socket with `shutdown(2)`
    /// *without* taking the conn lock — a slow-loris peer's parked
    /// blocking read holds that lock indefinitely.
    #[cfg(unix)]
    fd: Option<std::os::fd::RawFd>,
}

type ConnSlot = Mutex<SlotState>;

/// `shutdown(2)` both directions — severs a socket without closing the
/// fd, so a thread parked in a blocking read on it returns EOF.
#[cfg(unix)]
const SHUT_RDWR: std::os::raw::c_int = 2;
#[cfg(unix)]
extern "C" {
    fn shutdown(sockfd: std::os::raw::c_int, how: std::os::raw::c_int) -> std::os::raw::c_int;
}

/// Multiplexes connection readiness into a single event stream.
pub struct ConnDriver {
    tx: Sender<Delivery>,
    rx: Receiver<Delivery>,
    /// Events unpacked from deliveries, awaiting a consumer. Batches
    /// are recycled into `event_batches` the moment they are unpacked.
    pending: Mutex<VecDeque<DriverEvent>>,
    /// The connection slab: grow-only vector of per-slot locks. The
    /// outer `RwLock` is write-locked only to grow; every steady-state
    /// lookup takes the shared read path plus one per-slot mutex.
    slots: RwLock<Vec<Arc<ConnSlot>>>,
    /// Slots available for reuse. A slot is pushed here only after its
    /// reactor watch is deregistered, so a new tenant can never race a
    /// stale watch on the same slot.
    free_slots: Mutex<Vec<u32>>,
    conn_count: AtomicUsize,
    counters: Arc<DriverCounters>,
    /// Coalescing buffer for mem-transport watch callbacks (see
    /// [`Delivery::Coalesced`]). A separate `Arc` — not `Arc<Self>` —
    /// so a watch closure held by a connection never forms a
    /// driver → slot → conn → closure → driver reference cycle.
    watch_batch: Arc<Mutex<Vec<DriverEvent>>>,
    /// Recycled payload buffers for [`ConnDriver::submit_write_buf`]
    /// and [`ConnDriver::seal_write_buf`] (shared, so sealed payloads
    /// can return their buffer from any releasing thread).
    write_bufs: Arc<BytePool>,
    /// Recycled event vectors for the reactor's per-round batches.
    event_batches: Arc<BatchPool<DriverEvent>>,
    /// Per-connection output-buffer bound (see
    /// [`ConnDriver::set_max_pending_out`]).
    max_pending_out: AtomicUsize,
    /// Live-connection cap for edge admission (0 = unlimited).
    max_conns: AtomicUsize,
    /// Accept-rate bound in accepts/second (0 = unlimited).
    accept_rate: AtomicU64,
    /// Idle-reaping deadline in milliseconds (0 = reaping off).
    idle_timeout_ms: AtomicU64,
    /// The instant progress stamps are measured from.
    epoch: Instant,
    /// Next idle sweep due, in epoch-millis: the CAS here dedupes the
    /// sweep between its two drivers (the reactor's per-round tick and
    /// the acceptor loop, which covers fd-less transports).
    reap_next_due: AtomicU64,
    stopping: AtomicBool,
    /// Acceptor and fallback-watch threads, joined by [`ConnDriver::stop`].
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Work queue of the lazily spawned `flux-net-drain` thread (fd-less
    /// transports with buffered writes, i.e. the shaped mem transport).
    drain_tx: Mutex<Option<Sender<(Token, SharedConn)>>>,
    /// The readiness multiplexer for fd-backed transports (poll or
    /// epoll, per [`NetConfig::backend`]). Its thread is spawned lazily
    /// on the first fd registration.
    #[cfg(unix)]
    reactor: Arc<crate::reactor::Reactor>,
}

impl Default for ConnDriver {
    fn default() -> Self {
        Self::new()
    }
}

impl ConnDriver {
    /// A driver with the default [`NetConfig`] (epoll on Linux with
    /// poll fallback, honouring `FLUX_POLLER`).
    pub fn new() -> Self {
        Self::with_config(&NetConfig::default())
    }

    /// A driver configured explicitly — the path every
    /// `flux_servers::ServerBuilder` takes.
    pub fn with_config(config: &NetConfig) -> Self {
        let (tx, rx) = unbounded();
        let event_batches = Arc::new(BatchPool::new(8));
        #[cfg(unix)]
        let reactor =
            crate::reactor::Reactor::new(tx.clone(), event_batches.clone(), config.backend);
        let counters = Arc::new(DriverCounters::default());
        #[cfg(unix)]
        if reactor.backend_fell_back() {
            counters.poller_fallbacks.fetch_add(1, Ordering::Relaxed);
        }
        ConnDriver {
            #[cfg(unix)]
            reactor,
            tx,
            rx,
            pending: Mutex::new(VecDeque::new()),
            slots: RwLock::new(Vec::new()),
            free_slots: Mutex::new(Vec::new()),
            conn_count: AtomicUsize::new(0),
            counters,
            watch_batch: Arc::new(Mutex::new(Vec::new())),
            write_bufs: Arc::new(BytePool::default()),
            event_batches,
            max_pending_out: AtomicUsize::new(config.max_pending_out),
            max_conns: AtomicUsize::new(config.max_conns),
            accept_rate: AtomicU64::new(config.accept_rate as u64),
            idle_timeout_ms: AtomicU64::new(
                config.idle_timeout.map_or(0, |d| d.as_millis() as u64),
            ),
            epoch: Instant::now(),
            reap_next_due: AtomicU64::new(0),
            stopping: AtomicBool::new(false),
            threads: Mutex::new(Vec::new()),
            drain_tx: Mutex::new(None),
        }
    }

    /// The readiness backend actually in use (`"poll"`, `"epoll"`, or
    /// `"uring"`, after any fallback — see
    /// [`DriverCounters::poller_fallbacks`]); `"none"` on non-unix
    /// hosts.
    pub fn poller_backend(&self) -> &'static str {
        #[cfg(unix)]
        {
            self.reactor.backend_name()
        }
        #[cfg(not(unix))]
        {
            "none"
        }
    }

    /// True when the reactor thread pinned itself to a core (multi-core
    /// hosts with `FLUX_PIN` unset; see [`crate::affinity`]).
    #[cfg(unix)]
    pub fn reactor_pinned(&self) -> bool {
        self.reactor.pinned()
    }

    fn send_one(&self, ev: DriverEvent) {
        let _ = self.tx.send(Delivery::One(ev));
    }

    /// The per-slot lock for a token's slot, if the slot exists. The
    /// generation is checked by callers under the slot lock.
    fn slot_arc(&self, token: Token) -> Option<Arc<ConnSlot>> {
        self.slots.read().get(token_slot(token)).cloned()
    }

    /// Registers an existing connection, returning its token. No
    /// readiness watch is armed until [`ConnDriver::arm`].
    pub fn add(&self, conn: Box<dyn Conn>) -> Token {
        let (idx, slot) = match self.free_slots.lock().pop() {
            Some(i) => (i, self.slots.read()[i as usize].clone()),
            None => {
                let mut slots = self.slots.write();
                let i = slots.len() as u32;
                let s: Arc<ConnSlot> = Arc::new(Mutex::new(SlotState::default()));
                slots.push(s.clone());
                (i, s)
            }
        };
        let now = self.now_ms();
        #[cfg(unix)]
        let fd = conn.raw_fd();
        let gen = {
            let mut st = slot.lock();
            debug_assert!(st.conn.is_none(), "free slot must be empty");
            st.gen = st.gen.wrapping_add(1).max(1);
            st.conn = Some(Arc::new(Mutex::new(conn)));
            st.submissions = 0;
            st.close_after = false;
            st.progress = now;
            #[cfg(unix)]
            {
                st.fd = fd;
            }
            st.gen
        };
        self.conn_count.fetch_add(1, Ordering::Relaxed);
        make_token(idx, gen)
    }

    /// The shared handle for `token`.
    pub fn get(&self, token: Token) -> Option<SharedConn> {
        let slot = self.slot_arc(token)?;
        let st = slot.lock();
        if st.gen != token_gen(token) {
            return None;
        }
        st.conn.clone()
    }

    /// Removes (closes) the connection. The reactor watch is
    /// deregistered *before* this returns — and before the fd can close,
    /// since the caller still holds the `SharedConn` being returned — so
    /// a kernel-reused fd can never be polled under the stale token.
    /// Pending write submissions are failed (one `WriteFailed` each), so
    /// `submit_write`'s one-completion-per-call contract holds. The slot
    /// returns to the free list only after the deregistration, so its
    /// next tenant can never race the stale watch.
    pub fn remove(&self, token: Token) -> Option<SharedConn> {
        let slot = self.slot_arc(token)?;
        let (conn, failed) = {
            let mut st = slot.lock();
            if st.gen != token_gen(token) {
                return None;
            }
            let conn = st.conn.take()?;
            let failed = st.submissions;
            st.submissions = 0;
            st.close_after = false;
            (conn, failed)
        };
        self.conn_count.fetch_sub(1, Ordering::Relaxed);
        if failed > 0 {
            self.counters
                .writes_failed
                .fetch_add(failed, Ordering::Relaxed);
            for _ in 0..failed {
                self.send_one(DriverEvent::WriteFailed(token));
            }
        }
        #[cfg(unix)]
        self.reactor.deregister(token);
        self.free_slots.lock().push(token_slot(token) as u32);
        Some(conn)
    }

    /// Removes the connection once every submitted write has drained:
    /// immediately when nothing is buffered, otherwise after the reactor
    /// delivers the final `WriteDone`.
    pub fn remove_when_flushed(&self, token: Token) {
        if let Some(slot) = self.slot_arc(token) {
            let mut st = slot.lock();
            if st.gen == token_gen(token) && st.conn.is_some() && st.submissions > 0 {
                st.close_after = true;
                return;
            }
        }
        self.remove(token);
    }

    /// Number of registered connections.
    pub fn len(&self) -> usize {
        self.conn_count.load(Ordering::Relaxed)
    }

    /// True when no connections are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Driver-level counters (accept retries, write-path traffic).
    pub fn counters(&self) -> Arc<DriverCounters> {
        self.counters.clone()
    }

    /// Bytes submitted for `token` that have not yet reached the
    /// transport.
    pub fn pending_out(&self, token: Token) -> usize {
        self.get(token).map_or(0, |c| c.lock().pending_out())
    }

    /// Caps how many bytes may sit in one connection's output buffer.
    /// The blocking write path had natural backpressure (the socket
    /// buffer stalled the writer); the non-blocking path replaces it
    /// with this explicit bound: a submission that would exceed it
    /// fails and the connection is removed, so a peer that never reads
    /// cannot grow server memory without bound.
    pub fn set_max_pending_out(&self, bytes: usize) {
        self.max_pending_out.store(bytes, Ordering::Relaxed);
    }

    /// Caps live connections. Past the cap the acceptor still calls
    /// `accept` (clearing the kernel backlog) but closes the socket
    /// immediately, counted in [`DriverCounters::accepts_governed`].
    /// `0` removes the cap.
    pub fn set_max_conns(&self, n: usize) {
        self.max_conns.store(n, Ordering::Relaxed);
    }

    /// Bounds the accept rate (connections/second, token bucket with a
    /// one-second burst allowance). `0` removes the bound.
    pub fn set_accept_rate(&self, per_sec: u32) {
        self.accept_rate.store(per_sec as u64, Ordering::Relaxed);
    }

    /// Arms idle/slow-loris reaping: a connection that makes no
    /// *application* progress (a parsed request, a completed write
    /// drain, an explicit [`ConnDriver::mark_progress`]) for `timeout`
    /// is removed by the periodic sweep. Raw received bytes do not
    /// count — a peer trickling one header byte per second stays
    /// reapable. `None` disables reaping.
    pub fn set_idle_timeout(&self, timeout: Option<Duration>) {
        let ms = timeout.map_or(0, |d| d.as_millis() as u64);
        self.idle_timeout_ms.store(ms, Ordering::Relaxed);
    }

    /// Milliseconds since driver construction — the clock `progress`
    /// stamps are taken against.
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Records application progress on a connection (protocol parsers
    /// call this when a complete request has been read), deferring the
    /// idle sweep's deadline.
    pub fn mark_progress(&self, token: Token) {
        let now = self.now_ms();
        if let Some(slot) = self.slot_arc(token) {
            let mut st = slot.lock();
            if st.gen == token_gen(token) && st.conn.is_some() {
                st.progress = now;
            }
        }
    }

    /// Sweeps the slab and removes every connection whose last progress
    /// stamp is older than the configured idle timeout, returning how
    /// many were reaped (also counted in
    /// [`DriverCounters::idle_reaped`]). Connections with writes still
    /// draining (or queued for close-after-flush) are skipped — a slow
    /// *reader* being drained by the reactor is progress in flight, not
    /// idleness. Cold path: one brief per-slot lock per live slot.
    pub fn reap_idle(&self) -> usize {
        let timeout = self.idle_timeout_ms.load(Ordering::Relaxed);
        if timeout == 0 {
            return 0;
        }
        let now = self.now_ms();
        let cutoff = now.saturating_sub(timeout);
        let slots: Vec<Arc<ConnSlot>> = self.slots.read().clone();
        let mut reaped = 0usize;
        for (idx, slot) in slots.iter().enumerate() {
            let (token, fd) = {
                let st = slot.lock();
                if st.conn.is_none()
                    || st.submissions > 0
                    || st.close_after
                    || st.progress >= cutoff
                {
                    continue;
                }
                #[cfg(unix)]
                let fd = st.fd;
                #[cfg(not(unix))]
                let fd = ();
                (make_token(idx as u32, st.gen), fd)
            };
            // The slot lock is re-taken (and the generation re-checked)
            // inside `remove`, so a racing removal/reuse is benign.
            if let Some(conn) = self.remove(token) {
                // Sever at the OS level while we still hold the
                // returned handle (the fd cannot have been reused): a
                // worker parked in a blocking read on this connection
                // — the slow-loris case — observes EOF and returns
                // instead of occupying the pool forever.
                #[cfg(unix)]
                if let Some(fd) = fd {
                    unsafe {
                        shutdown(fd, SHUT_RDWR);
                    }
                }
                #[cfg(not(unix))]
                let _ = fd;
                drop(conn);
                reaped += 1;
            }
        }
        if reaped > 0 {
            self.counters
                .idle_reaped
                .fetch_add(reaped as u64, Ordering::Relaxed);
        }
        reaped
    }

    /// Rate-limited [`ConnDriver::reap_idle`]: runs the sweep only when
    /// the deadline-derived interval has elapsed, CAS-deduplicated so
    /// concurrent callers (the reactor tick and the acceptor loop) do
    /// at most one sweep per interval between them.
    fn maybe_reap(&self) {
        let timeout = self.idle_timeout_ms.load(Ordering::Relaxed);
        if timeout == 0 {
            return;
        }
        let interval = (timeout / 4).clamp(10, 250);
        let now = self.now_ms();
        let due = self.reap_next_due.load(Ordering::Relaxed);
        if now < due {
            return;
        }
        if self
            .reap_next_due
            .compare_exchange(due, now + interval, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            self.reap_idle();
        }
    }

    /// Checks out a recycled payload buffer. Serialize a response into
    /// it and hand it back through [`ConnDriver::submit_write_buf`]; the
    /// pool bounds how many (and how large) buffers stay resident.
    pub fn take_write_buf(&self) -> Vec<u8> {
        self.write_bufs.take()
    }

    /// Like [`ConnDriver::submit_write`], but recycles the payload
    /// buffer into the driver's pool once the transport has taken (or
    /// buffered) the bytes — `enqueue_write` copies only the unwritten
    /// tail, so the buffer is reusable the moment the submit returns.
    pub fn submit_write_buf(self: &Arc<Self>, token: Token, buf: Vec<u8>) -> bool {
        let ok = self.submit_write(token, &buf);
        self.write_bufs.put(buf);
        ok
    }

    /// Takes the connection's read scratch buffer (empty on first use).
    /// Request parsers reuse it across every request on the connection;
    /// return it with [`ConnDriver::put_read_buf`].
    pub fn take_read_buf(&self, token: Token) -> Vec<u8> {
        match self.slot_arc(token) {
            Some(slot) => {
                let mut st = slot.lock();
                if st.gen == token_gen(token) {
                    std::mem::take(&mut st.scratch)
                } else {
                    Vec::new()
                }
            }
            None => Vec::new(),
        }
    }

    /// Returns a read scratch buffer to its connection slot (dropped if
    /// the connection is gone or the buffer grew past 256 KiB).
    pub fn put_read_buf(&self, token: Token, buf: Vec<u8>) {
        if buf.capacity() > 256 * 1024 {
            return;
        }
        if let Some(slot) = self.slot_arc(token) {
            let mut st = slot.lock();
            if st.gen == token_gen(token) && st.conn.is_some() {
                st.scratch = buf;
            }
        }
    }

    /// Queues `bytes` for transmission on `token` without blocking.
    ///
    /// Returns `false` when the connection is unknown. Otherwise exactly
    /// one [`DriverEvent::WriteDone`] or [`DriverEvent::WriteFailed`]
    /// per call is (eventually) emitted, in FIFO submission order per
    /// connection; the bytes themselves are transmitted in submission
    /// order. On failure — including a buffer overflow past
    /// [`ConnDriver::set_max_pending_out`] — the connection is removed
    /// (which fails any earlier still-pending submissions too).
    pub fn submit_write(self: &Arc<Self>, token: Token, bytes: &[u8]) -> bool {
        self.submit_with(token, bytes.len(), |conn| conn.enqueue_write(bytes))
    }

    /// Seals an encoded buffer (typically from
    /// [`ConnDriver::take_write_buf`]) into a refcounted
    /// [`SharedPayload`] backed by the driver's pool: submit it to any
    /// number of connections via [`ConnDriver::submit_write_shared`];
    /// the buffer recycles exactly once, when the last connection
    /// releases it.
    pub fn seal_write_buf(&self, buf: Vec<u8>) -> SharedPayload {
        self.write_bufs.seal(buf)
    }

    /// Like [`ConnDriver::submit_write`], but submits a refcounted
    /// payload without copying: a connection that cannot take the bytes
    /// immediately buffers a reference in its segment-queue output
    /// buffer, so one encode fans out to N subscribers with a
    /// per-publish payload-copy count of 1. Completion-event and
    /// slow-consumer-eviction semantics are identical to
    /// `submit_write`.
    pub fn submit_write_shared(self: &Arc<Self>, token: Token, payload: &SharedPayload) -> bool {
        self.counters.writes_shared.fetch_add(1, Ordering::Relaxed);
        self.submit_with(token, payload.len(), |conn| {
            conn.enqueue_write_shared(payload)
        })
    }

    /// Common body of the submit paths: slot/generation validation, the
    /// output-buffer cap (slow-consumer eviction), the enqueue itself,
    /// and pending-submission bookkeeping with drain arming.
    fn submit_with(
        self: &Arc<Self>,
        token: Token,
        len: usize,
        enqueue: impl FnOnce(&mut Box<dyn Conn>) -> std::io::Result<WriteProgress>,
    ) -> bool {
        let Some(slot) = self.slot_arc(token) else {
            return false;
        };
        let shared = {
            let st = slot.lock();
            if st.gen != token_gen(token) {
                return false;
            }
            match &st.conn {
                Some(c) => c.clone(),
                None => return false,
            }
        };
        self.counters
            .writes_submitted
            .fetch_add(1, Ordering::Relaxed);
        // The connection lock is held across the enqueue *and* the
        // bookkeeping below, so a reactor drain completing concurrently
        // cannot retire this submission before its bytes are buffered.
        let mut conn = shared.lock();
        let cap = self.max_pending_out.load(Ordering::Relaxed);
        let already = conn.pending_out();
        if already.saturating_add(len) > cap {
            drop(conn);
            self.counters
                .slow_consumer_evicted
                .fetch_add(1, Ordering::Relaxed);
            self.finish_writes(token, 1, false);
            return true;
        }
        match enqueue(&mut conn) {
            Ok(WriteProgress::Complete) => {
                self.finish_writes(token, 1, true);
                true
            }
            Ok(WriteProgress::Pending) => {
                self.counters
                    .write_would_block
                    .fetch_add(1, Ordering::Relaxed);
                if already > 0 {
                    // This submission queued *behind* bytes the peer has
                    // not yet taken — backpressure an operator can see
                    // before the eviction cliff at `max_pending_out`.
                    self.counters
                        .writes_deferred
                        .fetch_add(1, Ordering::Relaxed);
                }
                // Record the pending submission under the slot lock; a
                // concurrent `remove` either sees it (and fails it) or
                // already emptied the slot (we fail it ourselves).
                let first_pending = {
                    let mut st = slot.lock();
                    if st.gen == token_gen(token) && st.conn.is_some() {
                        st.submissions += 1;
                        Some(st.submissions == 1)
                    } else {
                        None
                    }
                };
                match first_pending {
                    None => {
                        drop(conn);
                        self.finish_writes(token, 1, false);
                    }
                    Some(first) => {
                        if first {
                            self.arm_drain(&mut conn, &shared, token);
                        }
                        drop(conn);
                        // A concurrent `remove` between the bookkeeping
                        // and the watch registration above could not see
                        // the watch; re-validate and clean up ourselves.
                        if self.get(token).is_none() {
                            #[cfg(unix)]
                            self.reactor.deregister(token);
                            self.finish_writes(token, 0, false);
                        }
                    }
                }
                true
            }
            Err(_) => {
                drop(conn);
                self.finish_writes(token, 1, false);
                true
            }
        }
    }

    /// Arms the drain path for a connection whose output buffer just
    /// became non-empty: a `POLLOUT` reactor watch for fd-backed
    /// transports, a helper thread otherwise (the shaped in-memory
    /// transport, whose "transmission time" sleep must not run on a
    /// dispatcher shard). Called with the connection lock held.
    fn arm_drain(
        self: &Arc<Self>,
        conn: &mut parking_lot::MutexGuard<'_, Box<dyn Conn>>,
        shared: &SharedConn,
        token: Token,
    ) {
        #[cfg(unix)]
        if let Some(fd) = conn.raw_fd() {
            let this = Arc::downgrade(self);
            let drain_conn = shared.clone();
            self.reactor.register_write(
                fd,
                token,
                Box::new(move |call| {
                    use crate::reactor::{DrainCall, DrainResult};
                    let Some(driver) = this.upgrade() else {
                        return DrainResult::Failed;
                    };
                    if matches!(call, DrainCall::Abort) {
                        driver.finish_writes(token, 0, false);
                        return DrainResult::Failed;
                    }
                    // Never park the reactor thread on a connection
                    // lock (a flow may hold it across a blocking
                    // read): report Busy so the reactor re-offers the
                    // drain after a short park instead of spinning on
                    // the level-triggered POLLOUT.
                    let Some(mut conn) = drain_conn.try_lock() else {
                        return DrainResult::Busy;
                    };
                    match conn.drain_out() {
                        Ok(WriteProgress::Complete) => {
                            driver.finish_writes(token, 0, true);
                            DrainResult::Complete
                        }
                        Ok(WriteProgress::Pending) => {
                            driver
                                .counters
                                .write_would_block
                                .fetch_add(1, Ordering::Relaxed);
                            DrainResult::Pending
                        }
                        Err(_) => {
                            driver.finish_writes(token, 0, false);
                            DrainResult::Failed
                        }
                    }
                }),
            );
            return;
        }
        let _ = conn;
        self.queue_helper_drain(shared.clone(), token);
    }

    /// Retires `extra` submissions plus every submission tracked for
    /// `token` (the whole buffer drained, or the whole connection
    /// failed), emitting one completion event per submission. Callers
    /// hold the connection lock, which orders completions with enqueues.
    fn finish_writes(&self, token: Token, extra: u64, ok: bool) {
        let now = self.now_ms();
        let (n, close_after) = match self.slot_arc(token) {
            Some(slot) => {
                let mut st = slot.lock();
                if st.gen == token_gen(token) {
                    let n = st.submissions;
                    st.submissions = 0;
                    let ca = st.close_after;
                    st.close_after = false;
                    if ok {
                        // A completed drain is application progress: the
                        // idle sweep must not reap a connection whose
                        // response just left the buffer.
                        st.progress = now;
                    }
                    (n + extra, ca)
                } else {
                    (extra, false)
                }
            }
            None => (extra, false),
        };
        let (event, counter): (fn(Token) -> DriverEvent, _) = if ok {
            (DriverEvent::WriteDone, &self.counters.writes_drained)
        } else {
            (DriverEvent::WriteFailed, &self.counters.writes_failed)
        };
        counter.fetch_add(n, Ordering::Relaxed);
        for _ in 0..n {
            self.send_one(event(token));
        }
        if close_after || !ok {
            self.remove(token);
        }
    }

    /// Drain path for transports with a pending buffer but no raw fd
    /// (the shaped in-memory transport): one persistent
    /// `flux-net-drain` thread services a queue of connections,
    /// absorbing the shaper's transmission-time sleeps — the write-side
    /// analogue of the paper's select-simulation thread. Draining is
    /// round-robin chunk by chunk (a connection with more buffered
    /// bytes re-queues itself), which matches the serial link the
    /// shaper models while keeping any one connection from starving the
    /// rest.
    fn queue_helper_drain(self: &Arc<Self>, shared: SharedConn, token: Token) {
        let tx = {
            let mut guard = self.drain_tx.lock();
            if guard.is_none() {
                let (tx, rx) = unbounded::<(Token, SharedConn)>();
                *guard = Some(tx);
                let this = self.clone();
                self.spawn_tracked("flux-net-drain", move || this.drain_loop(rx));
            }
            guard.as_ref().expect("just installed").clone()
        };
        let _ = tx.send((token, shared));
    }

    /// The persistent drain thread's main loop.
    fn drain_loop(self: Arc<Self>, rx: Receiver<(Token, SharedConn)>) {
        loop {
            if self.stopping.load(Ordering::Relaxed) {
                return;
            }
            let (token, shared) = match rx.recv_timeout(Duration::from_millis(100)) {
                Ok(item) => item,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return,
            };
            if self.get(token).is_none() {
                // Removed while queued: submissions already failed.
                continue;
            }
            // The lock is held across drain_out *and* the completion
            // bookkeeping: a submission enqueued concurrently either
            // lands before the drain (its bytes go out now) or after
            // the finish (it creates a fresh write state and re-queues
            // the token) — never in between, where it would be retired
            // with its bytes still buffered.
            let mut conn = shared.lock();
            match conn.drain_out() {
                Ok(WriteProgress::Complete) => self.finish_writes(token, 0, true),
                Ok(WriteProgress::Pending) => {
                    // One chunk transmitted; take the next turn after
                    // every other waiting connection.
                    drop(conn);
                    let guard = self.drain_tx.lock();
                    if let Some(tx) = guard.as_ref() {
                        let _ = tx.send((token, shared));
                    }
                    continue;
                }
                Err(_) => self.finish_writes(token, 0, false),
            }
        }
    }

    /// Arms a one-shot readability watch: when the connection has data
    /// (or EOF), a [`DriverEvent::Readable`] is queued. In-memory
    /// transports install a watch callback; fd-backed transports (TCP)
    /// are registered with the shared reactor thread. Only a
    /// transport with neither capability falls back to a helper thread.
    pub fn arm(self: &Arc<Self>, token: Token) {
        let Some(shared) = self.get(token) else {
            return;
        };
        let tx = self.tx.clone();
        let watched = {
            let conn = shared.lock();
            // Coalescing: callbacks append to the shared watch buffer
            // and send one `Coalesced` marker per empty→non-empty
            // transition. The buffer lock serializes racing callbacks,
            // so the transition check is exact: a callback that sees a
            // non-empty buffer is guaranteed its event rides on a
            // marker that is still in flight (the consumer drains the
            // buffer wholesale when it unpacks the marker). The closure
            // captures the buffer/counter Arcs, never the driver —
            // avoiding a driver → slot → conn → closure → driver cycle.
            conn.set_read_watch(Box::new({
                let tx = tx.clone();
                let batch = self.watch_batch.clone();
                let counters = self.counters.clone();
                move || {
                    let was_empty = {
                        let mut b = batch.lock();
                        let was_empty = b.is_empty();
                        b.push(DriverEvent::Readable(token));
                        was_empty
                    };
                    if was_empty {
                        let _ = tx.send(Delivery::Coalesced);
                    } else {
                        counters.watch_coalesced.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }))
        };
        if watched {
            return;
        }
        #[cfg(unix)]
        {
            let fd = shared.lock().raw_fd();
            if let Some(fd) = fd {
                self.reactor.register(fd, token);
                // A concurrent `remove` between our `get` and the
                // registration could not see the watch (and `register`
                // would have resurrected the liveness entry); re-validate
                // so a removed token never stays armed.
                if self.get(token).is_none() {
                    self.reactor.deregister(token);
                }
                return;
            }
        }
        self.arm_with_helper_thread(shared, token, tx);
    }

    /// Last-resort watch for transports with neither watch callbacks nor
    /// a raw fd: one helper thread performs the wait (the paper's
    /// select-simulation thread). No in-tree transport takes this path.
    fn arm_with_helper_thread(
        self: &Arc<Self>,
        shared: SharedConn,
        token: Token,
        tx: Sender<Delivery>,
    ) {
        let this = self.clone();
        let clone = {
            let conn = shared.lock();
            conn.try_clone()
        };
        self.spawn_tracked("flux-net-watch", move || {
            let Ok(conn) = clone else {
                let _ = tx.send(Delivery::One(DriverEvent::Readable(token)));
                return;
            };
            loop {
                if this.stopping.load(Ordering::Relaxed) {
                    return;
                }
                match conn.wait_readable(Some(Duration::from_millis(100))) {
                    Ok(true) => {
                        let _ = tx.send(Delivery::One(DriverEvent::Readable(token)));
                        return;
                    }
                    Ok(false) => continue,
                    Err(_) => {
                        let _ = tx.send(Delivery::One(DriverEvent::Readable(token)));
                        return;
                    }
                }
            }
        });
    }

    /// Spawns a driver-owned thread whose handle [`ConnDriver::stop`]
    /// will join. Finished handles are pruned on each spawn so the list
    /// stays bounded.
    fn spawn_tracked(&self, name: &str, f: impl FnOnce() + Send + 'static) {
        let handle = std::thread::Builder::new()
            .name(name.into())
            .spawn(f)
            .unwrap_or_else(|e| panic!("spawn {name} thread: {e}"));
        let mut threads = self.threads.lock();
        threads.retain(|h| !h.is_finished());
        threads.push(handle);
    }

    /// Accepts connections from `listener` on a background thread,
    /// registering each and queueing [`DriverEvent::Incoming`].
    ///
    /// Transient accept errors (`EMFILE`, `ECONNABORTED`, a momentarily
    /// exhausted backlog) make the loop back off — briefly at first,
    /// capped at 500 ms, with deterministic per-listener jitter so many
    /// listeners hitting `EMFILE` together don't retry in lockstep —
    /// and retry instead of silently killing the listener for the life
    /// of the server; each retry increments
    /// [`DriverCounters::accept_retries`], and an fd-exhaustion error
    /// (`EMFILE`/`ENFILE`) first runs an idle-reap sweep to reclaim
    /// slots. Errors that mean the listener itself is gone
    /// (`BrokenPipe`, `NotConnected`, `InvalidInput`,
    /// `AddrNotAvailable`) end the loop, since no amount of retrying
    /// brings a dead listener back. The thread also exits when
    /// [`ConnDriver::stop`] is called.
    ///
    /// This loop is also the **accept governor**: past
    /// [`ConnDriver::set_max_conns`] a fresh socket is accepted (so the
    /// kernel backlog keeps draining — the peer sees a prompt close,
    /// not a hung SYN) and dropped, counted in
    /// [`DriverCounters::accepts_governed`]; under
    /// [`ConnDriver::set_accept_rate`] admissions pace themselves
    /// through a token bucket with a one-second burst allowance.
    pub fn spawn_acceptor(self: &Arc<Self>, listener: Box<dyn Listener>) {
        use std::io::ErrorKind;
        let this = self.clone();
        listener.set_accept_timeout(Some(Duration::from_millis(50)));
        #[cfg(unix)]
        {
            // The reactor drives the idle sweep from its wait loop (one
            // cheap check per round, ≤250 ms apart thanks to the
            // backstop timeout); `maybe_reap` CAS-dedupes against the
            // acceptor loop's own calls so the sweep runs once per
            // interval no matter how many drivers poke it.
            let weak = Arc::downgrade(self);
            self.reactor.set_tick(Box::new(move || {
                if let Some(driver) = weak.upgrade() {
                    driver.maybe_reap();
                }
            }));
        }
        self.spawn_tracked("flux-net-accept", move || {
            // Deterministic jitter seed: the listener allocation address
            // is stable for this loop's lifetime and distinct per
            // listener, so simultaneous EMFILE storms de-synchronize
            // without a PRNG dependency.
            let seed = &*listener as *const dyn Listener as *const () as u64;
            let mut retries: u64 = 0;
            let mut backoff = Duration::from_millis(10);
            // Token bucket: refilled at `accept_rate` tokens/sec, capped
            // at one second's worth (the burst allowance).
            let mut tokens: f64 = 0.0;
            let mut refilled_at = Instant::now();
            loop {
                if this.stopping.load(Ordering::Relaxed) {
                    return;
                }
                this.maybe_reap();
                match listener.accept() {
                    Ok(conn) => {
                        backoff = Duration::from_millis(10);
                        let max = this.max_conns.load(Ordering::Relaxed);
                        if max != 0 && this.conn_count.load(Ordering::Relaxed) >= max {
                            // At the connection cap: close immediately.
                            // Cheaper than registering + reaping, and it
                            // keeps draining the kernel backlog so
                            // waiting peers fail fast instead of timing
                            // out on an un-accepted SYN.
                            drop(conn);
                            this.counters
                                .accepts_governed
                                .fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                        let rate = this.accept_rate.load(Ordering::Relaxed);
                        if rate > 0 {
                            let now = Instant::now();
                            tokens = (tokens
                                + now.duration_since(refilled_at).as_secs_f64() * rate as f64)
                                .min(rate as f64);
                            refilled_at = now;
                            if tokens < 1.0 {
                                // Out of budget: hold the accepted socket
                                // until a token accrues (pacing, not
                                // rejection), counted once as governed.
                                this.counters
                                    .accepts_governed
                                    .fetch_add(1, Ordering::Relaxed);
                                while tokens < 1.0 {
                                    if this.stopping.load(Ordering::Relaxed) {
                                        return;
                                    }
                                    let deficit = (1.0 - tokens) / rate as f64;
                                    std::thread::sleep(
                                        Duration::from_secs_f64(deficit)
                                            .min(Duration::from_millis(5)),
                                    );
                                    let now = Instant::now();
                                    tokens = (tokens
                                        + now.duration_since(refilled_at).as_secs_f64()
                                            * rate as f64)
                                        .min(rate as f64);
                                    refilled_at = now;
                                }
                            }
                            tokens -= 1.0;
                        }
                        this.counters
                            .accepts_admitted
                            .fetch_add(1, Ordering::Relaxed);
                        let token = this.add(conn);
                        this.send_one(DriverEvent::Incoming(token));
                    }
                    Err(e) if e.kind() == ErrorKind::TimedOut => continue,
                    Err(e)
                        if matches!(
                            e.kind(),
                            ErrorKind::BrokenPipe
                                | ErrorKind::NotConnected
                                | ErrorKind::InvalidInput
                                | ErrorKind::AddrNotAvailable
                        ) =>
                    {
                        return; // the listener itself is dead
                    }
                    Err(e) => {
                        this.counters.accept_retries.fetch_add(1, Ordering::Relaxed);
                        if matches!(e.raw_os_error(), Some(23) | Some(24)) {
                            // ENFILE/EMFILE: the process (or host) is out
                            // of descriptors — reclaim idle ones *now*
                            // rather than waiting out the sweep interval.
                            this.reap_idle();
                        }
                        // Deterministic jitter in [0, backoff/2): a
                        // splitmix-style hash of (listener, retry#), so
                        // each listener walks its own retry schedule.
                        retries = retries.wrapping_add(1);
                        let h = (seed ^ retries).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                        let half_us = (backoff.as_micros() as u64 / 2).max(1);
                        let jitter = Duration::from_micros((h >> 33) % half_us);
                        // Sleep in short slices so stop() stays prompt
                        // even at the backoff cap.
                        let deadline = Instant::now() + backoff + jitter;
                        while Instant::now() < deadline {
                            if this.stopping.load(Ordering::Relaxed) {
                                return;
                            }
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        backoff = (backoff * 2).min(Duration::from_millis(500));
                    }
                }
            }
        });
    }

    /// Moves one delivery (plus anything else already queued) from the
    /// channel into `pending`. Called with the pending lock held.
    fn refill(&self, pending: &mut VecDeque<DriverEvent>, timeout: Duration) {
        match self.rx.recv_timeout(timeout) {
            Ok(d) => self.unpack(d, pending),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => return,
        }
        // Greedy: pull whatever else the producers already queued so a
        // burst is unpacked once, not one channel op per event. Bounded
        // so a firehose producer cannot pin the consumer here.
        while pending.len() < 4096 {
            match self.rx.try_recv() {
                Ok(d) => self.unpack(d, pending),
                Err(_) => break,
            }
        }
    }

    fn unpack(&self, d: Delivery, pending: &mut VecDeque<DriverEvent>) {
        match d {
            Delivery::One(ev) => pending.push_back(ev),
            Delivery::Batch(mut batch) => {
                pending.extend(batch.drain(..));
                self.event_batches.put(batch);
            }
            Delivery::Coalesced => {
                // Drain everything the watch callbacks accumulated
                // since the marker was sent — including events that
                // piggybacked after it.
                pending.extend(self.watch_batch.lock().drain(..));
            }
        }
    }

    /// Next readiness event, or `None` on timeout.
    pub fn next_event(&self, timeout: Duration) -> Option<DriverEvent> {
        let mut pending = self.pending.lock();
        if let Some(ev) = pending.pop_front() {
            return Some(ev);
        }
        self.refill(&mut pending, timeout);
        pending.pop_front()
    }

    /// Appends up to `max` ready events to `out`, blocking up to
    /// `timeout` for the first one; returns how many were delivered.
    /// This is the batched consumer path: one call drains a whole
    /// reactor round (plus any accepts/completions queued around it),
    /// so batch-aware sources can submit the lot to the runtime in one
    /// shard-queue append.
    pub fn next_events(&self, out: &mut Vec<DriverEvent>, max: usize, timeout: Duration) -> usize {
        let mut pending = self.pending.lock();
        if pending.is_empty() {
            self.refill(&mut pending, timeout);
        }
        let n = pending.len().min(max);
        out.extend(pending.drain(..n));
        n
    }

    /// Injects a synthetic event (used by timer sources).
    pub fn inject(&self, ev: DriverEvent) {
        self.send_one(ev);
    }

    /// Stops and **joins** the acceptor, reactor and watcher threads.
    /// All of them poll the stop flag on bounded timeouts (50–250 ms),
    /// so the join completes promptly; after `stop` returns, no driver
    /// thread survives to fire into a dropped channel.
    ///
    /// Every still-registered connection is then removed: a connection
    /// whose [`ConnDriver::remove_when_flushed`] was pending when the
    /// reactor stopped (its drain can no longer complete) must not
    /// outlive the driver holding a buffered response — its pending
    /// submissions are failed and its output buffer dropped, so no
    /// token stays registered after `stop` returns.
    pub fn stop(&self) {
        self.stopping.store(true, Ordering::Relaxed);
        #[cfg(unix)]
        self.reactor.stop();
        let handles = std::mem::take(&mut *self.threads.lock());
        let me = std::thread::current().id();
        for h in handles {
            if h.thread().id() != me {
                let _ = h.join();
            }
        }
        let tokens: Vec<Token> = {
            let slots = self.slots.read();
            slots
                .iter()
                .enumerate()
                .filter_map(|(i, slot)| {
                    let st = slot.lock();
                    st.conn.as_ref().map(|_| make_token(i as u32, st.gen))
                })
                .collect()
        };
        for token in tokens {
            drop(self.remove(token));
        }
    }

    /// The number of readiness events delivered by the reactor
    /// (fd-backed transports only; watch-based events are not counted).
    #[cfg(unix)]
    pub fn reactor_events(&self) -> u64 {
        self.reactor.events_delivered()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemNet;
    use std::io::{Read, Write};

    #[test]
    fn incoming_and_readable_events() {
        let net = MemNet::new();
        let listener = net.listen("srv").unwrap();
        let driver = Arc::new(ConnDriver::new());
        driver.spawn_acceptor(Box::new(listener));

        let mut client = net.connect("srv").unwrap();
        let ev = driver.next_event(Duration::from_secs(2)).unwrap();
        let DriverEvent::Incoming(token) = ev else {
            panic!("expected Incoming, got {ev:?}");
        };
        driver.arm(token);
        assert!(
            driver.next_event(Duration::from_millis(50)).is_none(),
            "no data yet"
        );
        client.write_all(b"hello").unwrap();
        assert_eq!(
            driver.next_event(Duration::from_secs(2)),
            Some(DriverEvent::Readable(token))
        );
        driver.stop();
    }

    #[test]
    fn arm_fires_on_eof() {
        let net = MemNet::new();
        let listener = net.listen("srv").unwrap();
        let driver = Arc::new(ConnDriver::new());
        driver.spawn_acceptor(Box::new(listener));
        let client = net.connect("srv").unwrap();
        let DriverEvent::Incoming(token) = driver.next_event(Duration::from_secs(2)).unwrap()
        else {
            panic!()
        };
        driver.arm(token);
        drop(client);
        assert_eq!(
            driver.next_event(Duration::from_secs(2)),
            Some(DriverEvent::Readable(token))
        );
        driver.stop();
    }

    /// A burst of mem-transport watch callbacks with an idle consumer
    /// coalesces into one channel marker: every event is still
    /// delivered, and all but the first are counted as coalesced.
    #[test]
    fn mem_watch_burst_coalesces_into_one_marker() {
        const CONNS: usize = 16;
        let net = MemNet::new();
        let listener = net.listen("srv").unwrap();
        let driver = Arc::new(ConnDriver::new());
        driver.spawn_acceptor(Box::new(listener));

        let mut clients = Vec::new();
        let mut tokens = Vec::new();
        for _ in 0..CONNS {
            clients.push(net.connect("srv").unwrap());
            let DriverEvent::Incoming(token) = driver.next_event(Duration::from_secs(2)).unwrap()
            else {
                panic!("expected Incoming");
            };
            driver.arm(token);
            tokens.push(token);
        }
        // Consumer idle: every write fires its watch callback from this
        // thread, back to back — only the first transition should reach
        // the channel.
        for c in &mut clients {
            c.write_all(b"x").unwrap();
        }
        let mut got = Vec::new();
        while got.len() < CONNS {
            let n = driver.next_events(&mut got, CONNS, Duration::from_secs(2));
            assert!(n > 0, "missing readable events: {}/{CONNS}", got.len());
        }
        let mut readable: Vec<Token> = got
            .iter()
            .map(|ev| match ev {
                DriverEvent::Readable(t) => *t,
                other => panic!("expected Readable, got {other:?}"),
            })
            .collect();
        readable.sort_unstable();
        tokens.sort_unstable();
        assert_eq!(readable, tokens, "every armed conn delivered exactly once");
        assert_eq!(
            driver.counters().watch_coalesced.load(Ordering::Relaxed),
            CONNS as u64 - 1,
            "all but the transition send piggybacked"
        );
        driver.stop();
    }

    #[test]
    fn remove_drops_connection() {
        let driver = Arc::new(ConnDriver::new());
        let (a, _b) = crate::mem::MemConn::pair();
        let t = driver.add(Box::new(a));
        assert_eq!(driver.len(), 1);
        assert!(driver.remove(t).is_some());
        assert!(driver.is_empty());
        assert!(driver.get(t).is_none());
        assert!(driver.remove(t).is_none(), "double remove is a no-op");
    }

    /// The slab reuses slots, but never tokens: a removed token's
    /// generation can't match the slot's next tenant.
    #[test]
    fn slot_reuse_never_aliases_tokens() {
        let driver = Arc::new(ConnDriver::new());
        let mut seen = std::collections::HashSet::new();
        for round in 0..100 {
            let (a, _b) = crate::mem::MemConn::pair();
            let t = driver.add(Box::new(a));
            assert!(seen.insert(t), "token {t} reissued (round {round})");
            assert_eq!(token_slot(t), 0, "single live conn reuses slot 0");
            assert!(driver.get(t).is_some());
            driver.remove(t);
            assert!(driver.get(t).is_none(), "stale token resolves to nothing");
        }
        // Every retired token still resolves to nothing.
        let (a, _b) = crate::mem::MemConn::pair();
        let live = driver.add(Box::new(a));
        for &t in &seen {
            assert!(driver.get(t).is_none(), "stale {t} must not see {live}");
        }
        assert!(driver.get(live).is_some());
    }

    /// Model check of the slab table: random interleavings of
    /// add/remove/get agree with a HashMap reference, stale gets
    /// included (the generation check subsumes the old `live` map).
    mod slab_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            #[test]
            fn slab_matches_model_under_random_ops(seed in 0u64..1_000_000) {
                let mut rng = proptest::test_rng(&format!("slab-{seed}"));
                let driver = Arc::new(ConnDriver::new());
                let mut model: std::collections::HashMap<Token, bool> =
                    std::collections::HashMap::new(); // token -> live
                let mut live: Vec<Token> = Vec::new();
                for _ in 0..200 {
                    match rng.next_u64() % 3 {
                        0 => {
                            let (a, _b) = crate::mem::MemConn::pair();
                            let t = driver.add(Box::new(a));
                            prop_assert!(model.insert(t, true).is_none(), "token reissued");
                            live.push(t);
                        }
                        1 if !live.is_empty() => {
                            let i = (rng.next_u64() as usize) % live.len();
                            let t = live.swap_remove(i);
                            prop_assert!(driver.remove(t).is_some());
                            model.insert(t, false);
                        }
                        _ => {
                            for (&t, &alive) in model.iter() {
                                prop_assert_eq!(driver.get(t).is_some(), alive,
                                    "get({}) disagrees with model", t);
                            }
                        }
                    }
                }
                prop_assert_eq!(driver.len(), live.len());
            }

            /// Conservation under random admit/progress/reap/remove
            /// interleavings: every added connection is accounted for as
            /// explicitly removed, idle-reaped, or still live — no slab
            /// slot leaks, no double-reap — and only connections whose
            /// last progress stamp predates the idle window get reaped.
            #[test]
            fn reap_conserves_connections(seed in 0u64..1_000_000) {
                let mut rng = proptest::test_rng(&format!("reap-{seed}"));
                let config = NetConfig {
                    idle_timeout: Some(Duration::from_millis(20)),
                    ..NetConfig::default()
                };
                let driver = Arc::new(ConnDriver::with_config(&config));
                let mut live: std::collections::HashMap<Token, std::time::Instant> =
                    std::collections::HashMap::new(); // token -> last progress
                let (mut added, mut removed, mut reaped) = (0u64, 0u64, 0u64);
                for _ in 0..60 {
                    match rng.next_u64() % 8 {
                        0..=2 => {
                            let (a, _b) = crate::mem::MemConn::pair();
                            let t = driver.add(Box::new(a));
                            prop_assert!(live.insert(t, std::time::Instant::now()).is_none());
                            added += 1;
                        }
                        3 | 4 if !live.is_empty() => {
                            let i = (rng.next_u64() as usize) % live.len();
                            let (&t, _) = live.iter().nth(i).expect("index in range");
                            driver.mark_progress(t);
                            live.insert(t, std::time::Instant::now());
                        }
                        5 if !live.is_empty() => {
                            let i = (rng.next_u64() as usize) % live.len();
                            let t = *live.keys().nth(i).expect("index in range");
                            live.remove(&t);
                            prop_assert!(driver.remove(t).is_some());
                            removed += 1;
                        }
                        6 => {
                            // Let every live connection cross the idle
                            // threshold so the next sweep has prey.
                            std::thread::sleep(Duration::from_millis(25));
                        }
                        _ => {
                            let before: Vec<(Token, std::time::Instant)> =
                                live.iter().map(|(&t, &s)| (t, s)).collect();
                            let n = driver.reap_idle();
                            let mut gone = 0usize;
                            for (t, stamp) in before {
                                if driver.get(t).is_none() {
                                    gone += 1;
                                    live.remove(&t);
                                    prop_assert!(
                                        stamp.elapsed() >= Duration::from_millis(10),
                                        "reaped a connection with recent progress"
                                    );
                                }
                            }
                            prop_assert_eq!(n, gone, "reap count disagrees with the slab");
                            reaped += n as u64;
                        }
                    }
                }
                prop_assert_eq!(driver.len(), live.len(), "slab leaked a slot");
                prop_assert_eq!(added, removed + reaped + live.len() as u64,
                    "connection not conserved");
                prop_assert_eq!(
                    driver.counters().idle_reaped.load(Ordering::Relaxed),
                    reaped
                );
            }
        }
    }

    #[test]
    fn inject_synthetic_events() {
        let driver = ConnDriver::new();
        driver.inject(DriverEvent::Readable(99));
        assert_eq!(
            driver.next_event(Duration::from_millis(10)),
            Some(DriverEvent::Readable(99))
        );
    }

    /// `next_events` drains a burst in one call, preserving order.
    #[test]
    fn next_events_returns_a_batch() {
        let driver = ConnDriver::new();
        for i in 0..5 {
            driver.inject(DriverEvent::Readable(i));
        }
        let mut out = Vec::new();
        let n = driver.next_events(&mut out, 3, Duration::from_millis(50));
        assert_eq!(n, 3, "bounded by max");
        assert_eq!(
            out,
            vec![
                DriverEvent::Readable(0),
                DriverEvent::Readable(1),
                DriverEvent::Readable(2)
            ]
        );
        out.clear();
        let n = driver.next_events(&mut out, 16, Duration::from_millis(50));
        assert_eq!(n, 2, "remainder of the burst");
        out.clear();
        assert_eq!(
            driver.next_events(&mut out, 16, Duration::from_millis(20)),
            0,
            "timeout on empty queue"
        );
    }

    #[test]
    fn tcp_readiness_via_reactor() {
        let acceptor = crate::tcp::TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let driver = Arc::new(ConnDriver::new());
        driver.spawn_acceptor(Box::new(acceptor));
        let mut client = crate::tcp::TcpConn::connect(&addr).unwrap();
        let DriverEvent::Incoming(token) = driver.next_event(Duration::from_secs(2)).unwrap()
        else {
            panic!()
        };
        driver.arm(token);
        client.write_all(b"x").unwrap();
        assert_eq!(
            driver.next_event(Duration::from_secs(2)),
            Some(DriverEvent::Readable(token))
        );
        #[cfg(unix)]
        assert_eq!(
            driver.reactor_events(),
            1,
            "TCP readiness must come from the reactor, not helper threads"
        );
        driver.stop();
    }

    /// Many armed TCP connections are all served by the single reactor
    /// thread — the acceptance criterion for retiring the per-connection
    /// helper threads.
    #[test]
    #[cfg(unix)]
    fn one_reactor_thread_serves_many_tcp_conns() {
        let acceptor = crate::tcp::TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let driver = Arc::new(ConnDriver::new());
        driver.spawn_acceptor(Box::new(acceptor));
        let mut clients = Vec::new();
        let mut tokens = Vec::new();
        for _ in 0..32 {
            clients.push(crate::tcp::TcpConn::connect(&addr).unwrap());
            let DriverEvent::Incoming(token) = driver.next_event(Duration::from_secs(2)).unwrap()
            else {
                panic!()
            };
            driver.arm(token);
            tokens.push(token);
        }
        for c in &mut clients {
            c.write_all(b"!").unwrap();
        }
        let mut seen = std::collections::HashSet::new();
        while seen.len() < 32 {
            match driver.next_event(Duration::from_secs(2)) {
                Some(DriverEvent::Readable(t)) => {
                    seen.insert(t);
                }
                other => panic!("expected Readable, got {other:?}"),
            }
        }
        assert_eq!(seen, tokens.iter().copied().collect());
        assert_eq!(driver.reactor_events(), 32);
        driver.stop();
    }

    /// A synchronous (in-memory) write completes with an immediate
    /// `WriteDone` and the bytes arrive at the peer.
    #[test]
    fn submit_write_mem_completes_synchronously() {
        let net = MemNet::new();
        let listener = net.listen("srv").unwrap();
        let driver = Arc::new(ConnDriver::new());
        driver.spawn_acceptor(Box::new(listener));
        let mut client = net.connect("srv").unwrap();
        let DriverEvent::Incoming(token) = driver.next_event(Duration::from_secs(2)).unwrap()
        else {
            panic!()
        };
        assert!(driver.submit_write(token, b"response"));
        assert_eq!(
            driver.next_event(Duration::from_secs(2)),
            Some(DriverEvent::WriteDone(token))
        );
        let mut buf = [0u8; 8];
        client.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"response");
        assert_eq!(driver.counters().writes_drained.load(Ordering::Relaxed), 1);
        assert_eq!(driver.pending_out(token), 0);
        driver.stop();
    }

    /// The pooled submit path delivers the same bytes and recycles the
    /// payload buffer for the next response.
    #[test]
    fn submit_write_buf_recycles_the_payload() {
        let net = MemNet::new();
        let listener = net.listen("srv").unwrap();
        let driver = Arc::new(ConnDriver::new());
        driver.spawn_acceptor(Box::new(listener));
        let mut client = net.connect("srv").unwrap();
        let DriverEvent::Incoming(token) = driver.next_event(Duration::from_secs(2)).unwrap()
        else {
            panic!()
        };
        let mut buf = driver.take_write_buf();
        buf.extend_from_slice(b"pooled");
        let cap = buf.capacity();
        assert!(driver.submit_write_buf(token, buf));
        let recycled = driver.take_write_buf();
        assert!(recycled.is_empty());
        assert_eq!(recycled.capacity(), cap, "payload buffer was recycled");
        let mut got = [0u8; 6];
        client.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"pooled");
        driver.stop();
    }

    #[test]
    fn submit_write_unknown_token_is_refused() {
        let driver = Arc::new(ConnDriver::new());
        assert!(!driver.submit_write(42, b"x"));
    }

    /// On a shaped (rate-limited) in-memory link, `submit_write` must
    /// return immediately — the shaper's transmission-time sleep runs on
    /// the drain helper, never the submitting thread.
    #[test]
    fn shaped_mem_write_does_not_block_the_submitter() {
        let net = MemNet::new();
        net.set_link_capacity(Some(1_000_000.0)); // 1 MB/s, 64 KiB burst
        let listener = net.listen("srv").unwrap();
        let driver = Arc::new(ConnDriver::new());
        driver.spawn_acceptor(Box::new(listener));
        let mut client = net.connect("srv").unwrap();
        let DriverEvent::Incoming(token) = driver.next_event(Duration::from_secs(2)).unwrap()
        else {
            panic!()
        };
        // 320 KiB past the burst at 1 MB/s ≈ 250+ ms of shaper sleep.
        let payload = vec![7u8; 384 * 1024];
        let t0 = std::time::Instant::now();
        assert!(driver.submit_write(token, &payload));
        assert!(
            t0.elapsed() < Duration::from_millis(100),
            "submit must not absorb the shaped transmission time \
             (took {:?})",
            t0.elapsed()
        );
        assert_eq!(
            driver.next_event(Duration::from_secs(10)),
            Some(DriverEvent::WriteDone(token))
        );
        let mut got = 0usize;
        let mut buf = vec![0u8; 64 * 1024];
        while got < payload.len() {
            let n = client.read(&mut buf).unwrap();
            assert!(n > 0);
            got += n;
        }
        driver.stop();
    }

    /// A submission that would overflow the per-connection output bound
    /// fails (`WriteFailed`) and removes the connection instead of
    /// growing server memory without limit.
    #[test]
    #[cfg(unix)]
    fn overflowing_pending_out_fails_the_write() {
        let (driver, _client, token) = tcp_pair();
        driver.set_max_pending_out(256 * 1024);
        assert!(driver.submit_write(token, &vec![0u8; 512 * 1024]));
        assert_eq!(
            driver.next_event(Duration::from_secs(2)),
            Some(DriverEvent::WriteFailed(token))
        );
        assert!(driver.get(token).is_none(), "overflowing conn removed");
        assert_eq!(driver.counters().writes_failed.load(Ordering::Relaxed), 1);
        driver.stop();
    }

    /// `remove` fails still-pending submissions so every `submit_write`
    /// gets its completion event.
    #[test]
    #[cfg(unix)]
    fn remove_fails_pending_submissions() {
        let (driver, _client, token) = tcp_pair();
        // Large enough to stay partially buffered (client never reads).
        assert!(driver.submit_write(token, &vec![1u8; 8 * 1024 * 1024]));
        assert!(driver.pending_out(token) > 0);
        driver.remove(token);
        assert_eq!(
            driver.next_event(Duration::from_secs(2)),
            Some(DriverEvent::WriteFailed(token))
        );
        driver.stop();
    }

    /// The acceptor must survive transient accept errors (the seed
    /// version returned, killing the listener for the life of the
    /// server on a single `EMFILE`/`ECONNABORTED`).
    #[test]
    fn acceptor_survives_transient_accept_errors() {
        /// Fails the first `fail` accepts, then delegates.
        struct FlakyListener {
            inner: Box<dyn Listener>,
            remaining: AtomicU64,
        }
        impl Listener for FlakyListener {
            fn accept(&self) -> std::io::Result<Box<dyn Conn>> {
                if self.remaining.load(Ordering::Relaxed) > 0 {
                    self.remaining.fetch_sub(1, Ordering::Relaxed);
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::ConnectionAborted,
                        "transient accept failure",
                    ));
                }
                self.inner.accept()
            }
            fn set_accept_timeout(&self, d: Option<Duration>) {
                self.inner.set_accept_timeout(d);
            }
            fn local_addr(&self) -> String {
                self.inner.local_addr()
            }
        }

        let net = MemNet::new();
        let listener = net.listen("srv").unwrap();
        let driver = Arc::new(ConnDriver::new());
        driver.spawn_acceptor(Box::new(FlakyListener {
            inner: Box::new(listener),
            remaining: AtomicU64::new(3),
        }));
        // The seed acceptor would be dead by now; the fixed one retries
        // through the injected errors and still accepts.
        let _client = net.connect("srv").unwrap();
        let ev = driver.next_event(Duration::from_secs(5));
        assert!(
            matches!(ev, Some(DriverEvent::Incoming(_))),
            "acceptor must survive transient errors, got {ev:?}"
        );
        assert!(
            driver.counters().accept_retries.load(Ordering::Relaxed) >= 3,
            "retries surfaced in counters"
        );
        driver.stop();
    }

    /// Accepts one TCP connection through the driver and returns
    /// `(driver, client, token)`.
    #[cfg(unix)]
    fn tcp_pair() -> (Arc<ConnDriver>, crate::tcp::TcpConn, Token) {
        let acceptor = crate::tcp::TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let driver = Arc::new(ConnDriver::new());
        driver.spawn_acceptor(Box::new(acceptor));
        let client = crate::tcp::TcpConn::connect(&addr).unwrap();
        let DriverEvent::Incoming(token) = driver.next_event(Duration::from_secs(2)).unwrap()
        else {
            panic!()
        };
        (driver, client, token)
    }

    /// A write larger than the kernel socket buffers completes via the
    /// reactor's POLLOUT drain once the (initially slow) client reads.
    #[test]
    #[cfg(unix)]
    fn partial_tcp_write_completes_via_pollout() {
        let (driver, mut client, token) = tcp_pair();
        // Big enough to overrun loopback socket buffers by a wide margin.
        let payload: Vec<u8> = (0..8 * 1024 * 1024).map(|i| (i % 251) as u8).collect();
        assert!(driver.submit_write(token, &payload));
        assert!(
            driver.pending_out(token) > 0,
            "an 8 MiB write must not complete synchronously"
        );
        assert!(
            driver.next_event(Duration::from_millis(100)).is_none(),
            "no completion while the client reads nothing"
        );
        // Slow reader: the reactor drains in batches as buffer space opens.
        let mut got = Vec::with_capacity(payload.len());
        let mut buf = vec![0u8; 64 * 1024];
        while got.len() < payload.len() {
            let n = client.read(&mut buf).unwrap();
            assert!(n > 0, "EOF before the payload drained");
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(got, payload, "drained bytes match");
        assert_eq!(
            driver.next_event(Duration::from_secs(5)),
            Some(DriverEvent::WriteDone(token))
        );
        let counters = driver.counters();
        assert!(
            counters.write_would_block.load(Ordering::Relaxed) > 0,
            "the drain must have hit WouldBlock at least once"
        );
        assert_eq!(counters.writes_drained.load(Ordering::Relaxed), 1);
        driver.stop();
    }

    /// Two writes submitted while the socket is full drain in FIFO
    /// order, with one WriteDone per submission.
    #[test]
    #[cfg(unix)]
    fn queued_writes_drain_fifo() {
        let (driver, mut client, token) = tcp_pair();
        let first: Vec<u8> = vec![b'a'; 8 * 1024 * 1024];
        let second: Vec<u8> = vec![b'b'; 1024];
        assert!(driver.submit_write(token, &first));
        assert!(driver.submit_write(token, &second));
        let mut got = Vec::new();
        let mut buf = vec![0u8; 64 * 1024];
        while got.len() < first.len() + second.len() {
            let n = client.read(&mut buf).unwrap();
            assert!(n > 0);
            got.extend_from_slice(&buf[..n]);
        }
        assert!(got[..first.len()].iter().all(|&b| b == b'a'), "FIFO order");
        assert!(got[first.len()..].iter().all(|&b| b == b'b'), "FIFO order");
        let mut done = 0;
        while done < 2 {
            match driver.next_event(Duration::from_secs(5)) {
                Some(DriverEvent::WriteDone(t)) => {
                    assert_eq!(t, token);
                    done += 1;
                }
                other => panic!("expected WriteDone, got {other:?}"),
            }
        }
        driver.stop();
    }

    /// `remove_when_flushed` keeps the connection open until the buffer
    /// drains, then closes it — the client sees the full payload
    /// followed by EOF.
    #[test]
    #[cfg(unix)]
    fn remove_when_flushed_defers_close_until_drained() {
        let (driver, mut client, token) = tcp_pair();
        let payload: Vec<u8> = vec![b'z'; 8 * 1024 * 1024];
        assert!(driver.submit_write(token, &payload));
        driver.remove_when_flushed(token);
        assert!(
            driver.get(token).is_some(),
            "close must be deferred while bytes are buffered"
        );
        let mut got = 0usize;
        let mut buf = vec![0u8; 64 * 1024];
        loop {
            let n = client.read(&mut buf).unwrap();
            if n == 0 {
                break; // EOF only after the whole payload
            }
            assert!(buf[..n].iter().all(|&b| b == b'z'));
            got += n;
        }
        assert_eq!(got, payload.len(), "every byte drained before close");
        assert_eq!(
            driver.next_event(Duration::from_secs(5)),
            Some(DriverEvent::WriteDone(token))
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while driver.get(token).is_some() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(driver.get(token).is_none(), "removed after the drain");
        driver.stop();
    }

    /// The fd-reuse race end-to-end: remove a connection (closing its
    /// fd) and immediately accept a new one that reuses it. The stale
    /// token must never fire.
    #[test]
    #[cfg(unix)]
    fn removed_token_never_fires_after_fd_reuse() {
        let acceptor = crate::tcp::TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let driver = Arc::new(ConnDriver::new());
        driver.spawn_acceptor(Box::new(acceptor));
        let mut dead_tokens = std::collections::HashSet::new();
        for round in 0..25 {
            let old_client = crate::tcp::TcpConn::connect(&addr).unwrap();
            let DriverEvent::Incoming(old_token) =
                driver.next_event(Duration::from_secs(2)).unwrap()
            else {
                panic!()
            };
            driver.arm(old_token);
            // Remove while the watch is armed and no data has arrived:
            // the fd closes here, may be reused by the next accept, and
            // any Readable(old_token) from now on is a stale delivery
            // (POLLNVAL on the closed fd, or the new connection's data
            // observed under the old token).
            drop(driver.remove(old_token));
            dead_tokens.insert(old_token);
            drop(old_client);

            // The next accept very likely reuses the freed fd.
            let mut new_client = crate::tcp::TcpConn::connect(&addr).unwrap();
            let DriverEvent::Incoming(new_token) =
                driver.next_event(Duration::from_secs(2)).unwrap()
            else {
                panic!()
            };
            driver.arm(new_token);
            new_client.write_all(b"fresh").unwrap();
            match driver.next_event(Duration::from_secs(2)) {
                Some(DriverEvent::Readable(t)) => {
                    assert!(
                        !dead_tokens.contains(&t),
                        "stale watch fired for removed token {t} (round {round})"
                    );
                    assert_eq!(t, new_token);
                }
                other => panic!("expected Readable({new_token}), got {other:?}"),
            }
            driver.remove(new_token);
            dead_tokens.insert(new_token);
        }
        driver.stop();
    }
}
