//! Transport abstraction: byte-stream connections and listeners.
//!
//! The paper's servers use POSIX sockets directly; this crate puts a thin
//! trait in front so the same server code runs on real TCP (examples,
//! interop) and on a hermetic in-memory transport (tests, benchmarks)
//! with optional link shaping.

use crate::pool::SharedPayload;
use std::io;
use std::time::Duration;

/// Progress of a buffered (reactor-drained) write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteProgress {
    /// Every byte was handed to the transport; nothing is buffered.
    Complete,
    /// Bytes remain in the connection's output buffer. The owner must
    /// call [`Conn::drain_out`] again when the transport is writable
    /// (the driver arms a `POLLOUT` watch on the reactor for this).
    Pending,
}

/// A bidirectional byte stream (one TCP connection or an in-memory
/// duplex pipe).
pub trait Conn: io::Read + io::Write + Send {
    /// Peer address, for logging.
    fn peer_addr(&self) -> String;

    /// Sets the read timeout (None blocks forever).
    fn set_read_timeout(&mut self, d: Option<Duration>) -> io::Result<()>;

    /// Blocks until the connection has readable data or has been closed
    /// by the peer; returns `Ok(true)` in both cases (a subsequent read
    /// returns data or EOF), `Ok(false)` on timeout.
    fn wait_readable(&self, timeout: Option<Duration>) -> io::Result<bool>;

    /// Registers a one-shot callback fired as soon as the connection is
    /// readable (or closed). Returns `false` when the transport cannot
    /// watch without a thread (TCP); callers then fall back to
    /// [`Conn::wait_readable`] on a helper thread — exactly the paper's
    /// select-simulation thread.
    fn set_read_watch(&self, watch: Box<dyn FnOnce() + Send>) -> bool {
        let _ = watch;
        false
    }

    /// The raw OS file descriptor backing this connection, when one
    /// exists. Transports that return `Some` are multiplexed by the
    /// driver's reactor thread instead of per-connection helper
    /// threads; in-memory transports return `None` and use watches.
    #[cfg(unix)]
    fn raw_fd(&self) -> Option<std::os::fd::RawFd> {
        None
    }

    /// Queues `bytes` for transmission without blocking the caller.
    ///
    /// Transports that can stall (TCP with a full socket buffer) append
    /// to a per-connection output buffer and return
    /// [`WriteProgress::Pending`] after a partial write; the reactor
    /// then drains the rest via [`Conn::drain_out`] on `POLLOUT`.
    /// Transports that cannot stall (the in-memory pipe) complete the
    /// enqueue synchronously. The default implementation performs a
    /// blocking `write_all`, which is correct for any transport but
    /// forfeits the non-blocking guarantee.
    fn enqueue_write(&mut self, bytes: &[u8]) -> io::Result<WriteProgress> {
        self.write_all(bytes)?;
        self.flush()?;
        Ok(WriteProgress::Complete)
    }

    /// Queues a refcounted payload for transmission without copying.
    ///
    /// Fan-out transports (TCP, in-memory) buffer a clone of the
    /// payload in their segment-queue output buffer when the write
    /// cannot complete immediately, so one encoded buffer serves N
    /// connections; the payload's buffer returns to its pool when the
    /// last connection drains (or drops) it. The default falls back to
    /// the copying [`Conn::enqueue_write`] path.
    fn enqueue_write_shared(&mut self, payload: &SharedPayload) -> io::Result<WriteProgress> {
        self.enqueue_write(payload)
    }

    /// Bytes accepted by [`Conn::enqueue_write`] but not yet handed to
    /// the transport.
    fn pending_out(&self) -> usize {
        0
    }

    /// Writes as much of the output buffer as the transport accepts
    /// without blocking. Returns [`WriteProgress::Complete`] when the
    /// buffer is empty.
    fn drain_out(&mut self) -> io::Result<WriteProgress> {
        Ok(WriteProgress::Complete)
    }

    /// Creates an independent handle to the same connection (for
    /// concurrent reader/writer threads). The output buffer is **not**
    /// shared: buffered bytes stay with the handle that enqueued them.
    fn try_clone(&self) -> io::Result<Box<dyn Conn>>;

    /// Closes the write side, signalling EOF to the peer.
    fn shutdown_write(&mut self) -> io::Result<()>;
}

/// Accepts incoming connections.
pub trait Listener: Send {
    /// Waits for the next connection. With an accept timeout configured,
    /// returns `ErrorKind::TimedOut` when none arrives in time.
    fn accept(&self) -> io::Result<Box<dyn Conn>>;

    /// Sets the accept timeout (None blocks forever). Sources use this to
    /// poll their shutdown flag.
    fn set_accept_timeout(&self, d: Option<Duration>);

    /// The address clients connect to.
    fn local_addr(&self) -> String;
}

/// A connectionless datagram socket (UDP or in-memory), used by the game
/// server's 10 Hz heartbeat protocol.
pub trait Datagram: Send + Sync {
    /// Sends one datagram to `addr`.
    fn send_to(&self, buf: &[u8], addr: &str) -> io::Result<usize>;

    /// Receives one datagram; `Ok(None)` on timeout.
    fn recv_from(
        &self,
        buf: &mut [u8],
        timeout: Option<Duration>,
    ) -> io::Result<Option<(usize, String)>>;

    /// The local address peers send to.
    fn local_addr(&self) -> String;
}

/// Reads exactly `buf.len()` bytes or fails.
pub fn read_exact_timeout(
    conn: &mut dyn Conn,
    buf: &mut [u8],
    timeout: Option<Duration>,
) -> io::Result<()> {
    conn.set_read_timeout(timeout)?;
    let mut read = 0;
    while read < buf.len() {
        match conn.read(&mut buf[read..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-message",
                ))
            }
            Ok(n) => read += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}
