//! Bounded buffer pools for the allocation-free hot path.
//!
//! Two recycling loops keep the steady-state event path off the
//! allocator:
//!
//! * [`BytePool`] recycles `Vec<u8>` payload buffers: servers check one
//!   out, serialize a response into it, hand it to
//!   [`crate::ConnDriver::submit_write_buf`], and the driver returns it
//!   to the pool once the transport has taken (or buffered) the bytes.
//! * [`BatchPool`] recycles the event vectors the reactor ships to the
//!   driver: one `Vec<DriverEvent>` per `wait` round travels through
//!   the channel and comes back empty when the consumer unpacks it.
//!
//! Both pools are bounded (a burst allocates, the steady state reuses)
//! and drop oversized buffers so one huge response cannot pin its
//! high-water mark forever.
//!
//! For multicast fan-out — one encoded result delivered to N
//! connections — [`SharedPayload`] wraps a pooled buffer in a reference
//! count: every [`crate::ConnDriver::submit_write_shared`] holds a
//! clone while the bytes sit in that connection's output buffer, and
//! the buffer returns to its pool exactly once, when the last drain
//! (or connection teardown) drops the last clone. [`OutBuf`] is the
//! segment-queue output buffer transports use so a blocked shared
//! write buffers a *reference*, never a per-subscriber copy.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// A bounded stack of reusable `Vec<u8>` buffers.
pub struct BytePool {
    bufs: Mutex<Vec<Vec<u8>>>,
    /// Maximum buffers retained (excess returns are dropped).
    max_pooled: usize,
    /// Buffers whose capacity grew past this are dropped instead of
    /// pooled, so a one-off giant response does not stay resident.
    max_capacity: usize,
}

impl BytePool {
    pub fn new(max_pooled: usize, max_capacity: usize) -> Self {
        BytePool {
            bufs: Mutex::new(Vec::new()),
            max_pooled,
            max_capacity,
        }
    }

    /// Checks out an empty buffer (pooled capacity when available).
    pub fn take(&self) -> Vec<u8> {
        self.bufs.lock().pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool. The contents are cleared; the
    /// capacity is kept for the next checkout unless it exceeds the
    /// pool's bound.
    pub fn put(&self, mut buf: Vec<u8>) {
        if buf.capacity() > self.max_capacity {
            return;
        }
        buf.clear();
        let mut bufs = self.bufs.lock();
        if bufs.len() < self.max_pooled {
            bufs.push(buf);
        }
    }

    /// Buffers currently resident in the pool (test hook).
    pub fn pooled(&self) -> usize {
        self.bufs.lock().len()
    }

    /// Seals an encoded buffer into a refcounted [`SharedPayload`].
    ///
    /// The buffer returns to this pool exactly once, when the final
    /// clone of the payload is dropped — no matter how many
    /// connections the payload was submitted to or which thread
    /// (reactor, drain helper, driver) releases last.
    pub fn seal(self: &Arc<Self>, bytes: Vec<u8>) -> SharedPayload {
        SharedPayload(Arc::new(PayloadCell {
            bytes,
            pool: Some(Arc::clone(self)),
        }))
    }
}

/// An immutable, refcounted payload buffer for multicast fan-out.
///
/// One encode, N submissions: the driver clones the payload into each
/// connection's [`OutBuf`] instead of copying the bytes, so the
/// per-publish payload-copy count stays at 1 regardless of subscriber
/// count. Pool-sealed payloads (see [`BytePool::seal`]) recycle their
/// buffer on last drop; [`SharedPayload::detached`] builds one with no
/// pool for transports and tests that do not recycle.
#[derive(Clone)]
pub struct SharedPayload(Arc<PayloadCell>);

struct PayloadCell {
    bytes: Vec<u8>,
    pool: Option<Arc<BytePool>>,
}

impl Drop for PayloadCell {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.put(std::mem::take(&mut self.bytes));
        }
    }
}

impl SharedPayload {
    /// Wraps bytes without a backing pool (dropped, not recycled).
    pub fn detached(bytes: Vec<u8>) -> Self {
        SharedPayload(Arc::new(PayloadCell { bytes, pool: None }))
    }

    /// Live references to the underlying buffer (test hook).
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.0)
    }
}

impl std::ops::Deref for SharedPayload {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0.bytes
    }
}

impl std::fmt::Debug for SharedPayload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedPayload")
            .field("len", &self.0.bytes.len())
            .field("refs", &Arc::strong_count(&self.0))
            .finish()
    }
}

/// A transport output buffer holding a queue of byte segments.
///
/// Owned segments hold copied tails of plain writes; shared segments
/// hold an [`SharedPayload`] reference, so buffering a blocked fan-out
/// write costs one `Arc` clone rather than a per-subscriber copy.
/// Transports drain front-to-back via [`OutBuf::front`] /
/// [`OutBuf::advance`].
#[derive(Default)]
pub struct OutBuf {
    segs: VecDeque<OutSeg>,
    /// Bytes of the front segment already written.
    front_pos: usize,
    /// Total unwritten bytes across all segments.
    len: usize,
}

enum OutSeg {
    Owned(Vec<u8>),
    Shared(SharedPayload),
}

impl OutSeg {
    fn bytes(&self) -> &[u8] {
        match self {
            OutSeg::Owned(v) => v,
            OutSeg::Shared(p) => p,
        }
    }
}

impl OutBuf {
    pub fn new() -> Self {
        OutBuf::default()
    }

    /// Unwritten bytes buffered.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Buffers a copy of `bytes[from..]`, coalescing into the trailing
    /// owned segment when there is one (keeps the segment count bounded
    /// under streams of small plain writes).
    pub fn push_owned(&mut self, bytes: &[u8], from: usize) {
        let tail = &bytes[from..];
        if tail.is_empty() {
            return;
        }
        self.len += tail.len();
        if let Some(OutSeg::Owned(last)) = self.segs.back_mut() {
            last.extend_from_slice(tail);
            return;
        }
        self.segs.push_back(OutSeg::Owned(tail.to_vec()));
    }

    /// Buffers a reference to `payload`, with the first `from` bytes
    /// already written.
    pub fn push_shared(&mut self, payload: &SharedPayload, from: usize) {
        debug_assert!(from <= payload.len());
        if from >= payload.len() {
            return;
        }
        self.len += payload.len() - from;
        if self.segs.is_empty() {
            self.front_pos = from;
        } else {
            debug_assert_eq!(from, 0, "only the front segment can be mid-write");
        }
        self.segs.push_back(OutSeg::Shared(payload.clone()));
    }

    /// The unwritten remainder of the front segment.
    pub fn front(&self) -> Option<&[u8]> {
        self.segs.front().map(|s| &s.bytes()[self.front_pos..])
    }

    /// Marks `n` bytes of the front segment written, releasing the
    /// segment (and any shared-payload reference) once exhausted.
    pub fn advance(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        let front = self.segs.front().expect("advance past end of OutBuf");
        let remaining = front.bytes().len() - self.front_pos;
        assert!(n <= remaining, "advance past end of front segment");
        self.len -= n;
        self.front_pos += n;
        if self.front_pos == front.bytes().len() {
            self.segs.pop_front();
            self.front_pos = 0;
        }
    }

    /// Drops every buffered segment (releases shared references).
    pub fn clear(&mut self) {
        self.segs.clear();
        self.front_pos = 0;
        self.len = 0;
    }
}

impl Default for BytePool {
    /// 32 buffers of up to 1 MiB each — sized for response payloads.
    fn default() -> Self {
        BytePool::new(32, 1024 * 1024)
    }
}

/// A bounded stack of reusable event vectors (see module docs).
pub(crate) struct BatchPool<T> {
    bufs: Mutex<Vec<Vec<T>>>,
    max_pooled: usize,
}

impl<T> BatchPool<T> {
    pub(crate) fn new(max_pooled: usize) -> Self {
        BatchPool {
            bufs: Mutex::new(Vec::new()),
            max_pooled,
        }
    }

    pub(crate) fn take(&self) -> Vec<T> {
        self.bufs.lock().pop().unwrap_or_default()
    }

    pub(crate) fn put(&self, mut buf: Vec<T>) {
        buf.clear();
        let mut bufs = self.bufs.lock();
        if bufs.len() < self.max_pooled {
            bufs.push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_pool_recycles_capacity() {
        let pool = BytePool::new(4, 1024);
        let mut b = pool.take();
        b.extend_from_slice(&[1, 2, 3]);
        let cap = b.capacity();
        pool.put(b);
        let b2 = pool.take();
        assert!(b2.is_empty(), "recycled buffer comes back cleared");
        assert_eq!(b2.capacity(), cap, "capacity survives the round trip");
    }

    #[test]
    fn byte_pool_drops_oversized_and_excess() {
        let pool = BytePool::new(2, 64);
        pool.put(Vec::with_capacity(1024)); // over max_capacity: dropped
        assert_eq!(pool.pooled(), 0);
        pool.put(Vec::with_capacity(16));
        pool.put(Vec::with_capacity(16));
        pool.put(Vec::with_capacity(16)); // over max_pooled: dropped
        assert_eq!(pool.pooled(), 2);
    }

    #[test]
    fn shared_payload_returns_to_pool_on_last_drop() {
        let pool = Arc::new(BytePool::new(4, 1024));
        let payload = pool.seal(b"hello".to_vec());
        let clone = payload.clone();
        assert_eq!(&*payload, b"hello");
        assert_eq!(payload.ref_count(), 2);
        drop(payload);
        assert_eq!(pool.pooled(), 0, "live clone keeps the buffer out");
        drop(clone);
        assert_eq!(pool.pooled(), 1, "last drop recycles exactly once");
    }

    #[test]
    fn detached_payload_has_no_pool() {
        let p = SharedPayload::detached(vec![1, 2, 3]);
        assert_eq!(&*p, &[1, 2, 3]);
        assert_eq!(p.ref_count(), 1);
    }

    #[test]
    fn out_buf_interleaves_owned_and_shared() {
        let pool = Arc::new(BytePool::new(4, 1024));
        let payload = pool.seal(b"shared".to_vec());
        let mut out = OutBuf::new();
        out.push_owned(b"abc", 1); // buffers "bc"
        out.push_shared(&payload, 0);
        out.push_owned(b"xy", 0);
        assert_eq!(out.len(), 2 + 6 + 2);
        let mut drained = Vec::new();
        while let Some(front) = out.front() {
            let take = front.len().min(3);
            drained.extend_from_slice(&front[..take]);
            out.advance(take);
        }
        assert_eq!(drained, b"bcsharedxy");
        assert!(out.is_empty());
        drop(payload);
        assert_eq!(pool.pooled(), 1, "drain released the shared segment");
    }

    #[test]
    fn out_buf_partial_front_shared_segment() {
        let payload = SharedPayload::detached(b"0123456789".to_vec());
        let mut out = OutBuf::new();
        out.push_shared(&payload, 4); // first 4 bytes already written
        assert_eq!(out.len(), 6);
        assert_eq!(out.front().unwrap(), b"456789");
        out.advance(2);
        assert_eq!(out.front().unwrap(), b"6789");
        out.clear();
        assert!(out.is_empty());
        assert_eq!(payload.ref_count(), 1, "clear released the reference");
    }

    #[test]
    fn out_buf_coalesces_owned_tails() {
        let mut out = OutBuf::new();
        out.push_owned(b"aa", 0);
        out.advance(1);
        out.push_owned(b"bb", 0); // extends the (partially drained) front
        assert_eq!(out.len(), 3);
        assert_eq!(out.front().unwrap(), b"abb");
    }

    #[test]
    fn batch_pool_round_trip() {
        let pool: BatchPool<u32> = BatchPool::new(2);
        let mut v = pool.take();
        v.push(7);
        pool.put(v);
        assert!(pool.take().is_empty());
    }
}
