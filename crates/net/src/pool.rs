//! Bounded buffer pools for the allocation-free hot path.
//!
//! Two recycling loops keep the steady-state event path off the
//! allocator:
//!
//! * [`BytePool`] recycles `Vec<u8>` payload buffers: servers check one
//!   out, serialize a response into it, hand it to
//!   [`crate::ConnDriver::submit_write_buf`], and the driver returns it
//!   to the pool once the transport has taken (or buffered) the bytes.
//! * [`BatchPool`] recycles the event vectors the reactor ships to the
//!   driver: one `Vec<DriverEvent>` per `wait` round travels through
//!   the channel and comes back empty when the consumer unpacks it.
//!
//! Both pools are bounded (a burst allocates, the steady state reuses)
//! and drop oversized buffers so one huge response cannot pin its
//! high-water mark forever.

use parking_lot::Mutex;

/// A bounded stack of reusable `Vec<u8>` buffers.
pub struct BytePool {
    bufs: Mutex<Vec<Vec<u8>>>,
    /// Maximum buffers retained (excess returns are dropped).
    max_pooled: usize,
    /// Buffers whose capacity grew past this are dropped instead of
    /// pooled, so a one-off giant response does not stay resident.
    max_capacity: usize,
}

impl BytePool {
    pub fn new(max_pooled: usize, max_capacity: usize) -> Self {
        BytePool {
            bufs: Mutex::new(Vec::new()),
            max_pooled,
            max_capacity,
        }
    }

    /// Checks out an empty buffer (pooled capacity when available).
    pub fn take(&self) -> Vec<u8> {
        self.bufs.lock().pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool. The contents are cleared; the
    /// capacity is kept for the next checkout unless it exceeds the
    /// pool's bound.
    pub fn put(&self, mut buf: Vec<u8>) {
        if buf.capacity() > self.max_capacity {
            return;
        }
        buf.clear();
        let mut bufs = self.bufs.lock();
        if bufs.len() < self.max_pooled {
            bufs.push(buf);
        }
    }

    /// Buffers currently resident in the pool (test hook).
    pub fn pooled(&self) -> usize {
        self.bufs.lock().len()
    }
}

impl Default for BytePool {
    /// 32 buffers of up to 1 MiB each — sized for response payloads.
    fn default() -> Self {
        BytePool::new(32, 1024 * 1024)
    }
}

/// A bounded stack of reusable event vectors (see module docs).
pub(crate) struct BatchPool<T> {
    bufs: Mutex<Vec<Vec<T>>>,
    max_pooled: usize,
}

impl<T> BatchPool<T> {
    pub(crate) fn new(max_pooled: usize) -> Self {
        BatchPool {
            bufs: Mutex::new(Vec::new()),
            max_pooled,
        }
    }

    pub(crate) fn take(&self) -> Vec<T> {
        self.bufs.lock().pop().unwrap_or_default()
    }

    pub(crate) fn put(&self, mut buf: Vec<T>) {
        buf.clear();
        let mut bufs = self.bufs.lock();
        if bufs.len() < self.max_pooled {
            bufs.push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_pool_recycles_capacity() {
        let pool = BytePool::new(4, 1024);
        let mut b = pool.take();
        b.extend_from_slice(&[1, 2, 3]);
        let cap = b.capacity();
        pool.put(b);
        let b2 = pool.take();
        assert!(b2.is_empty(), "recycled buffer comes back cleared");
        assert_eq!(b2.capacity(), cap, "capacity survives the round trip");
    }

    #[test]
    fn byte_pool_drops_oversized_and_excess() {
        let pool = BytePool::new(2, 64);
        pool.put(Vec::with_capacity(1024)); // over max_capacity: dropped
        assert_eq!(pool.pooled(), 0);
        pool.put(Vec::with_capacity(16));
        pool.put(Vec::with_capacity(16));
        pool.put(Vec::with_capacity(16)); // over max_pooled: dropped
        assert_eq!(pool.pooled(), 2);
    }

    #[test]
    fn batch_pool_round_trip() {
        let pool: BatchPool<u32> = BatchPool::new(2);
        let mut v = pool.take();
        v.push(7);
        pool.put(v);
        assert!(pool.take().is_empty());
    }
}
