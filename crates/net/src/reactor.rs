//! The readiness reactor: one thread multiplexes every registered file
//! descriptor, for **both** directions, over a pluggable [`Poller`]
//! backend (`poll(2)` or `epoll(7)` — see [`crate::poller`]).
//!
//! The paper's event-driven runtime simulated asynchronous I/O with a
//! helper thread wrapped around `select`; the seed reproduction took the
//! same shortcut *per connection*, which silently degenerated into
//! thread-per-connection. This module is the real thing: the
//! [`ConnDriver`](crate::driver::ConnDriver) registers per-token
//! *interest* and a single `flux-net-reactor` thread parks in one
//! backend `wait` call across all of it. The watch table is
//! interest-based — each token carries a read/write interest pair:
//!
//! * **Read interest** is one-shot, mirroring the driver's `arm`
//!   contract: a readable (or EOF'd) socket emits
//!   [`DriverEvent::Readable`](crate::driver::DriverEvent) and the read
//!   bit is cleared until the next `arm`.
//! * **Write interest** carries a *drain closure* supplied by the
//!   driver. On writability the reactor calls it to flush that
//!   connection's output buffer (batched: the drain writes until
//!   `WouldBlock`); the bit stays armed until the buffer empties, then
//!   the driver's completion bookkeeping emits `WriteDone`. Response
//!   transmission therefore never occupies an I/O worker thread.
//!
//! **Hot-path layout.** Tokens encode `(slot, generation)`
//! ([`crate::token_slot`]), so every reactor-side table is a plain
//! vector: the watch table is indexed by slot, the fd map by raw fd,
//! and liveness is a per-slot `Arc<AtomicU64>` cell whose value is the
//! current registration's generation (0 = dead). Delivering an event
//! therefore costs two vector indexes and one atomic load — no hashing
//! and no lock on the reactor thread. All `Readable` events from one
//! backend `wait` round are shipped to the driver as a single recycled
//! batch vector, so a burst of N ready sockets costs one channel
//! transfer.
//!
//! **Division of labour.** The backend owns only the mechanism of
//! waiting on fds; every invariant that used to live in the poll loop
//! is enforced *here*, once, above the [`Poller`] trait — so both
//! backends (and any future kqueue/io_uring one) inherit it:
//!
//! * **fd-reuse safety.** Deregistration *synchronously* zeroes the
//!   slot's liveness cell: [`Reactor::deregister`] clears the token's
//!   generation before the caller can drop (and the kernel can reuse)
//!   the file descriptor, and the reactor thread compares the cell
//!   against the watch's recorded generation before delivering any
//!   event or running any drain. A stale watch delivers nothing; it is
//!   purged the first time the thread looks at it.
//! * **One-shot re-arm.** After the backend reports an fd, the watch is
//!   disarmed until the reactor re-issues `modify` — which it does
//!   exactly once per reported fd, with the post-delivery interest.
//! * **Busy parking.** A drain that finds the connection lock contended
//!   parks the watch's write side for a few milliseconds instead of
//!   spinning on level-triggered writability: a write-only watch is
//!   simply not re-armed until the park expires (the unpark pass issues
//!   the modify), while armed read interest stays live throughout — a
//!   park never delays read delivery. Events that arrive during a park
//!   still run the drain, so a broken connection retires immediately
//!   rather than bouncing unmaskable ERR/HUP readiness.
//!
//! The reactor wakes for control-plane changes (register/deregister/
//! stop) through a self-pipe registered with the same backend, so
//! registrations made while it is parked in `wait` take effect
//! immediately. [`Reactor::stop`] joins the thread, which exits
//! promptly on the self-pipe wakeup, so no reactor thread can outlive
//! the driver that spawned it. On multi-core hosts the thread pins
//! itself to the last core (`FLUX_PIN=0` opts out).

#![cfg(unix)]

use crate::driver::{token_slot, Delivery, DriverEvent, Token};
use crate::poller::{create_poller, Interest, Poller, PollerBackend, PollerEvent};
use crate::pool::BatchPool;
use crossbeam::channel::Sender;
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the reactor invokes a write-drain closure.
pub(crate) enum DrainCall {
    /// The socket reported writable: flush as much as it accepts.
    Drain,
    /// The watch is being discarded (backend failure): fail the write so
    /// the driver emits `WriteFailed` instead of leaving it in limbo.
    Abort,
}

/// What a drain closure reports back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DrainResult {
    /// Output buffer empty: clear write interest.
    Complete,
    /// More bytes remain: keep write interest armed.
    Pending,
    /// The connection lock is contended (a flow holds it across a
    /// blocking read): park write interest briefly so the
    /// level-triggered readiness does not spin the reactor, then
    /// re-offer the drain.
    Busy,
    /// The connection broke: drop the watch.
    Failed,
}

/// Flushes one connection's output buffer; owned by the watch table and
/// called only from the reactor thread. The closure holds the shared
/// connection handle, which also keeps the fd open (and hence
/// un-reusable) until the watch itself is discarded.
pub(crate) type DrainFn = Box<dyn FnMut(DrainCall) -> DrainResult + Send>;

/// A registration epoch for a control op: the liveness cell and the
/// generation it held when the op was queued.
struct Epoch {
    gen: u64,
    cell: Arc<AtomicU64>,
}

enum Control {
    /// Arm a one-shot readability watch on `fd` for `token`.
    ReadInterest(RawFd, Token, Epoch),
    /// Arm a write-drain watch on `fd` for `token`.
    WriteInterest(RawFd, Token, Epoch, DrainFn),
    /// Drop any watch for `token` (connection removed).
    Deregister(Token),
}

struct Shared {
    control: Vec<Control>,
    thread_started: bool,
}

/// The shared liveness slab: one entry per token slot, holding the
/// token currently registered there and its generation cell (0 = dead).
/// The reactor thread never touches this table on the event path — each
/// watch carries a clone of its cell, so the liveness check is a single
/// atomic load.
struct LiveEntry {
    token: Token,
    gen: Arc<AtomicU64>,
}

/// One token's entry in the reactor thread's watch table.
struct Watch {
    token: Token,
    fd: RawFd,
    /// The generation this watch was registered under.
    gen: u64,
    /// The slot's liveness cell; `cell != gen` means stale.
    live: Arc<AtomicU64>,
    /// Read/write interest currently armed.
    interest: Interest,
    drain: Option<DrainFn>,
    /// While set (and in the future), write interest is masked from the
    /// backend — a [`DrainResult::Busy`] backoff.
    parked_until: Option<Instant>,
}

impl Watch {
    /// The interest actually handed to the backend: write is masked
    /// while the watch is Busy-parked (the fd stays registered so
    /// errors surface).
    fn effective(&self) -> Interest {
        Interest {
            read: self.interest.read,
            write: self.interest.write && self.parked_until.is_none(),
        }
    }

    fn is_live(&self) -> bool {
        self.live.load(Ordering::SeqCst) == self.gen
    }
}

/// One thread, many sockets: the backend-agnostic readiness multiplexer.
pub struct Reactor {
    shared: Mutex<Shared>,
    /// Liveness slab, indexed by token slot (see [`LiveEntry`]).
    /// Deregistration zeroes the cell *synchronously*, before the fd
    /// can close — the reactor thread delivers nothing for a watch
    /// whose cell no longer holds its generation.
    live: Mutex<Vec<Option<LiveEntry>>>,
    next_gen: AtomicU64,
    /// Write end of the self-pipe; a byte here interrupts `wait`.
    wake: Mutex<Option<std::io::PipeWriter>>,
    /// True while a wake byte is in flight. Deduplicates `wake_up`
    /// calls so at most one byte is written per reactor round no
    /// matter how many control ops race ahead of the reactor (the
    /// round's 64-byte drain keeps the running total near zero) — the
    /// blocking write in `wake_up` therefore can never fill the pipe
    /// and stall, not even when the reactor thread itself deregisters
    /// a connection from inside an Abort drain (it is the pipe's only
    /// reader).
    wake_pending: AtomicBool,
    /// The reactor thread, joined by [`Reactor::stop`].
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// The backend, created eagerly (so fallback is resolved and
    /// [`Reactor::backend_name`] is stable) and moved into the thread
    /// on first registration.
    poller: Mutex<Option<Box<dyn Poller>>>,
    backend_name: &'static str,
    /// True when the resolved backend differs from the requested one
    /// (e.g. `uring` requested, capability probe failed, epoll chosen).
    backend_fell_back: bool,
    stopping: AtomicBool,
    pinned: AtomicBool,
    events_delivered: AtomicU64,
    tx: Sender<Delivery>,
    /// Recycled per-round event vectors, shared with the driver.
    batch_pool: Arc<BatchPool<DriverEvent>>,
    /// Optional per-round hook, invoked once per wait loop iteration
    /// (so at least every backstop timeout, ≤250 ms apart). The driver
    /// installs its idle-reap check here: the sweep runs on the reactor
    /// thread, where a reaped connection's watch deregistration is
    /// cheapest (no cross-thread wake needed).
    tick: Mutex<Option<Box<dyn Fn() + Send>>>,
}

impl Reactor {
    pub(crate) fn new(
        tx: Sender<Delivery>,
        batch_pool: Arc<BatchPool<DriverEvent>>,
        backend: PollerBackend,
    ) -> Arc<Self> {
        let poller = create_poller(backend);
        let backend_name = poller.name();
        let backend_fell_back = backend_name != backend.label();
        Arc::new(Reactor {
            shared: Mutex::new(Shared {
                control: Vec::new(),
                thread_started: false,
            }),
            live: Mutex::new(Vec::new()),
            next_gen: AtomicU64::new(1),
            wake: Mutex::new(None),
            wake_pending: AtomicBool::new(false),
            thread: Mutex::new(None),
            poller: Mutex::new(Some(poller)),
            backend_name,
            backend_fell_back,
            stopping: AtomicBool::new(false),
            pinned: AtomicBool::new(false),
            events_delivered: AtomicU64::new(0),
            tx,
            batch_pool,
            tick: Mutex::new(None),
        })
    }

    /// Installs (or replaces) the per-round tick hook. The hook must be
    /// cheap and non-blocking in the common case — it runs on the
    /// reactor thread between wait rounds.
    pub(crate) fn set_tick(&self, f: Box<dyn Fn() + Send>) {
        *self.tick.lock() = Some(f);
    }

    /// Number of readiness (read) events the reactor has delivered
    /// (test and stats hook).
    pub fn events_delivered(&self) -> u64 {
        self.events_delivered.load(Ordering::Relaxed)
    }

    /// The backend actually in use (`"poll"`, `"epoll"`, or
    /// `"uring"`), after any fallback.
    pub fn backend_name(&self) -> &'static str {
        self.backend_name
    }

    /// True when the requested backend could not be constructed and a
    /// fallback was substituted — a `uring` request landing on epoll
    /// (no io_uring on this kernel / seccomp denies it), or an `epoll`
    /// request landing on poll. Surfaces in
    /// [`DriverCounters::poller_fallbacks`](crate::driver::DriverCounters)
    /// so CI and benches report the resolved backend honestly instead
    /// of silently measuring the wrong thing.
    pub fn backend_fell_back(&self) -> bool {
        self.backend_fell_back
    }

    /// True when the reactor thread pinned itself to a core.
    pub fn pinned(&self) -> bool {
        self.pinned.load(Ordering::Relaxed)
    }

    /// The token's current registration epoch, allocating a fresh
    /// generation if the slot is dead. Returns `None` for a stale
    /// caller whose slot is live under a *different* token — see the
    /// refusal comment below.
    fn live_gen(&self, token: Token) -> Option<Epoch> {
        let slot = token_slot(token);
        let mut live = self.live.lock();
        if live.len() <= slot {
            live.resize_with(slot + 1, || None);
        }
        if let Some(e) = &live[slot] {
            let gen = e.gen.load(Ordering::SeqCst);
            if e.token == token && gen != 0 {
                return Some(Epoch {
                    gen,
                    cell: e.gen.clone(),
                });
            }
            if e.token != token && gen != 0 {
                // The slot's LIVE registration belongs to a different
                // token. Slot reuse always deregisters the old tenant
                // before the new one can register (the driver frees a
                // slot only after `deregister` returns), so a caller
                // naming a different token here is itself stale — a
                // delayed arm/submit racing the removal of its
                // connection. Refuse rather than steal the tenant's
                // liveness cell, which would permanently kill the live
                // connection's watch.
                return None;
            }
        }
        let gen = self.next_gen.fetch_add(1, Ordering::Relaxed);
        // The entry (if any) is dead (gen 0): its cell can be reused —
        // stale watches recorded a non-zero generation, which can never
        // match the fresh one.
        let cell = live[slot]
            .take()
            .map(|e| e.gen)
            .unwrap_or_else(|| Arc::new(AtomicU64::new(0)));
        cell.store(gen, Ordering::SeqCst);
        live[slot] = Some(LiveEntry {
            token,
            gen: cell.clone(),
        });
        Some(Epoch { gen, cell })
    }

    /// Arms a one-shot readability watch. The reactor thread is spawned
    /// lazily on the first registration. A stale caller (its slot
    /// already re-registered by a newer token) is refused silently.
    pub(crate) fn register(self: &Arc<Self>, fd: RawFd, token: Token) {
        let Some(epoch) = self.live_gen(token) else {
            return;
        };
        let mut shared = self.shared.lock();
        shared.control.push(Control::ReadInterest(fd, token, epoch));
        self.ensure_thread(&mut shared);
        drop(shared);
        self.wake_up();
    }

    /// Arms a write-drain watch: `drain` is called from the reactor
    /// thread whenever the socket reports writable, until it returns
    /// [`DrainResult::Complete`] or [`DrainResult::Failed`]. A stale
    /// caller is refused silently; its submissions were (or will be)
    /// failed by the driver's `remove`, which is what made it stale.
    pub(crate) fn register_write(self: &Arc<Self>, fd: RawFd, token: Token, drain: DrainFn) {
        let Some(epoch) = self.live_gen(token) else {
            return;
        };
        let mut shared = self.shared.lock();
        shared
            .control
            .push(Control::WriteInterest(fd, token, epoch, drain));
        self.ensure_thread(&mut shared);
        drop(shared);
        self.wake_up();
    }

    /// Drops any watch for `token`. The liveness cell is zeroed
    /// *before* this returns, so once `deregister` completes the caller
    /// may close the fd: even if the kernel reuses it immediately, the
    /// stale watch's generation no longer matches and it delivers
    /// nothing. Exact-token matching makes this safe against slot
    /// reuse: deregistering a token whose slot already hosts a newer
    /// registration is a no-op.
    pub(crate) fn deregister(&self, token: Token) {
        {
            let live = self.live.lock();
            match live.get(token_slot(token)) {
                Some(Some(e)) if e.token == token => e.gen.store(0, Ordering::SeqCst),
                // Never registered (or the slot moved on to a newer
                // token): nothing to tear down.
                _ => return,
            }
        }
        if self.stopping.load(Ordering::SeqCst) {
            // The reactor thread is gone (or going): the liveness
            // zeroing above is the only part that still matters, and
            // queueing controls or writing the dead self-pipe would be
            // pure waste — `ConnDriver::stop`'s post-join cleanup
            // removes every remaining connection through this path.
            return;
        }
        let mut shared = self.shared.lock();
        if !shared.thread_started {
            return;
        }
        shared.control.push(Control::Deregister(token));
        drop(shared);
        self.wake_up();
    }

    /// Asks the reactor thread to exit and joins it (the self-pipe
    /// wakeup bounds the wait to one poll round).
    pub(crate) fn stop(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        self.wake_up();
        if let Some(handle) = self.thread.lock().take() {
            if handle.thread().id() != std::thread::current().id() {
                let _ = handle.join();
            }
        }
    }

    fn wake_up(&self) {
        if self.wake_pending.swap(true, Ordering::SeqCst) {
            // A byte is already in flight: the reactor will re-read
            // control at the top of its next round, which also covers
            // everything queued after that byte was written.
            return;
        }
        if let Some(w) = self.wake.lock().as_mut() {
            let _ = w.write(&[1]);
        }
    }

    fn ensure_thread(self: &Arc<Self>, shared: &mut Shared) {
        if shared.thread_started {
            return;
        }
        shared.thread_started = true;
        let (pipe_rx, pipe_tx) = std::io::pipe().expect("reactor self-pipe");
        *self.wake.lock() = Some(pipe_tx);
        let poller = self.poller.lock().take().expect("poller created once");
        let this = self.clone();
        let handle = std::thread::Builder::new()
            .name("flux-net-reactor".into())
            .spawn(move || this.run(pipe_rx, poller))
            .expect("spawn reactor thread");
        *self.thread.lock() = Some(handle);
    }

    fn run(self: Arc<Self>, mut pipe_rx: std::io::PipeReader, mut poller: Box<dyn Poller>) {
        if crate::affinity::should_pin() {
            // Pin opposite the dispatcher shards (which fill cores from
            // 0 upward), so the reactor keeps a core to itself for as
            // long as the shard count allows.
            let core = crate::affinity::host_cores().saturating_sub(1);
            if crate::affinity::pin_current_thread(core) {
                self.pinned.store(true, Ordering::Relaxed);
            }
        }
        let wake_fd = pipe_rx.as_raw_fd();
        let _ = poller.add(wake_fd, Interest::READ);
        // Watch table indexed by token slot, fd map indexed by raw fd
        // (usize::MAX = unmapped). Kept in lockstep: one fd per live
        // watch.
        let mut watches: Vec<Option<Watch>> = Vec::new();
        let mut fd_to_slot: Vec<usize> = Vec::new();
        // Tokens currently Busy-parked, scanned for expiry each round
        // (kept separate so an epoll wakeup stays O(ready + parked),
        // not O(watched)).
        let mut parked: Vec<Token> = Vec::new();
        let mut events: Vec<PollerEvent> = Vec::new();
        // The round's outgoing Readable batch; recycled through the
        // driver's pool so the steady state allocates nothing.
        let mut round: Vec<DriverEvent> = self.batch_pool.take();

        fn fd_slot(fd_to_slot: &[usize], fd: RawFd) -> Option<usize> {
            match fd_to_slot.get(fd as usize) {
                Some(&s) if s != usize::MAX => Some(s),
                _ => None,
            }
        }

        fn map_fd(fd_to_slot: &mut Vec<usize>, fd: RawFd, slot: usize) {
            let idx = fd as usize;
            if fd_to_slot.len() <= idx {
                fd_to_slot.resize(idx + 1, usize::MAX);
            }
            fd_to_slot[idx] = slot;
        }

        /// Removes a token's watch from every structure, including the
        /// backend registration, returning the watch for any
        /// notification the caller still owes. Exact-token matching: a
        /// slot that moved on to a newer token is left untouched.
        fn discard(
            watches: &mut [Option<Watch>],
            fd_to_slot: &mut [usize],
            poller: &mut dyn Poller,
            token: Token,
        ) -> Option<Watch> {
            let slot = token_slot(token);
            let entry = watches.get_mut(slot)?;
            if entry.as_ref()?.token != token {
                return None;
            }
            let w = entry.take().expect("checked above");
            if fd_to_slot.get(w.fd as usize) == Some(&slot) {
                fd_to_slot[w.fd as usize] = usize::MAX;
                let _ = poller.delete(w.fd);
            }
            Some(w)
        }

        /// Fails a watch whose backend registration was refused (an fd
        /// the backend cannot multiplex, e.g. a regular file under
        /// epoll): the flow observes the error on its next read,
        /// pending writes abort, and the watch is discarded — the same
        /// treatment as a failed wait, so the one-completion-per-submit
        /// contract holds on every backend.
        fn fail_watch(
            this: &Reactor,
            watches: &mut [Option<Watch>],
            fd_to_slot: &mut [usize],
            poller: &mut dyn Poller,
            token: Token,
        ) {
            let Some(mut w) = discard(watches, fd_to_slot, poller, token) else {
                return;
            };
            if !w.is_live() {
                return;
            }
            if w.interest.read {
                let _ = this.tx.send(Delivery::One(DriverEvent::Readable(token)));
            }
            if let Some(drain) = w.drain.as_mut() {
                let _ = drain(DrainCall::Abort);
            }
        }

        /// Fetches (or creates) `token`'s watch entry for the given
        /// epoch, replacing a stale entry from a prior registration
        /// wholesale and keeping the fd map in lockstep.
        fn upsert_watch<'a>(
            watches: &'a mut Vec<Option<Watch>>,
            fd_to_slot: &mut Vec<usize>,
            fd: RawFd,
            token: Token,
            epoch: &Epoch,
        ) -> &'a mut Watch {
            let slot = token_slot(token);
            if watches.len() <= slot {
                watches.resize_with(slot + 1, || None);
            }
            let fresh = match &watches[slot] {
                Some(w) => w.token != token || w.gen != epoch.gen || w.fd != fd,
                None => true,
            };
            if fresh {
                if let Some(w) = &watches[slot] {
                    if fd_to_slot.get(w.fd as usize) == Some(&slot) {
                        fd_to_slot[w.fd as usize] = usize::MAX;
                    }
                }
                watches[slot] = Some(Watch {
                    token,
                    fd,
                    gen: epoch.gen,
                    live: epoch.cell.clone(),
                    interest: Interest::none(),
                    drain: None,
                    parked_until: None,
                });
            }
            map_fd(fd_to_slot, fd, slot);
            watches[slot].as_mut().expect("just ensured")
        }

        // Control entries are swapped out of `self.shared` and
        // processed from this buffer with the lock RELEASED: backend
        // syscalls must not serialize register/arm/submit_write callers
        // behind the mutex, and fail_watch's Abort drain re-enters the
        // driver — which calls Reactor::deregister and hence takes
        // `self.shared` again on this very thread (a self-deadlock if
        // the lock were still held). The swap leaves the drained Vec's
        // capacity behind for the producers.
        let mut pending: Vec<Control> = Vec::new();
        loop {
            // Allow the next wake byte BEFORE taking the control batch:
            // a producer that pushes after the swap below either sees
            // the flag cleared and writes a byte, or loses the flag
            // race to a producer whose byte is younger than this reset
            // — either way the next `wait` wakes and re-reads control,
            // so no registration waits out the backstop timeout.
            self.wake_pending.store(false, Ordering::SeqCst);
            std::mem::swap(&mut pending, &mut self.shared.lock().control);
            for ctl in pending.drain(..) {
                match ctl {
                    Control::ReadInterest(fd, token, epoch) => {
                        if epoch.cell.load(Ordering::SeqCst) != epoch.gen {
                            continue; // raced with deregister
                        }
                        let w = upsert_watch(&mut watches, &mut fd_to_slot, fd, token, &epoch);
                        w.interest.read = true;
                        let eff = w.effective();
                        if poller.modify(fd, eff).is_err() {
                            fail_watch(&self, &mut watches, &mut fd_to_slot, &mut *poller, token);
                        }
                    }
                    Control::WriteInterest(fd, token, epoch, drain) => {
                        if epoch.cell.load(Ordering::SeqCst) != epoch.gen {
                            continue;
                        }
                        let w = upsert_watch(&mut watches, &mut fd_to_slot, fd, token, &epoch);
                        w.interest.write = true;
                        w.drain = Some(drain);
                        // A fresh drain supersedes any Busy backoff.
                        w.parked_until = None;
                        let eff = w.effective();
                        if poller.modify(fd, eff).is_err() {
                            fail_watch(&self, &mut watches, &mut fd_to_slot, &mut *poller, token);
                        }
                    }
                    Control::Deregister(token) => {
                        let _ = discard(&mut watches, &mut fd_to_slot, &mut *poller, token);
                    }
                }
            }
            if self.stopping.load(Ordering::SeqCst) {
                return;
            }

            // Per-round tick: the driver's idle-reap check rides here,
            // so a sweep is never more than one backstop timeout away
            // even with zero traffic. Reaping re-enters this reactor
            // via `deregister`, which only queues a control op — no
            // self-deadlock (same re-entry contract as Abort drains).
            if let Some(tick) = self.tick.lock().as_ref() {
                tick();
            }

            // Un-park expired Busy backoffs (re-arming their write
            // interest) and find the nearest still-pending expiry.
            let now = Instant::now();
            let mut nearest_park: Option<Instant> = None;
            let mut unpark_failed: Vec<Token> = Vec::new();
            parked.retain(|&token| {
                let Some(w) = watches
                    .get_mut(token_slot(token))
                    .and_then(|e| e.as_mut())
                    .filter(|w| w.token == token)
                else {
                    return false;
                };
                match w.parked_until {
                    Some(until) if until <= now => {
                        w.parked_until = None;
                        if poller.modify(w.fd, w.effective()).is_err() {
                            unpark_failed.push(token);
                        }
                        false
                    }
                    Some(until) => {
                        nearest_park = Some(nearest_park.map_or(until, |t: Instant| t.min(until)));
                        true
                    }
                    None => false,
                }
            });
            for token in unpark_failed {
                fail_watch(&self, &mut watches, &mut fd_to_slot, &mut *poller, token);
            }

            // Bounded timeout: a backstop for a missed wake-up byte,
            // shortened to the nearest Busy-park expiry so deferred
            // drains resume promptly.
            let timeout = match nearest_park {
                Some(t) => t
                    .saturating_duration_since(now)
                    .clamp(Duration::from_millis(1), Duration::from_millis(250)),
                None => Duration::from_millis(250),
            };
            if let Err(err) = poller.wait(&mut events, timeout) {
                if err.kind() == std::io::ErrorKind::Interrupted {
                    continue;
                }
                // Unexpected backend failure: fail every watch, so
                // flows observe the error on read, pending writes
                // abort, and the table retires.
                let tokens: Vec<Token> = watches
                    .iter()
                    .filter_map(|e| e.as_ref().map(|w| w.token))
                    .collect();
                for token in tokens {
                    fail_watch(&self, &mut watches, &mut fd_to_slot, &mut *poller, token);
                }
                parked.clear();
                continue;
            }

            for ev in events.iter().copied() {
                if ev.fd == wake_fd {
                    // Drain the self-pipe; control is re-read next loop.
                    let mut buf = [0u8; 64];
                    let _ = pipe_rx.read(&mut buf);
                    let _ = poller.modify(wake_fd, Interest::READ);
                    continue;
                }
                let Some(slot) = fd_slot(&fd_to_slot, ev.fd) else {
                    // No watch claims this fd: drop the registration.
                    let _ = poller.delete(ev.fd);
                    continue;
                };
                let Some(watch) = watches.get_mut(slot).and_then(|e| e.as_mut()) else {
                    fd_to_slot[ev.fd as usize] = usize::MAX;
                    let _ = poller.delete(ev.fd);
                    continue;
                };
                let token = watch.token;
                if !watch.is_live() {
                    // Deregistered (possibly with the fd already reused
                    // by a new connection): deliver nothing.
                    let _ = discard(&mut watches, &mut fd_to_slot, &mut *poller, token);
                    continue;
                }
                if watch.interest.read && ev.readable {
                    // One-shot: the driver re-arms after the flow reads.
                    // Appended to the round batch — one channel send
                    // (and one shard-queue append downstream) covers
                    // every readable socket of this wait round.
                    watch.interest.read = false;
                    self.events_delivered.fetch_add(1, Ordering::Relaxed);
                    round.push(DriverEvent::Readable(token));
                }
                if watch.interest.write && ev.writable {
                    // Busy-parked watches still reach here: ERR/HUP
                    // cannot be masked on either backend. Running the
                    // drain anyway means a broken connection fails its
                    // write and retires the watch instead of bouncing
                    // unmaskable hangup events for the whole park
                    // window; a still-contended lock just re-parks.
                    let was_parked = watch.parked_until.is_some();
                    let result = watch
                        .drain
                        .as_mut()
                        .map(|d| d(DrainCall::Drain))
                        .unwrap_or(DrainResult::Failed);
                    match result {
                        DrainResult::Pending => {
                            watch.parked_until = None;
                        }
                        DrainResult::Busy => {
                            watch.parked_until = Some(Instant::now() + Duration::from_millis(5));
                            if !was_parked {
                                parked.push(token);
                            }
                        }
                        DrainResult::Complete | DrainResult::Failed => {
                            watch.interest.write = false;
                            watch.drain = None;
                            watch.parked_until = None;
                        }
                    }
                }
                // The post-delivery re-arm: every reported fd ends its
                // round with exactly one modify (or delete, when no
                // interest remains) — the one-shot contract both
                // backends rely on. A Busy park masks only the write
                // side: armed read interest is re-armed immediately
                // (`effective()` keeps write out), so a park never
                // delays read delivery, and an ERR/HUP folded into
                // readability is consumed by the one-shot Readable
                // rather than spinning the backoff. A parked write-only
                // watch is left disarmed — re-arming it would let the
                // unmaskable hangup conditions spin the reactor through
                // the park — and the unpark pass issues its modify when
                // the park expires.
                if !watch.interest.read && !watch.interest.write {
                    let _ = discard(&mut watches, &mut fd_to_slot, &mut *poller, token);
                } else if watch.parked_until.is_none() || watch.interest.read {
                    let eff = watch.effective();
                    let fd = watch.fd;
                    if poller.modify(fd, eff).is_err() {
                        fail_watch(&self, &mut watches, &mut fd_to_slot, &mut *poller, token);
                    }
                }
            }
            if !round.is_empty() {
                let batch = std::mem::replace(&mut round, self.batch_pool.take());
                let _ = self.tx.send(Delivery::Batch(batch));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::DriverEvent;
    use crate::tcp::{TcpAcceptor, TcpConn};
    use crate::traits::Listener;
    use crossbeam::channel::{unbounded, Receiver};
    use std::collections::VecDeque;
    use std::time::Duration;

    fn backends() -> Vec<PollerBackend> {
        let mut v = vec![PollerBackend::Poll];
        if cfg!(target_os = "linux") {
            v.push(PollerBackend::Epoll);
            if crate::poller::uring_available() {
                v.push(PollerBackend::Uring);
            } else {
                eprintln!("skipping uring backend (unavailable on this host)");
            }
        }
        v
    }

    /// Unpacks the reactor's batched deliveries back into single events
    /// for assertion-by-assertion consumption.
    struct EventRx {
        rx: Receiver<Delivery>,
        pending: VecDeque<DriverEvent>,
    }

    impl EventRx {
        fn recv_timeout(&mut self, d: Duration) -> Result<DriverEvent, ()> {
            if let Some(ev) = self.pending.pop_front() {
                return Ok(ev);
            }
            let deadline = Instant::now() + d;
            loop {
                let left = deadline.saturating_duration_since(Instant::now());
                match self.rx.recv_timeout(left) {
                    Ok(Delivery::One(ev)) => return Ok(ev),
                    Ok(Delivery::Batch(b)) => {
                        self.pending.extend(b);
                        if let Some(ev) = self.pending.pop_front() {
                            return Ok(ev);
                        }
                    }
                    // Only the driver's watch closures send markers;
                    // these tests drive the reactor directly.
                    Ok(Delivery::Coalesced) => unreachable!("reactor never coalesces"),
                    Err(_) => return Err(()),
                }
            }
        }

        fn try_recv(&mut self) -> Result<DriverEvent, ()> {
            if let Some(ev) = self.pending.pop_front() {
                return Ok(ev);
            }
            match self.rx.try_recv() {
                Ok(Delivery::One(ev)) => Ok(ev),
                Ok(Delivery::Batch(b)) => {
                    self.pending.extend(b);
                    self.pending.pop_front().ok_or(())
                }
                Ok(Delivery::Coalesced) => unreachable!("reactor never coalesces"),
                Err(_) => Err(()),
            }
        }
    }

    fn test_reactor(backend: PollerBackend) -> (Arc<Reactor>, EventRx) {
        let (tx, rx) = unbounded();
        let reactor = Reactor::new(tx, Arc::new(BatchPool::new(4)), backend);
        (
            reactor,
            EventRx {
                rx,
                pending: VecDeque::new(),
            },
        )
    }

    #[test]
    fn reactor_reports_readable_and_eof() {
        for backend in backends() {
            let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
            let addr = acceptor.local_addr();
            let mut c1 = TcpConn::connect(&addr).unwrap();
            let s1 = acceptor.accept().unwrap();
            let c2 = TcpConn::connect(&addr).unwrap();
            let s2 = acceptor.accept().unwrap();

            let (reactor, mut rx) = test_reactor(backend);
            reactor.register(s1.raw_fd().unwrap(), 1);
            reactor.register(s2.raw_fd().unwrap(), 2);
            assert!(
                rx.recv_timeout(Duration::from_millis(50)).is_err(),
                "nothing readable yet"
            );

            c1.write_all(b"x").unwrap();
            assert_eq!(
                rx.recv_timeout(Duration::from_secs(2)),
                Ok(DriverEvent::Readable(1))
            );
            drop(c2); // EOF wakes the second watch
            assert_eq!(
                rx.recv_timeout(Duration::from_secs(2)),
                Ok(DriverEvent::Readable(2))
            );
            assert_eq!(reactor.events_delivered(), 2);
            reactor.stop();
        }
    }

    #[test]
    fn deregister_suppresses_events() {
        for backend in backends() {
            let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
            let addr = acceptor.local_addr();
            let mut client = TcpConn::connect(&addr).unwrap();
            let server = acceptor.accept().unwrap();

            let (reactor, mut rx) = test_reactor(backend);
            reactor.register(server.raw_fd().unwrap(), 7);
            reactor.deregister(7);
            std::thread::sleep(Duration::from_millis(20));
            client.write_all(b"x").unwrap();
            assert!(
                rx.recv_timeout(Duration::from_millis(100)).is_err(),
                "deregistered watch must not fire ({})",
                reactor.backend_name()
            );
            reactor.stop();
        }
    }

    /// The fd-reuse race at the reactor level: deregister a token, close
    /// its fd, and immediately register the (very likely reused) fd
    /// under a new token. The stale generation must deliver nothing; the
    /// new registration must fire.
    #[test]
    fn stale_generation_never_fires_on_reused_fd() {
        for backend in backends() {
            let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
            let addr = acceptor.local_addr();
            let (reactor, mut rx) = test_reactor(backend);
            for round in 0..20u64 {
                let old_token = 1000 + round * 2;
                let new_token = 1001 + round * 2;
                let old_client = TcpConn::connect(&addr).unwrap();
                let old_server = acceptor.accept().unwrap();
                reactor.register(old_server.raw_fd().unwrap(), old_token);
                // Tear the socket down immediately: the watch may still be
                // in the reactor's table (its Deregister is only queued)
                // when the fd closes and gets reused below. No data ever
                // arrived while `old_token` was live, so any Readable for it
                // is a stale delivery.
                reactor.deregister(old_token);
                drop(old_server); // fd closes; the kernel may reuse it now
                drop(old_client);
                let mut new_client = TcpConn::connect(&addr).unwrap();
                let new_server = acceptor.accept().unwrap();
                reactor.register(new_server.raw_fd().unwrap(), new_token);
                new_client.write_all(b"fresh").unwrap();
                match rx.recv_timeout(Duration::from_secs(2)) {
                    Ok(DriverEvent::Readable(t)) => {
                        assert_eq!(t, new_token, "stale watch fired for a reused fd")
                    }
                    other => panic!("expected Readable({new_token}), got {other:?}"),
                }
                assert!(
                    rx.try_recv().is_err(),
                    "exactly one event per round (round {round})"
                );
                reactor.deregister(new_token);
            }
            reactor.stop();
        }
    }

    #[test]
    fn stop_joins_reactor_thread() {
        for backend in backends() {
            let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
            let addr = acceptor.local_addr();
            let _client = TcpConn::connect(&addr).unwrap();
            let server = acceptor.accept().unwrap();
            let (reactor, _rx) = test_reactor(backend);
            reactor.register(server.raw_fd().unwrap(), 1);
            reactor.stop();
            assert!(
                reactor.thread.lock().is_none(),
                "stop() must take and join the thread handle"
            );
        }
    }

    /// Regression: a refused backend registration (a regular-file fd
    /// under epoll) fails the watch *after* the control lock is
    /// released. The Abort drain re-enters the driver's remove path —
    /// modelled here by calling `deregister` from inside the drain —
    /// which takes `self.shared` on the reactor thread and used to
    /// self-deadlock, hanging the reactor and `stop()` forever.
    #[cfg(target_os = "linux")]
    #[test]
    fn refused_registration_aborts_drain_without_deadlock() {
        let path = std::env::temp_dir().join("flux-net-epoll-refused.tmp");
        let file = std::fs::File::create(&path).unwrap();
        let (reactor, _rx) = test_reactor(PollerBackend::Epoll);
        assert_eq!(reactor.backend_name(), "epoll");

        let (done_tx, done_rx) = unbounded();
        let inner = reactor.clone();
        let drain: DrainFn = Box::new(move |call| {
            if matches!(call, DrainCall::Abort) {
                inner.deregister(9); // the driver's remove path re-enters here
                let _ = done_tx.send(());
            }
            DrainResult::Failed
        });
        use std::os::fd::AsRawFd as _;
        reactor.register_write(file.as_raw_fd(), 9, drain);
        assert!(
            done_rx.recv_timeout(Duration::from_secs(2)).is_ok(),
            "abort drain never completed: reactor self-deadlocked on the control lock"
        );
        reactor.stop();
        let _ = std::fs::remove_file(&path);
    }

    /// Regression: a stale caller whose slot has already been
    /// re-registered by a newer token must be refused — reusing the
    /// tenant's liveness cell for the stale token would permanently
    /// kill the live connection's watch (the delayed-arm race: arm(A)
    /// passes its driver check, A is removed, its slot reused by B and
    /// armed, then the stale arm(A) resumes).
    #[test]
    fn stale_registrant_cannot_kill_the_slots_new_tenant() {
        for backend in backends() {
            let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
            let addr = acceptor.local_addr();
            let (reactor, mut rx) = test_reactor(backend);
            // Two generations of the same driver slot.
            let token_a = (1u64 << 32) | 42;
            let token_b = (2u64 << 32) | 42;
            let _a_client = TcpConn::connect(&addr).unwrap();
            let a_server = acceptor.accept().unwrap();
            reactor.register(a_server.raw_fd().unwrap(), token_a);
            reactor.deregister(token_a); // driver removes A, then frees the slot
            let mut b_client = TcpConn::connect(&addr).unwrap();
            let b_server = acceptor.accept().unwrap();
            reactor.register(b_server.raw_fd().unwrap(), token_b);
            // The stale A caller resumes after B went live: refused.
            reactor.register(a_server.raw_fd().unwrap(), token_a);
            std::thread::sleep(Duration::from_millis(30));
            b_client.write_all(b"x").unwrap();
            assert_eq!(
                rx.recv_timeout(Duration::from_secs(2)),
                Ok(DriverEvent::Readable(token_b)),
                "tenant watch must survive the stale registrant ({})",
                reactor.backend_name()
            );
            assert!(
                rx.try_recv().is_err(),
                "and nothing fires for the stale token"
            );
            reactor.stop();
        }
    }

    /// The backend chosen matches the request (with fallback resolved at
    /// construction, before the thread starts).
    #[test]
    fn backend_name_reports_resolved_backend() {
        let (reactor, _rx) = test_reactor(PollerBackend::Poll);
        assert_eq!(reactor.backend_name(), "poll");
        assert!(!reactor.backend_fell_back());
        reactor.stop();
        #[cfg(target_os = "linux")]
        {
            let (reactor, _rx) = test_reactor(PollerBackend::Epoll);
            assert_eq!(reactor.backend_name(), "epoll");
            assert!(!reactor.backend_fell_back());
            reactor.stop();
            // Uring either resolves to itself or honestly reports the
            // epoll fallback — never a silent mismatch.
            let (reactor, _rx) = test_reactor(PollerBackend::Uring);
            if crate::poller::uring_available() {
                assert_eq!(reactor.backend_name(), "uring");
                assert!(!reactor.backend_fell_back());
            } else {
                assert_eq!(reactor.backend_name(), "epoll");
                assert!(reactor.backend_fell_back());
            }
            reactor.stop();
        }
    }

    /// A burst of readable sockets arrives as one batch: the reactor
    /// ships every Readable of a wait round in a single delivery.
    #[test]
    fn burst_of_readables_is_batched() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let (tx, rx) = unbounded();
        let reactor = Reactor::new(tx, Arc::new(BatchPool::new(4)), PollerBackend::default());
        let mut clients = Vec::new();
        let mut servers = Vec::new();
        for i in 0..16u64 {
            let mut c = TcpConn::connect(&addr).unwrap();
            let s = acceptor.accept().unwrap();
            // Data first, registration after: every socket is already
            // readable when the reactor first polls it.
            c.write_all(b"!").unwrap();
            clients.push(c);
            servers.push(s);
            let _ = i;
        }
        for (i, s) in servers.iter().enumerate() {
            reactor.register(s.raw_fd().unwrap(), i as Token);
        }
        let mut got = 0usize;
        let mut deliveries = 0usize;
        let deadline = Instant::now() + Duration::from_secs(2);
        while got < 16 && Instant::now() < deadline {
            match rx.recv_timeout(Duration::from_millis(200)) {
                Ok(Delivery::Batch(b)) => {
                    got += b.len();
                    deliveries += 1;
                }
                Ok(Delivery::One(_)) => {
                    got += 1;
                    deliveries += 1;
                }
                Ok(Delivery::Coalesced) => unreachable!("reactor never coalesces"),
                Err(_) => break,
            }
        }
        assert_eq!(got, 16, "all sockets reported");
        assert!(
            deliveries < 16,
            "a burst must coalesce into batches (got {deliveries} deliveries for 16 events)"
        );
        reactor.stop();
    }
}
