//! A readiness reactor over `poll(2)`: one thread multiplexes every
//! registered file descriptor, for **both** directions.
//!
//! The paper's event-driven runtime simulated asynchronous I/O with a
//! helper thread wrapped around `select`; the seed reproduction took the
//! same shortcut *per connection*, which silently degenerated into
//! thread-per-connection. This module is the real thing: the
//! [`ConnDriver`](crate::driver::ConnDriver) registers per-token
//! *interest* and a single `flux-net-reactor` thread parks in one
//! `poll(2)` call across all of it. The watch table is interest-based —
//! each token carries a `POLLIN | POLLOUT` bit set:
//!
//! * **Read interest** is one-shot, mirroring the driver's `arm`
//!   contract: a readable (or EOF'd) socket emits
//!   [`DriverEvent::Readable`](crate::driver::DriverEvent) and the
//!   `POLLIN` bit is cleared until the next `arm`.
//! * **Write interest** carries a *drain closure* supplied by the
//!   driver. On `POLLOUT` the reactor calls it to flush that
//!   connection's output buffer (batched: the drain writes until
//!   `WouldBlock`); the bit stays armed until the buffer empties, then
//!   the driver's completion bookkeeping emits `WriteDone`. Response
//!   transmission therefore never occupies an I/O worker thread.
//!
//! **fd-reuse safety.** Deregistration is a *synchronous* update to a
//! shared liveness table tagged with a per-registration generation:
//! [`Reactor::deregister`] removes the token's generation before the
//! caller can drop (and the kernel can reuse) the file descriptor, and
//! the reactor thread checks the generation before delivering any event
//! or running any drain. A stale watch — one whose fd the kernel has
//! already handed to a newly accepted connection — therefore delivers
//! nothing; it is purged the first time the thread looks at it.
//!
//! The reactor wakes for control-plane changes (register/deregister/
//! stop) through a self-pipe, so registrations made while it is parked
//! in `poll` take effect immediately. [`Reactor::stop`] joins the
//! thread, which exits promptly on the self-pipe wakeup, so no reactor
//! thread can outlive the driver that spawned it.

#![cfg(unix)]

use crate::driver::{DriverEvent, Token};
use crossbeam::channel::Sender;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: RawFd,
    events: libc_shim::c_short,
    revents: libc_shim::c_short,
}

/// The tiny slice of libc the reactor needs, declared directly so the
/// offline build does not depend on the `libc` crate.
#[allow(non_camel_case_types)]
mod libc_shim {
    pub type c_short = i16;
    pub type c_int = i32;
    pub type nfds_t = std::ffi::c_ulong;

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;
    pub const POLLNVAL: c_short = 0x020;

    extern "C" {
        pub fn poll(fds: *mut super::PollFd, nfds: nfds_t, timeout: c_int) -> c_int;
    }
}

/// How the reactor invokes a write-drain closure.
pub(crate) enum DrainCall {
    /// The socket reported writable: flush as much as it accepts.
    Drain,
    /// The watch is being discarded (poll failure): fail the write so
    /// the driver emits `WriteFailed` instead of leaving it in limbo.
    Abort,
}

/// What a drain closure reports back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DrainResult {
    /// Output buffer empty: clear `POLLOUT` interest.
    Complete,
    /// More bytes remain: keep `POLLOUT` armed.
    Pending,
    /// The connection lock is contended (a flow holds it across a
    /// blocking read): park `POLLOUT` briefly so the level-triggered
    /// readiness does not spin the reactor, then re-offer the drain.
    Busy,
    /// The connection broke: drop the watch.
    Failed,
}

/// Flushes one connection's output buffer; owned by the watch table and
/// called only from the reactor thread. The closure holds the shared
/// connection handle, which also keeps the fd open (and hence
/// un-reusable) until the watch itself is discarded.
pub(crate) type DrainFn = Box<dyn FnMut(DrainCall) -> DrainResult + Send>;

enum Control {
    /// Arm a one-shot readability watch on `fd` for `(token, gen)`.
    ReadInterest(RawFd, Token, u64),
    /// Arm a write-drain watch on `fd` for `(token, gen)`.
    WriteInterest(RawFd, Token, u64, DrainFn),
    /// Drop any watch for `token` (connection removed).
    Deregister(Token),
}

struct Shared {
    control: Vec<Control>,
    thread_started: bool,
}

/// One token's entry in the reactor thread's watch table.
struct Watch {
    fd: RawFd,
    gen: u64,
    /// `POLLIN | POLLOUT` bit set currently armed.
    interest: libc_shim::c_short,
    drain: Option<DrainFn>,
    /// While set (and in the future), `POLLOUT` is masked from the poll
    /// set — a [`DrainResult::Busy`] backoff.
    parked_until: Option<std::time::Instant>,
}

/// Fetches (or creates) `token`'s watch entry for generation `gen`,
/// replacing a stale entry from a prior registration wholesale.
fn upsert_watch(
    watches: &mut HashMap<Token, Watch>,
    fd: RawFd,
    token: Token,
    gen: u64,
) -> &mut Watch {
    let w = watches.entry(token).or_insert(Watch {
        fd,
        gen,
        interest: 0,
        drain: None,
        parked_until: None,
    });
    if w.gen != gen {
        *w = Watch {
            fd,
            gen,
            interest: 0,
            drain: None,
            parked_until: None,
        };
    }
    w
}

/// One thread, many sockets: the poll-based readiness multiplexer.
pub struct Reactor {
    shared: Mutex<Shared>,
    /// Current generation per live token. Deregistration removes the
    /// entry *synchronously*, before the fd can close — the reactor
    /// thread delivers nothing for a token/generation not found here.
    live: Mutex<HashMap<Token, u64>>,
    next_gen: AtomicU64,
    /// Write end of the self-pipe; a byte here interrupts `poll`.
    wake: Mutex<Option<std::io::PipeWriter>>,
    /// The reactor thread, joined by [`Reactor::stop`].
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    stopping: AtomicBool,
    events_delivered: AtomicU64,
    tx: Sender<DriverEvent>,
}

impl Reactor {
    pub(crate) fn new(tx: Sender<DriverEvent>) -> Arc<Self> {
        Arc::new(Reactor {
            shared: Mutex::new(Shared {
                control: Vec::new(),
                thread_started: false,
            }),
            live: Mutex::new(HashMap::new()),
            next_gen: AtomicU64::new(1),
            wake: Mutex::new(None),
            thread: Mutex::new(None),
            stopping: AtomicBool::new(false),
            events_delivered: AtomicU64::new(0),
            tx,
        })
    }

    /// Number of readiness (read) events the reactor has delivered
    /// (test and stats hook).
    pub fn events_delivered(&self) -> u64 {
        self.events_delivered.load(Ordering::Relaxed)
    }

    /// The token's current generation, allocating one if this is its
    /// first registration since the last deregister.
    fn live_gen(&self, token: Token) -> u64 {
        *self
            .live
            .lock()
            .entry(token)
            .or_insert_with(|| self.next_gen.fetch_add(1, Ordering::Relaxed))
    }

    /// Arms a one-shot readability watch. The reactor thread is spawned
    /// lazily on the first registration.
    pub(crate) fn register(self: &Arc<Self>, fd: RawFd, token: Token) {
        let gen = self.live_gen(token);
        let mut shared = self.shared.lock();
        shared.control.push(Control::ReadInterest(fd, token, gen));
        self.ensure_thread(&mut shared);
        drop(shared);
        self.wake_up();
    }

    /// Arms a write-drain watch: `drain` is called from the reactor
    /// thread whenever the socket reports writable, until it returns
    /// [`DrainResult::Complete`] or [`DrainResult::Failed`].
    pub(crate) fn register_write(self: &Arc<Self>, fd: RawFd, token: Token, drain: DrainFn) {
        let gen = self.live_gen(token);
        let mut shared = self.shared.lock();
        shared
            .control
            .push(Control::WriteInterest(fd, token, gen, drain));
        self.ensure_thread(&mut shared);
        drop(shared);
        self.wake_up();
    }

    /// Drops any watch for `token`. The liveness entry is removed
    /// *before* this returns, so once `deregister` completes the caller
    /// may close the fd: even if the kernel reuses it immediately, the
    /// stale watch's generation no longer matches and it delivers
    /// nothing.
    pub(crate) fn deregister(&self, token: Token) {
        self.live.lock().remove(&token);
        let mut shared = self.shared.lock();
        if !shared.thread_started {
            return;
        }
        shared.control.push(Control::Deregister(token));
        drop(shared);
        self.wake_up();
    }

    /// Asks the reactor thread to exit and joins it (the self-pipe
    /// wakeup bounds the wait to one poll round).
    pub(crate) fn stop(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        self.wake_up();
        if let Some(handle) = self.thread.lock().take() {
            if handle.thread().id() != std::thread::current().id() {
                let _ = handle.join();
            }
        }
    }

    fn wake_up(&self) {
        if let Some(w) = self.wake.lock().as_mut() {
            let _ = w.write(&[1]);
        }
    }

    fn ensure_thread(self: &Arc<Self>, shared: &mut Shared) {
        if shared.thread_started {
            return;
        }
        shared.thread_started = true;
        let (pipe_rx, pipe_tx) = std::io::pipe().expect("reactor self-pipe");
        *self.wake.lock() = Some(pipe_tx);
        let this = self.clone();
        let handle = std::thread::Builder::new()
            .name("flux-net-reactor".into())
            .spawn(move || this.run(pipe_rx))
            .expect("spawn reactor thread");
        *self.thread.lock() = Some(handle);
    }

    /// True when `(token, gen)` is still the current registration.
    fn is_live(&self, token: Token, gen: u64) -> bool {
        self.live.lock().get(&token) == Some(&gen)
    }

    fn run(self: Arc<Self>, mut pipe_rx: std::io::PipeReader) {
        let wake_fd = pipe_rx.as_raw_fd();
        let mut watches: HashMap<Token, Watch> = HashMap::new();
        let mut pollfds: Vec<PollFd> = Vec::new();
        let mut tokens: Vec<Token> = Vec::new();
        loop {
            {
                let mut shared = self.shared.lock();
                for ctl in shared.control.drain(..) {
                    match ctl {
                        Control::ReadInterest(fd, token, gen) => {
                            if !self.is_live(token, gen) {
                                continue; // raced with deregister
                            }
                            upsert_watch(&mut watches, fd, token, gen).interest |=
                                libc_shim::POLLIN;
                        }
                        Control::WriteInterest(fd, token, gen, drain) => {
                            if !self.is_live(token, gen) {
                                continue;
                            }
                            let w = upsert_watch(&mut watches, fd, token, gen);
                            w.interest |= libc_shim::POLLOUT;
                            w.drain = Some(drain);
                        }
                        Control::Deregister(token) => {
                            watches.remove(&token);
                        }
                    }
                }
            }
            if self.stopping.load(Ordering::SeqCst) {
                return;
            }

            pollfds.clear();
            tokens.clear();
            pollfds.push(PollFd {
                fd: wake_fd,
                events: libc_shim::POLLIN,
                revents: 0,
            });
            let now = std::time::Instant::now();
            let mut nearest_park: Option<std::time::Instant> = None;
            for (&token, watch) in &mut watches {
                let mut events = watch.interest;
                if let Some(until) = watch.parked_until {
                    if until <= now {
                        watch.parked_until = None;
                    } else {
                        // Busy backoff: keep the fd in the set (errors
                        // must still surface) but without POLLOUT.
                        events &= !libc_shim::POLLOUT;
                        nearest_park =
                            Some(nearest_park.map_or(until, |t: std::time::Instant| t.min(until)));
                    }
                }
                pollfds.push(PollFd {
                    fd: watch.fd,
                    events,
                    revents: 0,
                });
                tokens.push(token);
            }

            // Bounded timeout: a backstop for a missed wake-up byte,
            // shortened to the nearest Busy-park expiry so deferred
            // drains resume promptly.
            let timeout_ms: libc_shim::c_int = match nearest_park {
                Some(t) => t
                    .saturating_duration_since(now)
                    .as_millis()
                    .clamp(1, 250)
                    .try_into()
                    .unwrap_or(250),
                None => 250,
            };
            let n = unsafe {
                libc_shim::poll(
                    pollfds.as_mut_ptr(),
                    pollfds.len() as libc_shim::nfds_t,
                    timeout_ms,
                )
            };
            if n < 0 {
                let err = std::io::Error::last_os_error();
                if err.kind() == std::io::ErrorKind::Interrupted {
                    continue;
                }
                // Unexpected poll failure: report every watched socket
                // so flows can observe the error on read, fail pending
                // writes, then retire the table.
                for (token, mut watch) in watches.drain() {
                    if !self.is_live(token, watch.gen) {
                        continue;
                    }
                    if watch.interest & libc_shim::POLLIN != 0 {
                        let _ = self.tx.send(DriverEvent::Readable(token));
                    }
                    if let Some(drain) = watch.drain.as_mut() {
                        let _ = drain(DrainCall::Abort);
                    }
                }
                continue;
            }
            if pollfds[0].revents != 0 {
                // Drain the self-pipe; control is re-read next loop.
                let mut buf = [0u8; 64];
                let _ = pipe_rx.read(&mut buf);
            }
            const ERRS: libc_shim::c_short =
                libc_shim::POLLERR | libc_shim::POLLHUP | libc_shim::POLLNVAL;
            for (pfd, &token) in pollfds[1..].iter().zip(&tokens) {
                if pfd.revents == 0 {
                    continue;
                }
                let Some(watch) = watches.get_mut(&token) else {
                    continue;
                };
                if !self.is_live(token, watch.gen) {
                    // Deregistered (possibly with the fd already reused
                    // by a new connection): deliver nothing.
                    watches.remove(&token);
                    continue;
                }
                if watch.interest & libc_shim::POLLIN != 0
                    && pfd.revents & (libc_shim::POLLIN | ERRS) != 0
                {
                    // One-shot: the driver re-arms after the flow reads.
                    watch.interest &= !libc_shim::POLLIN;
                    self.events_delivered.fetch_add(1, Ordering::Relaxed);
                    let _ = self.tx.send(DriverEvent::Readable(token));
                }
                if watch.interest & libc_shim::POLLOUT != 0
                    && watch.parked_until.is_none()
                    && pfd.revents & (libc_shim::POLLOUT | ERRS) != 0
                {
                    let result = watch
                        .drain
                        .as_mut()
                        .map(|d| d(DrainCall::Drain))
                        .unwrap_or(DrainResult::Failed);
                    match result {
                        DrainResult::Pending => {}
                        DrainResult::Busy => {
                            watch.parked_until = Some(
                                std::time::Instant::now() + std::time::Duration::from_millis(5),
                            );
                        }
                        DrainResult::Complete | DrainResult::Failed => {
                            watch.interest &= !libc_shim::POLLOUT;
                            watch.drain = None;
                        }
                    }
                }
                if watch.interest == 0 {
                    watches.remove(&token);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::DriverEvent;
    use crate::tcp::{TcpAcceptor, TcpConn};
    use crate::traits::Listener;
    use crossbeam::channel::unbounded;
    use std::time::Duration;

    #[test]
    fn reactor_reports_readable_and_eof() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let mut c1 = TcpConn::connect(&addr).unwrap();
        let s1 = acceptor.accept().unwrap();
        let c2 = TcpConn::connect(&addr).unwrap();
        let s2 = acceptor.accept().unwrap();

        let (tx, rx) = unbounded();
        let reactor = Reactor::new(tx);
        reactor.register(s1.raw_fd().unwrap(), 1);
        reactor.register(s2.raw_fd().unwrap(), 2);
        assert!(
            rx.recv_timeout(Duration::from_millis(50)).is_err(),
            "nothing readable yet"
        );

        c1.write_all(b"x").unwrap();
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(2)),
            Ok(DriverEvent::Readable(1))
        );
        drop(c2); // EOF wakes the second watch
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(2)),
            Ok(DriverEvent::Readable(2))
        );
        assert_eq!(reactor.events_delivered(), 2);
        reactor.stop();
    }

    #[test]
    fn deregister_suppresses_events() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let mut client = TcpConn::connect(&addr).unwrap();
        let server = acceptor.accept().unwrap();

        let (tx, rx) = unbounded();
        let reactor = Reactor::new(tx);
        reactor.register(server.raw_fd().unwrap(), 7);
        reactor.deregister(7);
        std::thread::sleep(Duration::from_millis(20));
        client.write_all(b"x").unwrap();
        assert!(
            rx.recv_timeout(Duration::from_millis(100)).is_err(),
            "deregistered watch must not fire"
        );
        reactor.stop();
    }

    /// The fd-reuse race at the reactor level: deregister a token, close
    /// its fd, and immediately register the (very likely reused) fd
    /// under a new token. The stale generation must deliver nothing; the
    /// new registration must fire.
    #[test]
    fn stale_generation_never_fires_on_reused_fd() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let (tx, rx) = unbounded();
        let reactor = Reactor::new(tx);
        for round in 0..20u64 {
            let old_token = 1000 + round * 2;
            let new_token = 1001 + round * 2;
            let old_client = TcpConn::connect(&addr).unwrap();
            let old_server = acceptor.accept().unwrap();
            reactor.register(old_server.raw_fd().unwrap(), old_token);
            // Tear the socket down immediately: the watch may still be
            // in the reactor's table (its Deregister is only queued)
            // when the fd closes and gets reused below. No data ever
            // arrived while `old_token` was live, so any Readable for it
            // is a stale delivery.
            reactor.deregister(old_token);
            drop(old_server); // fd closes; the kernel may reuse it now
            drop(old_client);
            let mut new_client = TcpConn::connect(&addr).unwrap();
            let new_server = acceptor.accept().unwrap();
            reactor.register(new_server.raw_fd().unwrap(), new_token);
            new_client.write_all(b"fresh").unwrap();
            match rx.recv_timeout(Duration::from_secs(2)) {
                Ok(DriverEvent::Readable(t)) => {
                    assert_eq!(t, new_token, "stale watch fired for a reused fd")
                }
                other => panic!("expected Readable({new_token}), got {other:?}"),
            }
            assert!(
                rx.try_recv().is_err(),
                "exactly one event per round (round {round})"
            );
            reactor.deregister(new_token);
        }
        reactor.stop();
    }

    #[test]
    fn stop_joins_reactor_thread() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let _client = TcpConn::connect(&addr).unwrap();
        let server = acceptor.accept().unwrap();
        let (tx, _rx) = unbounded();
        let reactor = Reactor::new(tx);
        reactor.register(server.raw_fd().unwrap(), 1);
        reactor.stop();
        assert!(
            reactor.thread.lock().is_none(),
            "stop() must take and join the thread handle"
        );
    }
}
