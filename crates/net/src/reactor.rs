//! A readiness reactor over `poll(2)`: one thread multiplexes every
//! registered file descriptor.
//!
//! The paper's event-driven runtime simulated asynchronous I/O with a
//! helper thread wrapped around `select`; the seed reproduction took the
//! same shortcut *per connection*, which silently degenerated into
//! thread-per-connection. This module is the real thing: the
//! [`ConnDriver`](crate::driver::ConnDriver) registers `(fd, token)`
//! pairs and a single `flux-net-reactor` thread parks in one `poll(2)`
//! call across all of them, emitting
//! [`DriverEvent::Readable`](crate::driver::DriverEvent) into the
//! driver's unified event stream as sockets become readable. Watches are
//! one-shot, mirroring the driver's `arm` contract.
//!
//! The reactor wakes for control-plane changes (register/deregister/
//! stop) through a self-pipe, so registrations made while it is parked
//! in `poll` take effect immediately.

#![cfg(unix)]

use crate::driver::{DriverEvent, Token};
use crossbeam::channel::Sender;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: RawFd,
    events: libc_shim::c_short,
    revents: libc_shim::c_short,
}

/// The tiny slice of libc the reactor needs, declared directly so the
/// offline build does not depend on the `libc` crate.
#[allow(non_camel_case_types)]
mod libc_shim {
    pub type c_short = i16;
    pub type c_int = i32;
    pub type nfds_t = std::ffi::c_ulong;

    pub const POLLIN: c_short = 0x001;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;
    pub const POLLNVAL: c_short = 0x020;

    extern "C" {
        pub fn poll(fds: *mut super::PollFd, nfds: nfds_t, timeout: c_int) -> c_int;
    }
}

enum Control {
    /// Arm a one-shot readability watch on `fd` for `token`.
    Register(RawFd, Token),
    /// Drop any watch for `token` (connection removed).
    Deregister(Token),
}

struct Shared {
    control: Vec<Control>,
    thread_started: bool,
}

/// One thread, many sockets: the poll-based readiness multiplexer.
pub struct Reactor {
    shared: Mutex<Shared>,
    /// Write end of the self-pipe; a byte here interrupts `poll`.
    wake: Mutex<Option<std::io::PipeWriter>>,
    stopping: AtomicBool,
    events_delivered: AtomicU64,
    tx: Sender<DriverEvent>,
}

impl Reactor {
    pub(crate) fn new(tx: Sender<DriverEvent>) -> Arc<Self> {
        Arc::new(Reactor {
            shared: Mutex::new(Shared {
                control: Vec::new(),
                thread_started: false,
            }),
            wake: Mutex::new(None),
            stopping: AtomicBool::new(false),
            events_delivered: AtomicU64::new(0),
            tx,
        })
    }

    /// Number of readiness events the reactor has delivered (test and
    /// stats hook).
    pub fn events_delivered(&self) -> u64 {
        self.events_delivered.load(Ordering::Relaxed)
    }

    /// Arms a one-shot readability watch. The reactor thread is spawned
    /// lazily on the first registration.
    pub(crate) fn register(self: &Arc<Self>, fd: RawFd, token: Token) {
        let mut shared = self.shared.lock();
        shared.control.push(Control::Register(fd, token));
        self.ensure_thread(&mut shared);
        drop(shared);
        self.wake_up();
    }

    /// Drops any pending watch for `token` (the fd may already be
    /// closed; the reactor must stop polling it).
    pub(crate) fn deregister(&self, token: Token) {
        let mut shared = self.shared.lock();
        if !shared.thread_started {
            return;
        }
        shared.control.push(Control::Deregister(token));
        drop(shared);
        self.wake_up();
    }

    /// Asks the reactor thread to exit.
    pub(crate) fn stop(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        self.wake_up();
    }

    fn wake_up(&self) {
        if let Some(w) = self.wake.lock().as_mut() {
            let _ = w.write(&[1]);
        }
    }

    fn ensure_thread(self: &Arc<Self>, shared: &mut Shared) {
        if shared.thread_started {
            return;
        }
        shared.thread_started = true;
        let (pipe_rx, pipe_tx) = std::io::pipe().expect("reactor self-pipe");
        *self.wake.lock() = Some(pipe_tx);
        let this = self.clone();
        std::thread::Builder::new()
            .name("flux-net-reactor".into())
            .spawn(move || this.run(pipe_rx))
            .expect("spawn reactor thread");
    }

    fn run(self: Arc<Self>, mut pipe_rx: std::io::PipeReader) {
        let wake_fd = pipe_rx.as_raw_fd();
        let mut watches: HashMap<Token, RawFd> = HashMap::new();
        let mut pollfds: Vec<PollFd> = Vec::new();
        let mut tokens: Vec<Token> = Vec::new();
        loop {
            {
                let mut shared = self.shared.lock();
                for ctl in shared.control.drain(..) {
                    match ctl {
                        Control::Register(fd, token) => {
                            watches.insert(token, fd);
                        }
                        Control::Deregister(token) => {
                            watches.remove(&token);
                        }
                    }
                }
            }
            if self.stopping.load(Ordering::SeqCst) {
                return;
            }

            pollfds.clear();
            tokens.clear();
            pollfds.push(PollFd {
                fd: wake_fd,
                events: libc_shim::POLLIN,
                revents: 0,
            });
            for (&token, &fd) in &watches {
                pollfds.push(PollFd {
                    fd,
                    events: libc_shim::POLLIN,
                    revents: 0,
                });
                tokens.push(token);
            }

            // Bounded timeout: a backstop for a missed wake-up byte.
            let n = unsafe {
                libc_shim::poll(
                    pollfds.as_mut_ptr(),
                    pollfds.len() as libc_shim::nfds_t,
                    250,
                )
            };
            if n < 0 {
                let err = std::io::Error::last_os_error();
                if err.kind() == std::io::ErrorKind::Interrupted {
                    continue;
                }
                // Unexpected poll failure: report every watched socket
                // so flows can observe the error on read, then retire.
                for &token in watches.keys() {
                    let _ = self.tx.send(DriverEvent::Readable(token));
                }
                watches.clear();
                continue;
            }
            if pollfds[0].revents != 0 {
                // Drain the self-pipe; control is re-read next loop.
                let mut buf = [0u8; 64];
                let _ = pipe_rx.read(&mut buf);
            }
            const READY: libc_shim::c_short =
                libc_shim::POLLIN | libc_shim::POLLERR | libc_shim::POLLHUP | libc_shim::POLLNVAL;
            for (pfd, &token) in pollfds[1..].iter().zip(&tokens) {
                if pfd.revents & READY != 0 {
                    // One-shot: the driver re-arms after the flow reads.
                    watches.remove(&token);
                    self.events_delivered.fetch_add(1, Ordering::Relaxed);
                    let _ = self.tx.send(DriverEvent::Readable(token));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::DriverEvent;
    use crate::tcp::{TcpAcceptor, TcpConn};
    use crate::traits::Listener;
    use crossbeam::channel::unbounded;
    use std::time::Duration;

    #[test]
    fn reactor_reports_readable_and_eof() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let mut c1 = TcpConn::connect(&addr).unwrap();
        let s1 = acceptor.accept().unwrap();
        let c2 = TcpConn::connect(&addr).unwrap();
        let s2 = acceptor.accept().unwrap();

        let (tx, rx) = unbounded();
        let reactor = Reactor::new(tx);
        reactor.register(s1.raw_fd().unwrap(), 1);
        reactor.register(s2.raw_fd().unwrap(), 2);
        assert!(
            rx.recv_timeout(Duration::from_millis(50)).is_err(),
            "nothing readable yet"
        );

        c1.write_all(b"x").unwrap();
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(2)),
            Ok(DriverEvent::Readable(1))
        );
        drop(c2); // EOF wakes the second watch
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(2)),
            Ok(DriverEvent::Readable(2))
        );
        assert_eq!(reactor.events_delivered(), 2);
        reactor.stop();
    }

    #[test]
    fn deregister_suppresses_events() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let mut client = TcpConn::connect(&addr).unwrap();
        let server = acceptor.accept().unwrap();

        let (tx, rx) = unbounded();
        let reactor = Reactor::new(tx);
        reactor.register(server.raw_fd().unwrap(), 7);
        reactor.deregister(7);
        std::thread::sleep(Duration::from_millis(20));
        client.write_all(b"x").unwrap();
        assert!(
            rx.recv_timeout(Duration::from_millis(100)).is_err(),
            "deregistered watch must not fire"
        );
        reactor.stop();
    }
}
