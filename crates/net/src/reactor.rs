//! The readiness reactor: one thread multiplexes every registered file
//! descriptor, for **both** directions, over a pluggable [`Poller`]
//! backend (`poll(2)` or `epoll(7)` — see [`crate::poller`]).
//!
//! The paper's event-driven runtime simulated asynchronous I/O with a
//! helper thread wrapped around `select`; the seed reproduction took the
//! same shortcut *per connection*, which silently degenerated into
//! thread-per-connection. This module is the real thing: the
//! [`ConnDriver`](crate::driver::ConnDriver) registers per-token
//! *interest* and a single `flux-net-reactor` thread parks in one
//! backend `wait` call across all of it. The watch table is
//! interest-based — each token carries a read/write interest pair:
//!
//! * **Read interest** is one-shot, mirroring the driver's `arm`
//!   contract: a readable (or EOF'd) socket emits
//!   [`DriverEvent::Readable`](crate::driver::DriverEvent) and the read
//!   bit is cleared until the next `arm`.
//! * **Write interest** carries a *drain closure* supplied by the
//!   driver. On writability the reactor calls it to flush that
//!   connection's output buffer (batched: the drain writes until
//!   `WouldBlock`); the bit stays armed until the buffer empties, then
//!   the driver's completion bookkeeping emits `WriteDone`. Response
//!   transmission therefore never occupies an I/O worker thread.
//!
//! **Division of labour.** The backend owns only the mechanism of
//! waiting on fds; every invariant that used to live in the poll loop
//! is enforced *here*, once, above the [`Poller`] trait — so both
//! backends (and any future kqueue/io_uring one) inherit it:
//!
//! * **fd-reuse safety.** Deregistration is a *synchronous* update to a
//!   shared liveness table tagged with a per-registration generation:
//!   [`Reactor::deregister`] removes the token's generation before the
//!   caller can drop (and the kernel can reuse) the file descriptor,
//!   and the reactor thread checks the generation before delivering any
//!   event or running any drain. A stale watch delivers nothing; it is
//!   purged the first time the thread looks at it.
//! * **One-shot re-arm.** After the backend reports an fd, the watch is
//!   disarmed until the reactor re-issues `modify` — which it does
//!   exactly once per reported fd, with the post-delivery interest.
//! * **Busy parking.** A drain that finds the connection lock contended
//!   parks the watch's write side for a few milliseconds instead of
//!   spinning on level-triggered writability: a write-only watch is
//!   simply not re-armed until the park expires (the unpark pass issues
//!   the modify), while armed read interest stays live throughout — a
//!   park never delays read delivery. Events that arrive during a park
//!   still run the drain, so a broken connection retires immediately
//!   rather than bouncing unmaskable ERR/HUP readiness.
//!
//! The reactor wakes for control-plane changes (register/deregister/
//! stop) through a self-pipe registered with the same backend, so
//! registrations made while it is parked in `wait` take effect
//! immediately. [`Reactor::stop`] joins the thread, which exits
//! promptly on the self-pipe wakeup, so no reactor thread can outlive
//! the driver that spawned it.

#![cfg(unix)]

use crate::driver::{DriverEvent, Token};
use crate::poller::{create_poller, Interest, Poller, PollerBackend, PollerEvent};
use crossbeam::channel::Sender;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the reactor invokes a write-drain closure.
pub(crate) enum DrainCall {
    /// The socket reported writable: flush as much as it accepts.
    Drain,
    /// The watch is being discarded (backend failure): fail the write so
    /// the driver emits `WriteFailed` instead of leaving it in limbo.
    Abort,
}

/// What a drain closure reports back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DrainResult {
    /// Output buffer empty: clear write interest.
    Complete,
    /// More bytes remain: keep write interest armed.
    Pending,
    /// The connection lock is contended (a flow holds it across a
    /// blocking read): park write interest briefly so the
    /// level-triggered readiness does not spin the reactor, then
    /// re-offer the drain.
    Busy,
    /// The connection broke: drop the watch.
    Failed,
}

/// Flushes one connection's output buffer; owned by the watch table and
/// called only from the reactor thread. The closure holds the shared
/// connection handle, which also keeps the fd open (and hence
/// un-reusable) until the watch itself is discarded.
pub(crate) type DrainFn = Box<dyn FnMut(DrainCall) -> DrainResult + Send>;

enum Control {
    /// Arm a one-shot readability watch on `fd` for `(token, gen)`.
    ReadInterest(RawFd, Token, u64),
    /// Arm a write-drain watch on `fd` for `(token, gen)`.
    WriteInterest(RawFd, Token, u64, DrainFn),
    /// Drop any watch for `token` (connection removed).
    Deregister(Token),
}

struct Shared {
    control: Vec<Control>,
    thread_started: bool,
}

/// One token's entry in the reactor thread's watch table.
struct Watch {
    fd: RawFd,
    gen: u64,
    /// Read/write interest currently armed.
    interest: Interest,
    drain: Option<DrainFn>,
    /// While set (and in the future), write interest is masked from the
    /// backend — a [`DrainResult::Busy`] backoff.
    parked_until: Option<Instant>,
}

impl Watch {
    /// The interest actually handed to the backend: write is masked
    /// while the watch is Busy-parked (the fd stays registered so
    /// errors surface).
    fn effective(&self) -> Interest {
        Interest {
            read: self.interest.read,
            write: self.interest.write && self.parked_until.is_none(),
        }
    }
}

/// One thread, many sockets: the backend-agnostic readiness multiplexer.
pub struct Reactor {
    shared: Mutex<Shared>,
    /// Current generation per live token. Deregistration removes the
    /// entry *synchronously*, before the fd can close — the reactor
    /// thread delivers nothing for a token/generation not found here.
    live: Mutex<HashMap<Token, u64>>,
    next_gen: AtomicU64,
    /// Write end of the self-pipe; a byte here interrupts `wait`.
    wake: Mutex<Option<std::io::PipeWriter>>,
    /// True while a wake byte is in flight. Deduplicates `wake_up`
    /// calls so at most one byte is written per reactor round no
    /// matter how many control ops race ahead of the reactor (the
    /// round's 64-byte drain keeps the running total near zero) — the
    /// blocking write in `wake_up` therefore can never fill the pipe
    /// and stall, not even when the reactor thread itself deregisters
    /// a connection from inside an Abort drain (it is the pipe's only
    /// reader).
    wake_pending: AtomicBool,
    /// The reactor thread, joined by [`Reactor::stop`].
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// The backend, created eagerly (so fallback is resolved and
    /// [`Reactor::backend_name`] is stable) and moved into the thread
    /// on first registration.
    poller: Mutex<Option<Box<dyn Poller>>>,
    backend_name: &'static str,
    stopping: AtomicBool,
    events_delivered: AtomicU64,
    tx: Sender<DriverEvent>,
}

impl Reactor {
    pub(crate) fn new(tx: Sender<DriverEvent>, backend: PollerBackend) -> Arc<Self> {
        let poller = create_poller(backend);
        let backend_name = poller.name();
        Arc::new(Reactor {
            shared: Mutex::new(Shared {
                control: Vec::new(),
                thread_started: false,
            }),
            live: Mutex::new(HashMap::new()),
            next_gen: AtomicU64::new(1),
            wake: Mutex::new(None),
            wake_pending: AtomicBool::new(false),
            thread: Mutex::new(None),
            poller: Mutex::new(Some(poller)),
            backend_name,
            stopping: AtomicBool::new(false),
            events_delivered: AtomicU64::new(0),
            tx,
        })
    }

    /// Number of readiness (read) events the reactor has delivered
    /// (test and stats hook).
    pub fn events_delivered(&self) -> u64 {
        self.events_delivered.load(Ordering::Relaxed)
    }

    /// The backend actually in use (`"poll"` or `"epoll"`), after any
    /// fallback.
    pub fn backend_name(&self) -> &'static str {
        self.backend_name
    }

    /// The token's current generation, allocating one if this is its
    /// first registration since the last deregister.
    fn live_gen(&self, token: Token) -> u64 {
        *self
            .live
            .lock()
            .entry(token)
            .or_insert_with(|| self.next_gen.fetch_add(1, Ordering::Relaxed))
    }

    /// Arms a one-shot readability watch. The reactor thread is spawned
    /// lazily on the first registration.
    pub(crate) fn register(self: &Arc<Self>, fd: RawFd, token: Token) {
        let gen = self.live_gen(token);
        let mut shared = self.shared.lock();
        shared.control.push(Control::ReadInterest(fd, token, gen));
        self.ensure_thread(&mut shared);
        drop(shared);
        self.wake_up();
    }

    /// Arms a write-drain watch: `drain` is called from the reactor
    /// thread whenever the socket reports writable, until it returns
    /// [`DrainResult::Complete`] or [`DrainResult::Failed`].
    pub(crate) fn register_write(self: &Arc<Self>, fd: RawFd, token: Token, drain: DrainFn) {
        let gen = self.live_gen(token);
        let mut shared = self.shared.lock();
        shared
            .control
            .push(Control::WriteInterest(fd, token, gen, drain));
        self.ensure_thread(&mut shared);
        drop(shared);
        self.wake_up();
    }

    /// Drops any watch for `token`. The liveness entry is removed
    /// *before* this returns, so once `deregister` completes the caller
    /// may close the fd: even if the kernel reuses it immediately, the
    /// stale watch's generation no longer matches and it delivers
    /// nothing.
    pub(crate) fn deregister(&self, token: Token) {
        self.live.lock().remove(&token);
        if self.stopping.load(Ordering::SeqCst) {
            // The reactor thread is gone (or going): the liveness
            // removal above is the only part that still matters, and
            // queueing controls or writing the dead self-pipe would be
            // pure waste — `ConnDriver::stop`'s post-join cleanup
            // removes every remaining connection through this path.
            return;
        }
        let mut shared = self.shared.lock();
        if !shared.thread_started {
            return;
        }
        shared.control.push(Control::Deregister(token));
        drop(shared);
        self.wake_up();
    }

    /// Asks the reactor thread to exit and joins it (the self-pipe
    /// wakeup bounds the wait to one poll round).
    pub(crate) fn stop(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        self.wake_up();
        if let Some(handle) = self.thread.lock().take() {
            if handle.thread().id() != std::thread::current().id() {
                let _ = handle.join();
            }
        }
    }

    fn wake_up(&self) {
        if self.wake_pending.swap(true, Ordering::SeqCst) {
            // A byte is already in flight: the reactor will re-read
            // control at the top of its next round, which also covers
            // everything queued after that byte was written.
            return;
        }
        if let Some(w) = self.wake.lock().as_mut() {
            let _ = w.write(&[1]);
        }
    }

    fn ensure_thread(self: &Arc<Self>, shared: &mut Shared) {
        if shared.thread_started {
            return;
        }
        shared.thread_started = true;
        let (pipe_rx, pipe_tx) = std::io::pipe().expect("reactor self-pipe");
        *self.wake.lock() = Some(pipe_tx);
        let poller = self.poller.lock().take().expect("poller created once");
        let this = self.clone();
        let handle = std::thread::Builder::new()
            .name("flux-net-reactor".into())
            .spawn(move || this.run(pipe_rx, poller))
            .expect("spawn reactor thread");
        *self.thread.lock() = Some(handle);
    }

    /// True when `(token, gen)` is still the current registration.
    fn is_live(&self, token: Token, gen: u64) -> bool {
        self.live.lock().get(&token) == Some(&gen)
    }

    fn run(self: Arc<Self>, mut pipe_rx: std::io::PipeReader, mut poller: Box<dyn Poller>) {
        let wake_fd = pipe_rx.as_raw_fd();
        let _ = poller.add(wake_fd, Interest::READ);
        let mut watches: HashMap<Token, Watch> = HashMap::new();
        // The backend reports fds; this maps them back to tokens. Kept
        // in lockstep with `watches` (one fd per live watch).
        let mut fd_to_token: HashMap<RawFd, Token> = HashMap::new();
        // Tokens currently Busy-parked, scanned for expiry each round
        // (kept separate so an epoll wakeup stays O(ready + parked),
        // not O(watched)).
        let mut parked: Vec<Token> = Vec::new();
        let mut events: Vec<PollerEvent> = Vec::new();

        /// Removes a token's watch from every structure, including the
        /// backend registration, returning the watch for any
        /// notification the caller still owes.
        fn discard(
            watches: &mut HashMap<Token, Watch>,
            fd_to_token: &mut HashMap<RawFd, Token>,
            poller: &mut dyn Poller,
            token: Token,
        ) -> Option<Watch> {
            let w = watches.remove(&token)?;
            if fd_to_token.get(&w.fd) == Some(&token) {
                fd_to_token.remove(&w.fd);
                let _ = poller.delete(w.fd);
            }
            Some(w)
        }

        /// Fails a watch whose backend registration was refused (an fd
        /// the backend cannot multiplex, e.g. a regular file under
        /// epoll): the flow observes the error on its next read,
        /// pending writes abort, and the watch is discarded — the same
        /// treatment as a failed wait, so the one-completion-per-submit
        /// contract holds on every backend.
        fn fail_watch(
            this: &Reactor,
            watches: &mut HashMap<Token, Watch>,
            fd_to_token: &mut HashMap<RawFd, Token>,
            poller: &mut dyn Poller,
            token: Token,
        ) {
            let Some(mut w) = discard(watches, fd_to_token, poller, token) else {
                return;
            };
            if !this.is_live(token, w.gen) {
                return;
            }
            if w.interest.read {
                let _ = this.tx.send(DriverEvent::Readable(token));
            }
            if let Some(drain) = w.drain.as_mut() {
                let _ = drain(DrainCall::Abort);
            }
        }

        // Control entries are swapped out of `self.shared` and
        // processed from this buffer with the lock RELEASED: backend
        // syscalls must not serialize register/arm/submit_write callers
        // behind the mutex, and fail_watch's Abort drain re-enters the
        // driver — which calls Reactor::deregister and hence takes
        // `self.shared` again on this very thread (a self-deadlock if
        // the lock were still held). The swap leaves the drained Vec's
        // capacity behind for the producers.
        let mut pending: Vec<Control> = Vec::new();
        loop {
            // Allow the next wake byte BEFORE taking the control batch:
            // a producer that pushes after the swap below either sees
            // the flag cleared and writes a byte, or loses the flag
            // race to a producer whose byte is younger than this reset
            // — either way the next `wait` wakes and re-reads control,
            // so no registration waits out the backstop timeout.
            self.wake_pending.store(false, Ordering::SeqCst);
            std::mem::swap(&mut pending, &mut self.shared.lock().control);
            for ctl in pending.drain(..) {
                match ctl {
                    Control::ReadInterest(fd, token, gen) => {
                        if !self.is_live(token, gen) {
                            continue; // raced with deregister
                        }
                        let w = upsert_watch(&mut watches, &mut fd_to_token, fd, token, gen);
                        w.interest.read = true;
                        let eff = w.effective();
                        if poller.modify(fd, eff).is_err() {
                            fail_watch(&self, &mut watches, &mut fd_to_token, &mut *poller, token);
                        }
                    }
                    Control::WriteInterest(fd, token, gen, drain) => {
                        if !self.is_live(token, gen) {
                            continue;
                        }
                        let w = upsert_watch(&mut watches, &mut fd_to_token, fd, token, gen);
                        w.interest.write = true;
                        w.drain = Some(drain);
                        // A fresh drain supersedes any Busy backoff.
                        w.parked_until = None;
                        let eff = w.effective();
                        if poller.modify(fd, eff).is_err() {
                            fail_watch(&self, &mut watches, &mut fd_to_token, &mut *poller, token);
                        }
                    }
                    Control::Deregister(token) => {
                        let _ = discard(&mut watches, &mut fd_to_token, &mut *poller, token);
                    }
                }
            }
            if self.stopping.load(Ordering::SeqCst) {
                return;
            }

            // Un-park expired Busy backoffs (re-arming their write
            // interest) and find the nearest still-pending expiry.
            let now = Instant::now();
            let mut nearest_park: Option<Instant> = None;
            let mut unpark_failed: Vec<Token> = Vec::new();
            parked.retain(|&token| {
                let Some(w) = watches.get_mut(&token) else {
                    return false;
                };
                match w.parked_until {
                    Some(until) if until <= now => {
                        w.parked_until = None;
                        if poller.modify(w.fd, w.effective()).is_err() {
                            unpark_failed.push(token);
                        }
                        false
                    }
                    Some(until) => {
                        nearest_park = Some(nearest_park.map_or(until, |t: Instant| t.min(until)));
                        true
                    }
                    None => false,
                }
            });
            for token in unpark_failed {
                fail_watch(&self, &mut watches, &mut fd_to_token, &mut *poller, token);
            }

            // Bounded timeout: a backstop for a missed wake-up byte,
            // shortened to the nearest Busy-park expiry so deferred
            // drains resume promptly.
            let timeout = match nearest_park {
                Some(t) => t
                    .saturating_duration_since(now)
                    .clamp(Duration::from_millis(1), Duration::from_millis(250)),
                None => Duration::from_millis(250),
            };
            if let Err(err) = poller.wait(&mut events, timeout) {
                if err.kind() == std::io::ErrorKind::Interrupted {
                    continue;
                }
                // Unexpected backend failure: fail every watch, so
                // flows observe the error on read, pending writes
                // abort, and the table retires.
                let tokens: Vec<Token> = watches.keys().copied().collect();
                for token in tokens {
                    fail_watch(&self, &mut watches, &mut fd_to_token, &mut *poller, token);
                }
                parked.clear();
                continue;
            }

            for ev in events.iter().copied() {
                if ev.fd == wake_fd {
                    // Drain the self-pipe; control is re-read next loop.
                    let mut buf = [0u8; 64];
                    let _ = pipe_rx.read(&mut buf);
                    let _ = poller.modify(wake_fd, Interest::READ);
                    continue;
                }
                let Some(&token) = fd_to_token.get(&ev.fd) else {
                    // No watch claims this fd: drop the registration.
                    let _ = poller.delete(ev.fd);
                    continue;
                };
                let Some(watch) = watches.get_mut(&token) else {
                    fd_to_token.remove(&ev.fd);
                    let _ = poller.delete(ev.fd);
                    continue;
                };
                if !self.is_live(token, watch.gen) {
                    // Deregistered (possibly with the fd already reused
                    // by a new connection): deliver nothing.
                    let _ = discard(&mut watches, &mut fd_to_token, &mut *poller, token);
                    continue;
                }
                if watch.interest.read && ev.readable {
                    // One-shot: the driver re-arms after the flow reads.
                    watch.interest.read = false;
                    self.events_delivered.fetch_add(1, Ordering::Relaxed);
                    let _ = self.tx.send(DriverEvent::Readable(token));
                }
                if watch.interest.write && ev.writable {
                    // Busy-parked watches still reach here: ERR/HUP
                    // cannot be masked on either backend. Running the
                    // drain anyway means a broken connection fails its
                    // write and retires the watch instead of bouncing
                    // unmaskable hangup events for the whole park
                    // window; a still-contended lock just re-parks.
                    let was_parked = watch.parked_until.is_some();
                    let result = watch
                        .drain
                        .as_mut()
                        .map(|d| d(DrainCall::Drain))
                        .unwrap_or(DrainResult::Failed);
                    match result {
                        DrainResult::Pending => {
                            watch.parked_until = None;
                        }
                        DrainResult::Busy => {
                            watch.parked_until = Some(Instant::now() + Duration::from_millis(5));
                            if !was_parked {
                                parked.push(token);
                            }
                        }
                        DrainResult::Complete | DrainResult::Failed => {
                            watch.interest.write = false;
                            watch.drain = None;
                            watch.parked_until = None;
                        }
                    }
                }
                // The post-delivery re-arm: every reported fd ends its
                // round with exactly one modify (or delete, when no
                // interest remains) — the one-shot contract both
                // backends rely on. A Busy park masks only the write
                // side: armed read interest is re-armed immediately
                // (`effective()` keeps write out), so a park never
                // delays read delivery, and an ERR/HUP folded into
                // readability is consumed by the one-shot Readable
                // rather than spinning the backoff. A parked write-only
                // watch is left disarmed — re-arming it would let the
                // unmaskable hangup conditions spin the reactor through
                // the park — and the unpark pass issues its modify when
                // the park expires.
                if !watch.interest.read && !watch.interest.write {
                    let _ = discard(&mut watches, &mut fd_to_token, &mut *poller, token);
                } else if watch.parked_until.is_none() || watch.interest.read {
                    let eff = watch.effective();
                    let fd = watch.fd;
                    if poller.modify(fd, eff).is_err() {
                        fail_watch(&self, &mut watches, &mut fd_to_token, &mut *poller, token);
                    }
                }
            }
        }
    }
}

/// Fetches (or creates) `token`'s watch entry for generation `gen`,
/// replacing a stale entry from a prior registration wholesale and
/// keeping the fd-to-token map in lockstep.
fn upsert_watch<'a>(
    watches: &'a mut HashMap<Token, Watch>,
    fd_to_token: &mut HashMap<RawFd, Token>,
    fd: RawFd,
    token: Token,
    gen: u64,
) -> &'a mut Watch {
    let w = watches.entry(token).or_insert(Watch {
        fd,
        gen,
        interest: Interest::none(),
        drain: None,
        parked_until: None,
    });
    if w.gen != gen || w.fd != fd {
        if fd_to_token.get(&w.fd) == Some(&token) {
            fd_to_token.remove(&w.fd);
        }
        *w = Watch {
            fd,
            gen,
            interest: Interest::none(),
            drain: None,
            parked_until: None,
        };
    }
    fd_to_token.insert(fd, token);
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::DriverEvent;
    use crate::tcp::{TcpAcceptor, TcpConn};
    use crate::traits::Listener;
    use crossbeam::channel::unbounded;
    use std::time::Duration;

    fn backends() -> Vec<PollerBackend> {
        if cfg!(target_os = "linux") {
            vec![PollerBackend::Poll, PollerBackend::Epoll]
        } else {
            vec![PollerBackend::Poll]
        }
    }

    #[test]
    fn reactor_reports_readable_and_eof() {
        for backend in backends() {
            let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
            let addr = acceptor.local_addr();
            let mut c1 = TcpConn::connect(&addr).unwrap();
            let s1 = acceptor.accept().unwrap();
            let c2 = TcpConn::connect(&addr).unwrap();
            let s2 = acceptor.accept().unwrap();

            let (tx, rx) = unbounded();
            let reactor = Reactor::new(tx, backend);
            reactor.register(s1.raw_fd().unwrap(), 1);
            reactor.register(s2.raw_fd().unwrap(), 2);
            assert!(
                rx.recv_timeout(Duration::from_millis(50)).is_err(),
                "nothing readable yet"
            );

            c1.write_all(b"x").unwrap();
            assert_eq!(
                rx.recv_timeout(Duration::from_secs(2)),
                Ok(DriverEvent::Readable(1))
            );
            drop(c2); // EOF wakes the second watch
            assert_eq!(
                rx.recv_timeout(Duration::from_secs(2)),
                Ok(DriverEvent::Readable(2))
            );
            assert_eq!(reactor.events_delivered(), 2);
            reactor.stop();
        }
    }

    #[test]
    fn deregister_suppresses_events() {
        for backend in backends() {
            let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
            let addr = acceptor.local_addr();
            let mut client = TcpConn::connect(&addr).unwrap();
            let server = acceptor.accept().unwrap();

            let (tx, rx) = unbounded();
            let reactor = Reactor::new(tx, backend);
            reactor.register(server.raw_fd().unwrap(), 7);
            reactor.deregister(7);
            std::thread::sleep(Duration::from_millis(20));
            client.write_all(b"x").unwrap();
            assert!(
                rx.recv_timeout(Duration::from_millis(100)).is_err(),
                "deregistered watch must not fire ({})",
                reactor.backend_name()
            );
            reactor.stop();
        }
    }

    /// The fd-reuse race at the reactor level: deregister a token, close
    /// its fd, and immediately register the (very likely reused) fd
    /// under a new token. The stale generation must deliver nothing; the
    /// new registration must fire.
    #[test]
    fn stale_generation_never_fires_on_reused_fd() {
        for backend in backends() {
            let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
            let addr = acceptor.local_addr();
            let (tx, rx) = unbounded();
            let reactor = Reactor::new(tx, backend);
            for round in 0..20u64 {
                let old_token = 1000 + round * 2;
                let new_token = 1001 + round * 2;
                let old_client = TcpConn::connect(&addr).unwrap();
                let old_server = acceptor.accept().unwrap();
                reactor.register(old_server.raw_fd().unwrap(), old_token);
                // Tear the socket down immediately: the watch may still be
                // in the reactor's table (its Deregister is only queued)
                // when the fd closes and gets reused below. No data ever
                // arrived while `old_token` was live, so any Readable for it
                // is a stale delivery.
                reactor.deregister(old_token);
                drop(old_server); // fd closes; the kernel may reuse it now
                drop(old_client);
                let mut new_client = TcpConn::connect(&addr).unwrap();
                let new_server = acceptor.accept().unwrap();
                reactor.register(new_server.raw_fd().unwrap(), new_token);
                new_client.write_all(b"fresh").unwrap();
                match rx.recv_timeout(Duration::from_secs(2)) {
                    Ok(DriverEvent::Readable(t)) => {
                        assert_eq!(t, new_token, "stale watch fired for a reused fd")
                    }
                    other => panic!("expected Readable({new_token}), got {other:?}"),
                }
                assert!(
                    rx.try_recv().is_err(),
                    "exactly one event per round (round {round})"
                );
                reactor.deregister(new_token);
            }
            reactor.stop();
        }
    }

    #[test]
    fn stop_joins_reactor_thread() {
        for backend in backends() {
            let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
            let addr = acceptor.local_addr();
            let _client = TcpConn::connect(&addr).unwrap();
            let server = acceptor.accept().unwrap();
            let (tx, _rx) = unbounded();
            let reactor = Reactor::new(tx, backend);
            reactor.register(server.raw_fd().unwrap(), 1);
            reactor.stop();
            assert!(
                reactor.thread.lock().is_none(),
                "stop() must take and join the thread handle"
            );
        }
    }

    /// Regression: a refused backend registration (a regular-file fd
    /// under epoll) fails the watch *after* the control lock is
    /// released. The Abort drain re-enters the driver's remove path —
    /// modelled here by calling `deregister` from inside the drain —
    /// which takes `self.shared` on the reactor thread and used to
    /// self-deadlock, hanging the reactor and `stop()` forever.
    #[cfg(target_os = "linux")]
    #[test]
    fn refused_registration_aborts_drain_without_deadlock() {
        let path = std::env::temp_dir().join("flux-net-epoll-refused.tmp");
        let file = std::fs::File::create(&path).unwrap();
        let (tx, _rx) = unbounded();
        let reactor = Reactor::new(tx, PollerBackend::Epoll);
        assert_eq!(reactor.backend_name(), "epoll");

        let (done_tx, done_rx) = unbounded();
        let inner = reactor.clone();
        let drain: DrainFn = Box::new(move |call| {
            if matches!(call, DrainCall::Abort) {
                inner.deregister(9); // the driver's remove path re-enters here
                let _ = done_tx.send(());
            }
            DrainResult::Failed
        });
        use std::os::fd::AsRawFd as _;
        reactor.register_write(file.as_raw_fd(), 9, drain);
        assert!(
            done_rx.recv_timeout(Duration::from_secs(2)).is_ok(),
            "abort drain never completed: reactor self-deadlocked on the control lock"
        );
        reactor.stop();
        let _ = std::fs::remove_file(&path);
    }

    /// The backend chosen matches the request (with fallback resolved at
    /// construction, before the thread starts).
    #[test]
    fn backend_name_reports_resolved_backend() {
        let (tx, _rx) = unbounded();
        let reactor = Reactor::new(tx, PollerBackend::Poll);
        assert_eq!(reactor.backend_name(), "poll");
        reactor.stop();
        #[cfg(target_os = "linux")]
        {
            let (tx, _rx) = unbounded();
            let reactor = Reactor::new(tx, PollerBackend::Epoll);
            assert_eq!(reactor.backend_name(), "epoll");
            reactor.stop();
        }
    }
}
