//! Shutdown regression: `ConnDriver::stop` must join every driver
//! thread (acceptor, reactor, fallback watches) so none can outlive the
//! server and fire into a dropped channel — and must not leak
//! connection state: a `remove_when_flushed` still in flight when the
//! reactor stops can never complete its drain, so `stop` removes the
//! connection (dropping its buffered output) itself.
//!
//! Runs as its own integration-test binary — and therefore its own
//! process — so scanning `/proc/self/task` sees only this test's
//! threads. Every scenario runs once per `Poller` backend.

#![cfg(unix)]

mod util;

use flux_net::{DriverEvent, TcpAcceptor, TcpConn};
use std::io::Write as _;
use std::time::Duration;
use util::{backends, driver_on};

/// Names of live `flux-net-*` threads (Linux; comm is truncated to 15
/// chars by the kernel).
#[cfg(target_os = "linux")]
fn net_threads() -> Vec<String> {
    let mut names = Vec::new();
    if let Ok(tasks) = std::fs::read_dir("/proc/self/task") {
        for t in tasks.flatten() {
            if let Ok(comm) = std::fs::read_to_string(t.path().join("comm")) {
                if comm.trim_end().starts_with("flux-net") {
                    names.push(comm.trim_end().to_string());
                }
            }
        }
    }
    names
}

#[test]
#[cfg(target_os = "linux")]
fn stop_joins_all_driver_threads() {
    use flux_net::Listener as _;

    for backend in backends() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let driver = driver_on(backend);
        driver.spawn_acceptor(Box::new(acceptor));
        let mut client = TcpConn::connect(&addr).unwrap();
        let DriverEvent::Incoming(token) = driver.next_event(Duration::from_secs(2)).unwrap()
        else {
            panic!()
        };
        driver.arm(token); // reactor thread spins up
        client.write_all(b"x").unwrap();
        assert_eq!(
            driver.next_event(Duration::from_secs(2)),
            Some(DriverEvent::Readable(token))
        );
        assert!(
            !net_threads().is_empty(),
            "driver threads exist while running ({backend:?})"
        );
        driver.stop();
        assert_eq!(
            net_threads(),
            Vec::<String>::new(),
            "stop() must join acceptor, reactor and watch threads ({backend:?})"
        );
    }
}

/// `stop` during an in-flight `remove_when_flushed`: the reactor is
/// gone, so the deferred close can never drain — the connection (and
/// its still-buffered multi-megabyte response) must not stay registered
/// in the driver, and the doomed submission must still get its
/// completion event.
#[test]
fn stop_does_not_leak_pending_flush() {
    use flux_net::Listener as _;

    for backend in backends() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let driver = driver_on(backend);
        driver.spawn_acceptor(Box::new(acceptor));
        let _client = TcpConn::connect(&addr).unwrap();
        let DriverEvent::Incoming(token) = driver.next_event(Duration::from_secs(2)).unwrap()
        else {
            panic!()
        };
        // A write far past the socket buffers stays partially buffered
        // (the client never reads), so the close is deferred...
        assert!(driver.submit_write(token, &vec![7u8; 8 * 1024 * 1024]));
        assert!(driver.pending_out(token) > 0, "{backend:?}");
        driver.remove_when_flushed(token);
        assert!(
            driver.get(token).is_some(),
            "close deferred while draining ({backend:?})"
        );
        // ...and stop() arrives before the drain completes.
        driver.stop();
        assert!(
            driver.get(token).is_none(),
            "stop must remove a conn whose deferred close was pending ({backend:?})"
        );
        assert!(
            driver.is_empty(),
            "no token may stay registered after stop ({backend:?})"
        );
        assert_eq!(driver.pending_out(token), 0, "{backend:?}");
        // The submission's completion contract survives shutdown: the
        // removal fails the pending write.
        let ev = driver.next_event(Duration::from_millis(100));
        assert_eq!(
            ev,
            Some(DriverEvent::WriteFailed(token)),
            "pending submission failed, not stranded ({backend:?})"
        );
    }
}
