//! Shutdown regression: `ConnDriver::stop` must join every driver
//! thread (acceptor, reactor, fallback watches) so none can outlive the
//! server and fire into a dropped channel.
//!
//! Runs as its own integration-test binary — and therefore its own
//! process — so scanning `/proc/self/task` sees only this test's
//! threads.

use flux_net::{ConnDriver, DriverEvent, TcpAcceptor, TcpConn};
use std::io::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// Names of live `flux-net-*` threads (Linux; comm is truncated to 15
/// chars by the kernel).
#[cfg(target_os = "linux")]
fn net_threads() -> Vec<String> {
    let mut names = Vec::new();
    if let Ok(tasks) = std::fs::read_dir("/proc/self/task") {
        for t in tasks.flatten() {
            if let Ok(comm) = std::fs::read_to_string(t.path().join("comm")) {
                if comm.trim_end().starts_with("flux-net") {
                    names.push(comm.trim_end().to_string());
                }
            }
        }
    }
    names
}

#[test]
#[cfg(target_os = "linux")]
fn stop_joins_all_driver_threads() {
    use flux_net::Listener as _;

    let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
    let addr = acceptor.local_addr();
    let driver = Arc::new(ConnDriver::new());
    driver.spawn_acceptor(Box::new(acceptor));
    let mut client = TcpConn::connect(&addr).unwrap();
    let DriverEvent::Incoming(token) = driver.next_event(Duration::from_secs(2)).unwrap() else {
        panic!()
    };
    driver.arm(token); // reactor thread spins up
    client.write_all(b"x").unwrap();
    assert_eq!(
        driver.next_event(Duration::from_secs(2)),
        Some(DriverEvent::Readable(token))
    );
    assert!(
        !net_threads().is_empty(),
        "driver threads exist while running"
    );
    driver.stop();
    assert_eq!(
        net_threads(),
        Vec::<String>::new(),
        "stop() must join acceptor, reactor and watch threads"
    );
}
