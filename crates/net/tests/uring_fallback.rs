//! The capability-probe fallback path, in a dedicated binary.
//!
//! `FLUX_URING_DISABLE` is read at ring construction and env vars are
//! process-global, so this test owns its process (each integration
//! test file is a separate binary) rather than racing the parallel
//! suites that probe real ring availability.

#![cfg(target_os = "linux")]

use flux_net::{ConnDriver, NetConfig, PollerBackend};
use std::sync::atomic::Ordering;

/// A uring request on a host where ring setup fails must come up on
/// epoll — a working driver, not an error — with the substitution
/// reported through both `poller_backend()` and the
/// `poller_fallbacks` counter, never silently.
#[test]
fn failed_ring_setup_falls_back_to_epoll_and_reports_it() {
    // Force the capability probe to fail regardless of what this
    // kernel actually supports.
    std::env::set_var("FLUX_URING_DISABLE", "1");
    assert!(
        !flux_net::uring_available(),
        "disable knob must fail the availability probe"
    );
    let driver = ConnDriver::with_config(&NetConfig {
        backend: PollerBackend::Uring,
        ..NetConfig::default()
    });
    assert_eq!(
        driver.poller_backend(),
        "epoll",
        "failed probe must land on the epoll link of the fallback chain"
    );
    assert_eq!(
        driver.counters().poller_fallbacks.load(Ordering::Relaxed),
        1,
        "the substitution must be counted, not silent"
    );
    drop(driver);

    // With the knob lifted, a host that has io_uring honours the
    // request and records no fallback.
    std::env::remove_var("FLUX_URING_DISABLE");
    if flux_net::uring_available() {
        let driver = ConnDriver::with_config(&NetConfig {
            backend: PollerBackend::Uring,
            ..NetConfig::default()
        });
        assert_eq!(driver.poller_backend(), "uring");
        assert_eq!(
            driver.counters().poller_fallbacks.load(Ordering::Relaxed),
            0
        );
    } else {
        eprintln!("notice: io_uring genuinely unavailable here, honoured-request leg skipped");
    }
}
