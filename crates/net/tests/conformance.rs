//! Backend conformance suite: the reactor/driver invariants proven in
//! PRs 1–2 (fd-reuse generation race, deferred-close drain, slow-reader
//! POLLOUT drain, write failure on removal) must hold **identically**
//! over every [`flux_net::Poller`] backend. Each scenario runs once per
//! backend through the same harness; a backend that passes here can be
//! swapped in via `NetConfig::backend` (or `FLUX_POLLER`) without any
//! server noticing.
//!
//! The shutdown thread-join invariant has its own binary
//! (`tests/shutdown.rs`), because it scans `/proc/self/task` and needs
//! a process to itself.

#![cfg(unix)]

mod util;

use flux_net::{
    ConnDriver, DriverEvent, Listener as _, PollerBackend, TcpAcceptor, TcpConn, Token,
};
use std::io::{Read as _, Write as _};
use std::sync::Arc;
use std::time::Duration;
use util::{backends, driver_on};

/// Accepts one TCP connection through the driver and returns
/// `(driver, client, token)`.
fn tcp_pair(backend: PollerBackend) -> (Arc<ConnDriver>, TcpConn, Token) {
    let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
    let addr = acceptor.local_addr();
    let driver = driver_on(backend);
    driver.spawn_acceptor(Box::new(acceptor));
    let client = TcpConn::connect(&addr).unwrap();
    let DriverEvent::Incoming(token) = driver.next_event(Duration::from_secs(2)).unwrap() else {
        panic!("expected Incoming");
    };
    (driver, client, token)
}

/// The fd-reuse generation race: remove a connection (closing its fd)
/// and immediately accept a new one that reuses it. The stale token
/// must never fire, on either backend.
fn fd_reuse_generation_race(backend: PollerBackend) {
    let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
    let addr = acceptor.local_addr();
    let driver = driver_on(backend);
    driver.spawn_acceptor(Box::new(acceptor));
    let mut dead_tokens = std::collections::HashSet::new();
    for round in 0..25 {
        let old_client = TcpConn::connect(&addr).unwrap();
        let DriverEvent::Incoming(old_token) = driver.next_event(Duration::from_secs(2)).unwrap()
        else {
            panic!()
        };
        driver.arm(old_token);
        // Remove while the watch is armed and no data has arrived: the
        // fd closes here, may be reused by the next accept, and any
        // Readable(old_token) from now on is a stale delivery.
        drop(driver.remove(old_token));
        dead_tokens.insert(old_token);
        drop(old_client);

        let mut new_client = TcpConn::connect(&addr).unwrap();
        let DriverEvent::Incoming(new_token) = driver.next_event(Duration::from_secs(2)).unwrap()
        else {
            panic!()
        };
        driver.arm(new_token);
        new_client.write_all(b"fresh").unwrap();
        match driver.next_event(Duration::from_secs(2)) {
            Some(DriverEvent::Readable(t)) => {
                assert!(
                    !dead_tokens.contains(&t),
                    "stale watch fired for removed token {t} (round {round}, {backend:?})"
                );
                assert_eq!(t, new_token);
            }
            other => panic!("expected Readable({new_token}), got {other:?} ({backend:?})"),
        }
        driver.remove(new_token);
        dead_tokens.insert(new_token);
    }
    driver.stop();
}

/// Slow-reader drain: a response larger than the kernel socket buffers
/// completes via the backend's writability events once the (initially
/// stalled) client reads, with the WouldBlock deferral observable in
/// the counters.
fn slow_reader_pollout_drain(backend: PollerBackend) {
    let (driver, mut client, token) = tcp_pair(backend);
    let payload: Vec<u8> = (0..8 * 1024 * 1024).map(|i| (i % 251) as u8).collect();
    assert!(driver.submit_write(token, &payload));
    assert!(
        driver.pending_out(token) > 0,
        "an 8 MiB write must not complete synchronously ({backend:?})"
    );
    assert!(
        driver.next_event(Duration::from_millis(100)).is_none(),
        "no completion while the client reads nothing ({backend:?})"
    );
    let mut got = Vec::with_capacity(payload.len());
    let mut buf = vec![0u8; 64 * 1024];
    while got.len() < payload.len() {
        let n = client.read(&mut buf).unwrap();
        assert!(n > 0, "EOF before the payload drained ({backend:?})");
        got.extend_from_slice(&buf[..n]);
    }
    assert_eq!(got, payload, "drained bytes match ({backend:?})");
    assert_eq!(
        driver.next_event(Duration::from_secs(5)),
        Some(DriverEvent::WriteDone(token))
    );
    let counters = driver.counters();
    assert!(
        counters
            .write_would_block
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0,
        "the drain must have hit WouldBlock at least once ({backend:?})"
    );
    driver.stop();
}

/// Deferred close: `remove_when_flushed` keeps the connection open
/// until the buffer drains, then closes it — the client sees the full
/// payload followed by EOF.
fn deferred_close_drain(backend: PollerBackend) {
    let (driver, mut client, token) = tcp_pair(backend);
    let payload: Vec<u8> = vec![b'z'; 8 * 1024 * 1024];
    assert!(driver.submit_write(token, &payload));
    driver.remove_when_flushed(token);
    assert!(
        driver.get(token).is_some(),
        "close must be deferred while bytes are buffered ({backend:?})"
    );
    let mut got = 0usize;
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        let n = client.read(&mut buf).unwrap();
        if n == 0 {
            break; // EOF only after the whole payload
        }
        assert!(buf[..n].iter().all(|&b| b == b'z'));
        got += n;
    }
    assert_eq!(
        got,
        payload.len(),
        "every byte drained before close ({backend:?})"
    );
    assert_eq!(
        driver.next_event(Duration::from_secs(5)),
        Some(DriverEvent::WriteDone(token))
    );
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while driver.get(token).is_some() && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        driver.get(token).is_none(),
        "removed after the drain ({backend:?})"
    );
    driver.stop();
}

/// `remove` fails still-pending submissions so every `submit_write`
/// gets its completion event.
fn remove_fails_pending_submissions(backend: PollerBackend) {
    let (driver, _client, token) = tcp_pair(backend);
    assert!(driver.submit_write(token, &vec![1u8; 8 * 1024 * 1024]));
    assert!(driver.pending_out(token) > 0);
    driver.remove(token);
    assert_eq!(
        driver.next_event(Duration::from_secs(2)),
        Some(DriverEvent::WriteFailed(token)),
        "{backend:?}"
    );
    driver.stop();
}

#[test]
fn fd_reuse_generation_race_on_every_backend() {
    for backend in backends() {
        fd_reuse_generation_race(backend);
    }
}

#[test]
fn slow_reader_pollout_drain_on_every_backend() {
    for backend in backends() {
        slow_reader_pollout_drain(backend);
    }
}

#[test]
fn deferred_close_drain_on_every_backend() {
    for backend in backends() {
        deferred_close_drain(backend);
    }
}

#[test]
fn remove_fails_pending_submissions_on_every_backend() {
    for backend in backends() {
        remove_fails_pending_submissions(backend);
    }
}
