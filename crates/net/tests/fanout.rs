//! Fan-out write-path tests: [`SharedPayload`] release semantics under
//! concurrent drops (the multicast case: N connections drain one
//! buffer, the last one returns it to the pool exactly once), the
//! reactor-level one-payload-to-N-connections path, and slow-consumer
//! eviction when a subscriber stops draining.

mod util;

use flux_net::{
    BytePool, ConnDriver, DriverEvent, Listener as _, MemNet, NetConfig, TcpAcceptor, TcpConn,
};
use proptest::prelude::*;
use std::io::Read as _;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Barrier};
use std::time::Duration;

const SENTINEL: &[u8] = b"fanout-sentinel-payload";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// N threads race to drop their clone of one sealed payload: the
    /// backing buffer must return to the pool exactly once (never zero
    /// times, never twice), and the recycled buffer must come back
    /// cleared — a new tenant (e.g. after fd reuse) can never observe
    /// the previous payload's bytes.
    #[test]
    fn concurrent_release_returns_buffer_exactly_once(
        threads in 2usize..9,
        yield_bits in any::<u64>(),
    ) {
        let pool = Arc::new(BytePool::new(8, 1 << 20));
        let mut buf = pool.take();
        buf.extend_from_slice(SENTINEL);
        let payload = pool.seal(buf);
        prop_assert_eq!(pool.pooled(), 0, "sealed buffer is not in the pool");

        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let p = payload.clone();
                let b = barrier.clone();
                std::thread::spawn(move || {
                    b.wait();
                    if yield_bits >> (i % 64) & 1 == 1 {
                        std::thread::yield_now();
                    }
                    // Every holder still reads the full payload ...
                    assert_eq!(&p[..], SENTINEL);
                    // ... and then releases its reference.
                    drop(p);
                })
            })
            .collect();
        drop(payload);
        for h in handles {
            h.join().unwrap();
        }

        prop_assert_eq!(pool.pooled(), 1, "last drop returned the buffer exactly once");
        let reused = pool.take();
        prop_assert_eq!(pool.pooled(), 0);
        prop_assert!(reused.is_empty(), "recycled buffer must be cleared");
        prop_assert!(reused.capacity() >= SENTINEL.len(), "capacity is recycled");
    }
}

/// While any clone is alive the buffer stays out of the pool: a writer
/// taking a fresh buffer meanwhile can never scribble over the shared
/// bytes (the use-after-recycle scenario under slot/fd reuse).
#[test]
fn live_clone_keeps_buffer_out_of_the_pool() {
    let pool = Arc::new(BytePool::new(8, 1 << 20));
    let mut buf = pool.take();
    buf.extend_from_slice(SENTINEL);
    let payload = pool.seal(buf);
    let survivor = payload.clone();
    drop(payload);
    assert_eq!(survivor.ref_count(), 1);
    assert_eq!(pool.pooled(), 0, "live clone keeps the buffer checked out");

    // A concurrent writer gets a *different* buffer and cannot corrupt
    // the shared payload.
    let mut other = pool.take();
    other.extend_from_slice(b"unrelated scribble");
    assert_eq!(&survivor[..], SENTINEL);
    pool.put(other);

    drop(survivor);
    assert_eq!(pool.pooled(), 2, "returned on last drop, exactly once");
}

/// Reactor-level multicast: one sealed payload submitted to 8 TCP
/// connections. Each connection drains independently (clients are read
/// in reverse accept order, one at a time), every client receives the
/// identical bytes, one `WriteDone` is retired per submission, and when
/// all drains finish the test's clone is the last reference — the
/// buffer was shared, never copied.
#[test]
fn one_payload_fans_out_to_eight_connections() {
    const FANOUT: usize = 8;
    // Big enough that kernel socket buffers cannot absorb it all: some
    // connections must go through the POLLOUT drain path.
    const LEN: usize = 1 << 20;

    for backend in util::backends() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let driver = util::driver_on(backend);
        driver.spawn_acceptor(Box::new(acceptor));

        let mut clients = Vec::new();
        let mut tokens = Vec::new();
        for _ in 0..FANOUT {
            clients.push(TcpConn::connect(&addr).unwrap());
            match driver.next_event(Duration::from_secs(2)) {
                Some(DriverEvent::Incoming(t)) => tokens.push(t),
                other => panic!("expected Incoming, got {other:?}"),
            }
        }

        let mut buf = driver.take_write_buf();
        buf.extend((0..LEN).map(|i| (i % 251) as u8));
        let payload = driver.seal_write_buf(buf);
        for &t in &tokens {
            assert!(driver.submit_write_shared(t, &payload));
        }
        assert_eq!(
            driver.counters().writes_shared.load(Ordering::Relaxed),
            FANOUT as u64
        );

        // Drain one client at a time, last accepted first: each
        // connection's buffered remainder must complete without any
        // other client making progress.
        let mut got = vec![0u8; LEN];
        for mut client in clients.into_iter().rev() {
            client.read_exact(&mut got).unwrap();
            assert!(
                got.as_slice() == &payload[..],
                "client received the exact payload"
            );
        }

        let mut done = 0;
        while done < FANOUT {
            match driver.next_event(Duration::from_secs(2)) {
                Some(DriverEvent::WriteDone(_)) => done += 1,
                Some(DriverEvent::WriteFailed(t)) => panic!("write failed on {t}"),
                other => panic!("expected WriteDone, got {other:?}"),
            }
        }
        assert_eq!(
            payload.ref_count(),
            1,
            "all connection clones released after the drains"
        );
        driver.stop();
    }
}

/// A subscriber that stops draining is evicted when its output buffer
/// hits `max_pending_out`: the driver counts the eviction, fails the
/// submission (`WriteFailed`) and removes the connection.
#[test]
fn slow_consumer_is_evicted_at_the_buffer_cap() {
    const CAP: usize = 64 * 1024;
    let net = MemNet::new();
    // A slow link: the shaper's initial burst absorbs the first writes,
    // then enqueues go Pending and accumulate against the cap.
    net.set_link_capacity(Some(1_000_000.0));
    let listener = net.listen("slow").unwrap();
    let driver = Arc::new(ConnDriver::with_config(&NetConfig {
        max_pending_out: CAP,
        ..NetConfig::default()
    }));
    driver.spawn_acceptor(Box::new(listener));

    let _client = net.connect("slow").unwrap(); // never reads
    let token = match driver.next_event(Duration::from_secs(2)) {
        Some(DriverEvent::Incoming(t)) => t,
        other => panic!("expected Incoming, got {other:?}"),
    };

    let chunk = vec![7u8; 32 * 1024];
    let mut submits = 0;
    while driver
        .counters()
        .slow_consumer_evicted
        .load(Ordering::Relaxed)
        == 0
    {
        submits += 1;
        assert!(submits <= 100, "cap never tripped after {submits} submits");
        driver.submit_write(token, &chunk);
    }

    assert_eq!(
        driver
            .counters()
            .slow_consumer_evicted
            .load(Ordering::Relaxed),
        1,
        "exactly one eviction for the connection"
    );
    // The eviction failed the overflowing submission and removed the
    // connection — later submissions are refused outright.
    let failed = (0..submits).any(|_| {
        matches!(
            driver.next_event(Duration::from_secs(2)),
            Some(DriverEvent::WriteFailed(t)) if t == token
        )
    });
    assert!(failed, "the overflowing submission must fail");
    assert!(driver.get(token).is_none(), "evicted connection is removed");
    assert!(!driver.submit_write(token, &chunk));
    driver.stop();
}
