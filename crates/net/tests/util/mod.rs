//! Shared helpers for the integration-test binaries: one place that
//! knows which [`PollerBackend`]s exist on this host, so adding a
//! backend (kqueue, io_uring) extends every suite at once.

use flux_net::{ConnDriver, NetConfig, PollerBackend};
use std::sync::Arc;

/// Every backend available on this host. io_uring is probed at runtime
/// (real ring setup) and skipped with a notice — never silently — on
/// kernels or seccomp sandboxes that refuse it.
pub fn backends() -> Vec<PollerBackend> {
    let mut v = vec![PollerBackend::Poll];
    if cfg!(target_os = "linux") {
        v.push(PollerBackend::Epoll);
        if flux_net::uring_available() {
            v.push(PollerBackend::Uring);
        } else {
            eprintln!("notice: io_uring unavailable on this host, uring backend not exercised");
        }
    }
    v
}

/// A driver configured for `backend`, asserting the request was
/// honoured (no silent fallback on a host that has the backend —
/// [`backends`] only hands out uring after a successful probe).
pub fn driver_on(backend: PollerBackend) -> Arc<ConnDriver> {
    let driver = Arc::new(ConnDriver::with_config(&NetConfig {
        backend,
        ..NetConfig::default()
    }));
    assert_eq!(driver.poller_backend(), backend.label(), "backend honoured");
    assert_eq!(
        driver
            .counters()
            .poller_fallbacks
            .load(std::sync::atomic::Ordering::Relaxed),
        0,
        "no fallback recorded for an honoured backend"
    );
    driver
}
