//! Shared helpers for the integration-test binaries: one place that
//! knows which [`PollerBackend`]s exist on this host, so adding a
//! backend (kqueue, io_uring) extends every suite at once.

use flux_net::{ConnDriver, NetConfig, PollerBackend};
use std::sync::Arc;

/// Every backend available on this host.
pub fn backends() -> Vec<PollerBackend> {
    if cfg!(target_os = "linux") {
        vec![PollerBackend::Poll, PollerBackend::Epoll]
    } else {
        vec![PollerBackend::Poll]
    }
}

/// A driver configured for `backend`, asserting the request was
/// honoured (no silent fallback on a host that has the backend).
pub fn driver_on(backend: PollerBackend) -> Arc<ConnDriver> {
    let driver = Arc::new(ConnDriver::with_config(&NetConfig {
        backend,
        ..NetConfig::default()
    }));
    let expect = match backend {
        PollerBackend::Poll => "poll",
        PollerBackend::Epoll => "epoll",
    };
    assert_eq!(driver.poller_backend(), expect, "backend honoured");
    driver
}
