//! Property tests for the slab-token hot path: random interleavings of
//! register/deregister/fd-reuse must never deliver an event under a
//! stale generation, on either poller backend.
//!
//! This generalizes the deterministic fd-reuse regression tests (in
//! `conformance.rs` and the driver's unit tests): every removed token
//! was silent while live, so *any* later `Readable` for it would be a
//! stale delivery — a watch surviving deregistration, or a
//! kernel-reused fd observed under the old token.

#![cfg(unix)]

mod util;

use flux_net::{ConnDriver, DriverEvent, Listener as _, TcpAcceptor, TcpConn, Token};
use proptest::prelude::*;
use std::collections::HashSet;
use std::io::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// Accepts the next `Incoming` event, skipping write completions.
fn next_incoming(driver: &Arc<ConnDriver>) -> Token {
    loop {
        match driver.next_event(Duration::from_secs(2)) {
            Some(DriverEvent::Incoming(t)) => return t,
            Some(DriverEvent::WriteDone(_)) | Some(DriverEvent::WriteFailed(_)) => continue,
            other => panic!("expected Incoming, got {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Interleave register (arm) / deregister (remove) / fd reuse under
    /// a random schedule: tokens removed while silent must never fire,
    /// the live connection must always fire, and stale handles must
    /// resolve to nothing forever.
    #[test]
    fn stale_generation_never_delivers_under_random_interleaving(
        rounds in 2usize..5,
        churn in 1usize..4,
        arm_bits in any::<u64>(),
    ) {
        for backend in util::backends() {
            let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
            let addr = acceptor.local_addr();
            let driver = util::driver_on(backend);
            driver.spawn_acceptor(Box::new(acceptor));

            let mut dead: HashSet<Token> = HashSet::new();
            let mut bit = 0u32;
            for round in 0..rounds {
                // Churn: victims are registered, possibly armed, then
                // removed while still connected and silent — their fds
                // close right after, free for the kernel to reuse.
                let mut victims = Vec::new();
                let mut victim_tokens = Vec::new();
                for _ in 0..churn {
                    victims.push(TcpConn::connect(&addr).unwrap());
                    victim_tokens.push(next_incoming(&driver));
                }
                for &t in &victim_tokens {
                    if arm_bits >> (bit % 64) & 1 == 1 {
                        driver.arm(t);
                    }
                    bit += 1;
                    prop_assert!(driver.remove(t).is_some());
                    dead.insert(t);
                    prop_assert!(driver.get(t).is_none());
                }
                drop(victims); // fds close; reuse becomes possible

                // A fresh connection (very likely on a reused fd) must
                // fire under its own token only.
                let mut fresh_client = TcpConn::connect(&addr).unwrap();
                let fresh = next_incoming(&driver);
                prop_assert!(!dead.contains(&fresh), "token reissued");
                driver.arm(fresh);
                fresh_client.write_all(b"fresh").unwrap();
                let mut saw_fresh = false;
                let deadline = std::time::Instant::now() + Duration::from_secs(2);
                while !saw_fresh && std::time::Instant::now() < deadline {
                    match driver.next_event(Duration::from_millis(200)) {
                        Some(DriverEvent::Readable(t)) => {
                            prop_assert!(
                                !dead.contains(&t),
                                "stale Readable({}) in round {}", t, round
                            );
                            if t == fresh {
                                saw_fresh = true;
                            }
                        }
                        Some(_) | None => continue,
                    }
                }
                prop_assert!(saw_fresh, "live connection must fire (round {})", round);
                prop_assert!(driver.remove(fresh).is_some());
                dead.insert(fresh);
            }
            // Every retired token still resolves to nothing.
            for &t in &dead {
                prop_assert!(driver.get(t).is_none());
            }
            driver.stop();
        }
    }
}
