//! The Flux game server (§4.4) over real UDP: two bots play Tag at
//! 10 Hz while the example tails the authoritative state broadcasts.
//!
//! ```sh
//! cargo run --example game_server
//! ```

use flux::game::{decode_snapshot, ClientMsg, Move};
use flux::net::{Datagram as _, UdpDatagram};
use flux::runtime::RuntimeKind;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let server_sock = Arc::new(UdpDatagram::bind("127.0.0.1:0").expect("bind server"));
    let addr = server_sock.local_addr();
    println!("Flux game server (10 Hz heartbeat) on udp://{addr}");

    let server = flux::servers::ServerBuilder::new(flux::servers::game::GameConfig {
        socket: server_sock,
        tick: Duration::from_millis(100),
        seed: 99,
    })
    .runtime(RuntimeKind::ThreadPool { workers: 4 })
    .spawn();

    // Two bots: one runner, one chaser.
    let mut bots = Vec::new();
    for (player, style) in [(1u32, "chaser"), (2u32, "runner")] {
        let addr = addr.clone();
        bots.push(std::thread::spawn(move || {
            let sock = UdpDatagram::bind("127.0.0.1:0").expect("bind bot");
            sock.send_to(&ClientMsg::Join { player }.encode(), &addr)
                .unwrap();
            let mut buf = [0u8; 4096];
            let mut my_pos = None;
            let mut other_pos = None;
            for _ in 0..40 {
                if let Ok(Some((n, _))) = sock.recv_from(&mut buf, Some(Duration::from_millis(150)))
                {
                    if let Some(snap) = decode_snapshot(&buf[..n]) {
                        for &(id, p) in &snap.players {
                            if id == player {
                                my_pos = Some(p);
                            } else {
                                other_pos = Some(p);
                            }
                        }
                        if let (Some(me), Some(them)) = (my_pos, other_pos) {
                            let (dx, dy) = match style {
                                // Chaser runs toward the other player...
                                "chaser" => (them.x - me.x, them.y - me.y),
                                // ...the runner runs away.
                                _ => (me.x - them.x, me.y - them.y),
                            };
                            let m = ClientMsg::Move(Move {
                                player,
                                dx: dx.clamp(-25, 25),
                                dy: dy.clamp(-25, 25),
                            });
                            sock.send_to(&m.encode(), &addr).unwrap();
                        }
                    }
                }
            }
            sock.send_to(&ClientMsg::Leave { player }.encode(), &addr)
                .unwrap();
        }));
    }

    // Observe the world through the server's own context.
    for i in 0..8 {
        std::thread::sleep(Duration::from_millis(500));
        let world = server.ctx.world.lock();
        println!(
            "t+{:.1}s: {} players, it = {:?}, tags so far = {}",
            (i + 1) as f64 * 0.5,
            world.len(),
            world.it(),
            world.tags
        );
    }
    for b in bots {
        b.join().unwrap();
    }
    println!(
        "server applied {} moves across {} broadcasts",
        server.ctx.moves_applied.load(Ordering::Relaxed),
        server.ctx.broadcasts.load(Ordering::Relaxed)
    );
    flux::servers::game::stop(server);
    println!("done.");
}
