//! Quickstart, in five acts:
//!
//! 1. compile a Flux program, bind Rust node implementations, and run
//!    it on all four runtimes — the paper's runtime-independence claim;
//! 2. stand up a real server (the §4.2 web server) through the one
//!    typed `ServerBuilder`, which owns the remaining knobs: the
//!    runtime kind, the adaptive shard policy (`AdaptivePolicy`: park
//!    idle dispatchers, wake them on burst), the network configuration
//!    (`NetConfig`: readiness backend, write-buffer bound, event-poll
//!    timeout), the flow interpreter (`FusionMode`: fused straight-line
//!    segments vs per-node queue turns) and the stats/profiling
//!    toggles;
//! 3. a *streaming* server through the same builder: the pub/sub
//!    server subscribes clients to topics, aggregates each topic's
//!    publishes over a sliding window, and multicasts the encoded
//!    aggregate to every subscriber as one refcounted payload —
//!    encoded once no matter the fan-out;
//! 4. inspect what the compiler fused: the same dump `fluxc fused`
//!    (alias `--dump-fused`) prints — each flow's straight-line
//!    segments and the boundary reasons where fusion stops;
//! 5. overload control through the same builder: `max_conns` governs
//!    admission at the accept edge, `OverloadPolicy::bounded` caps the
//!    shard queues so a flood sheds (the web server answers a prebuilt
//!    503 via its `on_shed` handler), and `idle_timeout` reaps
//!    connections that stop making application progress — all counted,
//!    never silent.
//!
//! ```sh
//! cargo run --example quickstart
//! FLUX_POLLER=poll cargo run --example quickstart   # poll(2) backend
//! ```
//!
//! The act-1 program is a miniature request pipeline with a predicate
//! dispatch, an error handler, and an atomicity constraint — every
//! language feature from §2 of the paper in twenty lines.

use flux::runtime::{start, FluxServer, NodeOutcome, NodeRegistry, RuntimeKind, SourceOutcome};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The Flux program. `source Gen => Flow` runs `Gen` in an implicit
/// infinite loop; each value it produces travels the acyclic graph.
const PROGRAM: &str = r#"
    Gen () => (int n);
    Validate (int n) => (int n);
    Small (int n) => (int n);
    Big (int n) => (int n);
    Record (int n) => ();
    Reject (int n) => ();

    typedef small IsSmall;

    source Gen => Flow;
    Flow = Validate -> Route -> Record;
    Route:[small] = Small;
    Route:[_] = Big;

    handle error Validate => Reject;

    atomic Record: {tally};
"#;

/// The per-flow payload — the paper's per-flow C struct.
struct Payload {
    n: u64,
    doubled: bool,
}

fn build_registry(
    produced: Arc<AtomicU64>,
    small: Arc<AtomicU64>,
    big: Arc<AtomicU64>,
    rejected: Arc<AtomicU64>,
    total: u64,
) -> NodeRegistry<Payload> {
    let mut reg = NodeRegistry::new();
    reg.source("Gen", move || {
        let i = produced.fetch_add(1, Ordering::SeqCst);
        if i >= total {
            SourceOutcome::Shutdown
        } else {
            SourceOutcome::New(Payload {
                n: i,
                doubled: false,
            })
        }
    });
    reg.node("Validate", |p: &mut Payload| {
        // Multiples of 10 are "invalid" and go to the error handler.
        if p.n.is_multiple_of(10) {
            NodeOutcome::Err(22)
        } else {
            NodeOutcome::Ok
        }
    });
    reg.predicate("IsSmall", |p: &Payload| p.n < 50);
    {
        let small = small.clone();
        reg.node("Small", move |p: &mut Payload| {
            p.doubled = true;
            small.fetch_add(1, Ordering::Relaxed);
            NodeOutcome::Ok
        });
    }
    {
        let big = big.clone();
        reg.node("Big", move |_p: &mut Payload| {
            big.fetch_add(1, Ordering::Relaxed);
            NodeOutcome::Ok
        });
    }
    reg.node("Record", |_p: &mut Payload| NodeOutcome::Ok);
    reg.node("Reject", move |_p: &mut Payload| {
        rejected.fetch_add(1, Ordering::Relaxed);
        NodeOutcome::Ok
    });
    reg
}

fn main() {
    let total = 100u64;
    for kind in [
        RuntimeKind::ThreadPerFlow,
        RuntimeKind::ThreadPool { workers: 4 },
        RuntimeKind::event_driven_sharded(1, 2),
        RuntimeKind::Staged { stage_workers: 2 },
    ] {
        let program = flux::core::compile(PROGRAM).expect("program compiles");
        println!(
            "runtime {kind:?}: {} nodes, {} paths",
            program.graph.nodes.len(),
            program.flows[0].paths.num_paths
        );
        let produced = Arc::new(AtomicU64::new(0));
        let small = Arc::new(AtomicU64::new(0));
        let big = Arc::new(AtomicU64::new(0));
        let rejected = Arc::new(AtomicU64::new(0));
        let reg = build_registry(
            produced.clone(),
            small.clone(),
            big.clone(),
            rejected.clone(),
            total,
        );
        let server = Arc::new(FluxServer::new(program, reg).expect("registry complete"));
        let handle = start(server.clone(), kind);
        handle.join();
        // Event runtime drains asynchronously; wait for the counts.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while server.stats.finished() < total && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        println!(
            "  {} flows: {} small, {} big, {} rejected",
            server.stats.finished(),
            small.load(Ordering::Relaxed),
            big.load(Ordering::Relaxed),
            rejected.load(Ordering::Relaxed),
        );
        assert_eq!(server.stats.finished(), total);
        assert_eq!(
            small.load(Ordering::Relaxed)
                + big.load(Ordering::Relaxed)
                + rejected.load(Ordering::Relaxed),
            total
        );
    }
    println!("same program, four runtimes — no code changes.");

    // Act 2: a real server through the one typed ServerBuilder. The
    // spec names the server; the builder owns runtime kind, NetConfig
    // (readiness backend, per-connection write-buffer bound, event-poll
    // timeout) and the stats/profile toggles.
    use flux::net::{MemNet, NetConfig};
    use flux::servers::{web::WebSpec, ServerBuilder};
    use std::io::Write as _;

    let net = MemNet::new();
    let listener = net.listen("quickstart").unwrap();
    let mut docroot = flux::http::DocRoot::new();
    docroot.insert("/hello.html", "hello from the builder");
    // `.adaptive(AdaptivePolicy::adaptive())` makes the dispatcher set
    // elastic: a controller parks idle shards down to one and wakes
    // them within a millisecond-scale sampling tick when load returns
    // (AdaptiveConfig tunes the cadence and thresholds). The default —
    // AdaptivePolicy::Static — keeps the paper's fixed dispatcher set;
    // either way `stats.adaptive` reports active shards and park/wake
    // totals.
    use flux::runtime::AdaptivePolicy;
    let server = ServerBuilder::new(WebSpec::new(Box::new(listener), docroot))
        .runtime(RuntimeKind::event_driven_sharded(2, 2))
        .adaptive(AdaptivePolicy::adaptive())
        .net(NetConfig::default()) // epoll on Linux; FLUX_POLLER=poll falls back
        .spawn();

    let mut conn = net.connect("quickstart").unwrap();
    write!(
        conn,
        "GET /hello.html HTTP/1.1\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let (status, body) = flux::http::read_response(&mut conn).unwrap();
    assert_eq!(status, 200);
    assert_eq!(body, b"hello from the builder");
    println!(
        "web server via ServerBuilder: {} ({} readiness backend, {})",
        String::from_utf8_lossy(&body),
        server.ctx.driver.poller_backend(),
        server.handle.server().stats.adaptive.describe(),
    );
    flux::servers::web::stop(server);

    // Act 3: a streaming server through the same builder. `SUB <topic>`
    // subscribes; each `PUB <topic> <value>` re-aggregates the topic's
    // sliding window (count + top-k) on the topic's home shard and fans
    // the one encoded `MSG` out to every subscriber as a refcounted
    // shared payload — `stats.fanout` counts publishes vs deliveries.
    use flux::servers::pubsub::PubSubSpec;
    use std::io::{BufRead as _, BufReader};

    let net = MemNet::new();
    let listener = net.listen("pubsub").unwrap();
    let server = ServerBuilder::new(PubSubSpec::new(Box::new(listener)))
        .runtime(RuntimeKind::event_driven_sharded(2, 2))
        .spawn();

    let mut line = String::new();
    let mut subscriber = BufReader::new(net.connect("pubsub").unwrap());
    writeln!(subscriber.get_mut(), "SUB metrics").unwrap();
    subscriber.read_line(&mut line).unwrap(); // "+OK metrics"

    let mut publisher = net.connect("pubsub").unwrap();
    writeln!(publisher, "PUB metrics ok").unwrap();
    writeln!(publisher, "PUB metrics ok").unwrap();
    writeln!(publisher, "PUB metrics err").unwrap();
    // MSG <topic> <seq> <window-count> <top-k> <last>
    let mut msg = String::new();
    while !msg.starts_with("MSG metrics 3 ") {
        msg.clear();
        subscriber.read_line(&mut msg).unwrap();
    }
    print!("pub/sub via ServerBuilder: {msg}");
    println!(
        "  ({})",
        server
            .handle
            .server()
            .stats
            .fanout
            .describe()
            .expect("publishes happened"),
    );
    flux::servers::pubsub::stop(server);

    // Act 4: what did the compiler fuse? Each flow's straight-line
    // Exec/Release chains run as one queue turn per segment on the
    // event runtime (FusionMode::On, the default; `.fusion(...)` on the
    // builder or FLUX_FUSE=0 selects the per-node oracle). The dump
    // below is exactly `fluxc fused` / `fluxc --dump-fused`: segments
    // first, then every boundary edge with the reason fusion stopped —
    // dispatch arms, error arms, acquires, blocking nodes, joins.
    let program = flux::core::compile(PROGRAM).expect("program compiles");
    println!();
    print!("{}", flux::core::fuse::render(&program));

    // Act 5: overload control, same builder. Three layers, all
    // counted: `max_conns` caps live connections at the accept edge
    // (excess accepts are closed immediately — peers fail fast instead
    // of queueing doomed work), `OverloadPolicy::bounded` caps each
    // shard queue so a flood sheds at the source boundary into the
    // server's `on_shed` handler (the web server answers a prebuilt
    // 503), and `idle_timeout` reaps connections with no *application*
    // progress — a slow-loris trickling header bytes never refreshes
    // its deadline. The books always reconcile: offered == finished +
    // shed on the queues, admitted + governed == accepts at the edge.
    use flux::runtime::OverloadPolicy;

    let net = MemNet::new();
    let listener = net.listen("overload").unwrap();
    let mut docroot = flux::http::DocRoot::new();
    docroot.insert("/hello.html", "still serving");
    let server = ServerBuilder::new(WebSpec::new(Box::new(listener), docroot))
        .runtime(RuntimeKind::event_driven_sharded(2, 2))
        .overload(OverloadPolicy::bounded(64))
        .max_conns(1)
        .idle_timeout(Some(std::time::Duration::from_secs(5)))
        .spawn();

    // The first connection takes the only admission slot...
    let mut keeper = net.connect("overload").unwrap();
    // ...so the second is accepted and closed by the governor: its
    // peer observes EOF instead of a served request.
    let mut over = net.connect("overload").unwrap();
    use std::io::Read as _;
    let n = over.read(&mut [0u8; 8]).unwrap_or(0);
    assert_eq!(n, 0, "over-cap connection is closed unserved");

    // The admitted connection still works.
    write!(
        keeper,
        "GET /hello.html HTTP/1.1\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let (status, body) = flux::http::read_response(&mut keeper).unwrap();
    assert_eq!((status, body.as_slice()), (200, b"still serving".as_ref()));
    let counters = server
        .handle
        .server()
        .stats
        .net_counters()
        .expect("web server installs net counters");
    println!(
        "overload control: admitted connection served \"{}\"; \
         {} admitted, {} governed (closed at the accept edge)",
        String::from_utf8_lossy(&body),
        counters.accepts_admitted(),
        counters.accepts_governed(),
    );
    flux::servers::web::stop(server);
}
