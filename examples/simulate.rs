//! Performance prediction (§5.1): profile a running Flux server, feed
//! the observations to the generated discrete-event simulator, and
//! predict how the same server behaves with more processors — before
//! buying them.
//!
//! ```sh
//! cargo run --release --example simulate
//! ```

use flux::runtime::RuntimeKind;
use flux::servers::image::{build, CompressMode, ImageConfig, ImageSource};
use flux::sim::{FluxSimulation, SimConfig};
use flux_core::codegen::{sim::SimGenerator, CodeGenerator};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // 1. Run the image server on one worker with profiling on.
    let service = Duration::from_millis(10);
    let (program, reg, _ctx) = build(ImageConfig {
        source: ImageSource::Synthetic {
            interarrival: Duration::from_millis(50),
            total: 200,
        },
        compress: CompressMode::TimedHold(service),
        images: 5,
        image_size: 32,
        cache_bytes: 12 * 1024 + 512,
    });
    println!("profiling a 1-CPU run of the Figure 2 image server...");
    let server = Arc::new(
        flux::runtime::FluxServer::with_profiling(program, reg).expect("registry complete"),
    );
    let handle = flux::runtime::start(server.clone(), RuntimeKind::ThreadPool { workers: 1 });
    handle.join();

    // 2. Extract the observed parameters (what the paper feeds CSIM).
    let profiler = server.profiler().expect("profiling enabled");
    let observed = profiler.observed_params(server.program());
    println!(
        "observed: inter-arrival {:.1} ms, cache-hit probability {:.2}",
        observed.flows[0].interarrival_mean_s * 1e3,
        observed.flows[0]
            .arm_probs
            .values()
            .next()
            .map(|v| v[0])
            .unwrap_or(0.0),
    );

    // A glimpse of the generated CSIM-style code (Figure 5).
    let csim = SimGenerator.generate(server.program());
    println!("--- generated simulator source (excerpt) ---");
    for line in csim.lines().take(14) {
        println!("{line}");
    }
    println!("...");

    // 3. Predict latency under 4x the load for 1, 2, 4, 8 CPUs.
    println!();
    println!("prediction: mean response time at 4x observed load");
    let mut params = observed.clone();
    params.flows[0].interarrival_mean_s = observed.flows[0].interarrival_mean_s / 4.0;
    for cpus in [1usize, 2, 4, 8] {
        let report = FluxSimulation::new(
            server.program(),
            params.clone(),
            SimConfig {
                cpus,
                duration_s: 60.0,
                warmup_s: 5.0,
                seed: 1,
                exponential_service: false,
                poisson_arrivals: false,
                ..SimConfig::default()
            },
        )
        .run();
        println!(
            "  {cpus:>2} CPUs: {:>8.2} ms mean latency, {:>6.1} flows/s, {:>5.1}% CPU",
            report.mean_latency_s * 1e3,
            report.throughput,
            report.cpu_utilization * 100.0
        );
    }
    println!();
    println!("the contention collapse from 1 to 2 CPUs is exactly what Figure 6 shows.");
}
