//! Constraint-guided cluster placement (paper §8 future work).
//!
//! ```sh
//! cargo run --example cluster_placement
//! ```
//!
//! The paper proposes extending Flux to clusters: "because concurrency
//! constraints identify nodes that share state, we plan to use these
//! constraints to guide the placement of nodes across a cluster to
//! minimize communication." This example places the paper's image server
//! (Figure 2) and the BitTorrent peer (Figure 7) over 2-4 machines and
//! compares the constraint-guided partitioner against a constraint-blind
//! round-robin baseline.

use flux::core::model::ModelParams;
use flux::core::{place, round_robin, PlaceConfig};

fn study(name: &str, src: &str, tune: impl Fn(&flux::core::CompiledProgram, &mut ModelParams)) {
    let program = flux::core::compile(src).expect("program compiles");
    let mut params = ModelParams::uniform(&program, 0.001, 0.01);
    tune(&program, &mut params);

    println!("== {name} ==");
    for machines in [2usize, 3, 4] {
        let guided = place(
            &program,
            &params,
            &PlaceConfig {
                machines,
                ..PlaceConfig::default()
            },
        )
        .expect("guided placement");
        let rr = round_robin(&program, &params, machines).expect("baseline placement");
        println!(
            "{machines} machines: guided cut {:6.1}/s ({:4.1}%), remote locks {:6.1}/s | \
             round-robin cut {:6.1}/s ({:4.1}%), remote locks {:6.1}/s",
            guided.cut_rate,
            100.0 * guided.cut_fraction(),
            guided.remote_lock_rate,
            rr.cut_rate,
            100.0 * rr.cut_fraction(),
            rr.remote_lock_rate,
        );
        if machines == 2 {
            print!("{}", guided.render(&program));
        }
    }
    println!();
}

fn main() {
    // The image server: hits dominate (86% in the paper's Figure 6
    // calibration), Compress is the expensive node.
    study(
        "image server (Figure 2)",
        flux::core::fixtures::IMAGE_SERVER,
        |p, m| {
            m.set_dispatch_probs(p, "Handler", &[0.86, 0.14]);
            m.set_node_service(p, "Compress", 0.5);
        },
    );

    // The BitTorrent peer: the transfer path dominates traffic; the
    // request arm of HandleMessage carries most of the message mix
    // (roughly the §5.2 profile).
    study(
        "BitTorrent peer (Figure 7)",
        flux::servers::bt::FLUX_SRC,
        |p, m| {
            m.set_dispatch_probs(
                p,
                "HandleMessage",
                &[0.55, 0.15, 0.08, 0.05, 0.05, 0.04, 0.03, 0.03, 0.01, 0.01],
            );
        },
    );
}
