//! The §3.1.1 deadlock-avoidance walk-through: the compiler detects the
//! out-of-order nested acquisition, hoists the constraint, warns, and
//! the resulting server survives a two-sided lock storm that would
//! deadlock without the fix.
//!
//! ```sh
//! cargo run --example deadlock_avoidance
//! ```

use flux::core::fixtures::DEADLOCK_EXAMPLE;
use flux::runtime::{start, FluxServer, NodeOutcome, NodeRegistry, RuntimeKind, SourceOutcome};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn main() {
    println!("--- the paper's example ---");
    println!("{}", DEADLOCK_EXAMPLE.trim());
    println!();

    let program = flux::core::compile(DEADLOCK_EXAMPLE).expect("compiles");
    println!("compiler warnings:");
    for w in &program.warnings {
        println!("  {w}");
    }
    for name in ["A", "B", "C", "D"] {
        let (_, node) = program.graph.node(name).unwrap();
        let cs: Vec<String> = node.constraints.iter().map(|c| c.to_string()).collect();
        println!("  atomic {name}: {{{}}}", cs.join(", "));
    }
    println!();
    println!("C acquired only y in the source; the compiler added x so every");
    println!("flow locks in canonical (alphabetical) order — no deadlock is possible.");
    println!();

    // Now hammer both flows concurrently. Without the hoist, flows
    // through A (lock x then y) and through C (y then x) interleave into
    // a classic deadly embrace within seconds.
    let total = 2000u64;
    let mut reg: NodeRegistry<()> = NodeRegistry::new();
    for src in ["SrcA", "SrcC"] {
        let produced = AtomicU64::new(0);
        reg.source(src, move || {
            if produced.fetch_add(1, Ordering::SeqCst) >= total {
                SourceOutcome::Shutdown
            } else {
                SourceOutcome::New(())
            }
        });
    }
    for n in ["B", "D"] {
        reg.node(n, |_| {
            std::thread::yield_now();
            NodeOutcome::Ok
        });
    }
    let server = Arc::new(FluxServer::new(program, reg).expect("registry complete"));
    let t0 = std::time::Instant::now();
    let handle = start(server.clone(), RuntimeKind::ThreadPool { workers: 8 });
    handle.join();
    println!(
        "ran {} opposing-order flows on 8 workers in {:?} without deadlock.",
        server.stats.finished(),
        t0.elapsed()
    );
    assert_eq!(server.stats.finished(), total * 2);
}
