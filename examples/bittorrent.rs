//! The Flux BitTorrent peer end to end: a tracker, a Flux seeder
//! announcing to it, and leechers that discover the seeder through the
//! tracker and download the file — all over the in-memory transport.
//!
//! ```sh
//! cargo run --example bittorrent
//! ```

use flux::bittorrent::{synth_file, Metainfo, Tracker};
use flux::net::{Listener as _, MemNet};
use flux::runtime::RuntimeKind;
use std::sync::atomic::Ordering;
use std::time::Duration;

fn main() {
    let net = MemNet::new();

    // The shared file and its metainfo.
    let file = synth_file(512 * 1024, 2024);
    let meta = Metainfo::from_file("mem:tracker", "dataset.bin", 64 * 1024, &file);
    println!(
        "torrent: {} bytes, {} pieces of {} KiB, info-hash {}",
        meta.total_len,
        meta.num_pieces(),
        meta.piece_len / 1024,
        flux::bittorrent::sha1::to_hex(&meta.info_hash)
    );

    // A tracker serving announces.
    let tracker = Tracker::new();
    let tl = net.listen("tracker").unwrap();
    tl.set_accept_timeout(Some(Duration::from_millis(50)));
    let t2 = tracker.clone();
    let tracker_thread = std::thread::spawn(move || {
        for _ in 0..200 {
            if let Ok(mut conn) = tl.accept() {
                let _ = t2.serve_conn(&mut *conn);
            }
        }
    });

    // The Flux seeder (Figure 7's program), announcing periodically,
    // built through the one typed ServerBuilder.
    let net2 = net.clone();
    let server = flux::servers::ServerBuilder::new(flux::servers::bt::BtConfig {
        listener: Box::new(net.listen("seeder").unwrap()),
        meta: meta.clone(),
        file: file.clone(),
        tracker_dial: Some(Box::new(move || {
            net2.connect("tracker")
                .ok()
                .map(|c| Box::new(c) as Box<dyn flux::net::Conn>)
        })),
        peer_id: *b"-FX0001-exampleseed1",
        addr: "seeder".into(),
        tracker_period: Duration::from_millis(100),
        choke_period: Duration::from_millis(500),
        keepalive_period: Duration::from_secs(2),
    })
    .runtime(RuntimeKind::ThreadPool { workers: 6 })
    .spawn();

    // Wait until the seeder has announced itself.
    while server.ctx.announces.load(Ordering::Relaxed) == 0 {
        std::thread::sleep(Duration::from_millis(10));
    }
    println!("seeder announced to the tracker");

    // Leechers: discover the seeder via the tracker, then download.
    let mut joins = Vec::new();
    for i in 0..4u8 {
        let net = net.clone();
        let meta = meta.clone();
        let file = file.clone();
        joins.push(std::thread::spawn(move || {
            let mut peer_id = *b"-FX0001-leecher00000";
            peer_id[19] = b'0' + i;
            // Ask the tracker who has the file.
            let mut conn = net.connect("tracker").expect("tracker reachable");
            let resp = flux::bittorrent::announce(
                &mut conn,
                &flux::bittorrent::Announce {
                    info_hash: meta.info_hash,
                    peer_id,
                    addr: format!("leecher-{i}"),
                    left: meta.total_len as u64,
                },
            )
            .expect("announce");
            let seeder = resp
                .peers
                .iter()
                .find(|p| p.addr == "seeder")
                .expect("tracker lists the seeder");
            let conn = net.connect(&seeder.addr).expect("seeder reachable");
            let t0 = std::time::Instant::now();
            let got = flux::servers::bt::client::download(Box::new(conn), &meta, peer_id, Some(3))
                .expect("download");
            assert_eq!(got, file, "leecher {i} got the exact file");
            println!(
                "leecher {i}: {} KiB verified in {:?}",
                got.len() / 1024,
                t0.elapsed()
            );
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    println!(
        "seeder served {} blocks ({} KiB up), saw {} keep-alives",
        server.ctx.blocks_served.load(Ordering::Relaxed),
        server.ctx.bytes_up.load(Ordering::Relaxed) / 1024,
        server.ctx.keepalives_seen.load(Ordering::Relaxed),
    );
    flux::servers::bt::stop(server);
    drop(tracker_thread); // detached; process exit cleans it up
    println!("done.");
}
