//! The paper's flagship example (§2, Figure 2): the image-compression
//! server, serving real JPEGs over the in-memory transport, with cache
//! statistics and the program graph printed.
//!
//! ```sh
//! cargo run --example image_server
//! ```

use flux::image::jpeg_probe;
use flux::net::MemNet;
use flux::runtime::RuntimeKind;
use flux::servers::image::{CompressMode, ImageConfig, ImageSource};
use flux::servers::ServerBuilder;
use flux_core::codegen::{dot::DotGenerator, CodeGenerator};
use std::io::Write as _;
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn main() {
    // Show the compiled program first: Figure 2's graph.
    let program = flux::core::compile(flux::servers::image::FLUX_SRC).unwrap();
    println!(
        "compiled Figure 2: {} nodes, {} distinct paths",
        program.graph.nodes.len(),
        program.flows[0].paths.num_paths
    );
    for w in &program.warnings {
        println!("  {w}");
    }
    println!("--- program graph (DOT) ---");
    print!("{}", DotGenerator::default().generate(&program));
    println!("---------------------------");

    let net = MemNet::new();
    let listener = net.listen("image-server").unwrap();
    let server = ServerBuilder::new(ImageConfig {
        source: ImageSource::Net(Box::new(listener)),
        compress: CompressMode::Real { quality: 80 },
        images: 5,
        image_size: 128,
        cache_bytes: 2 * 1024 * 1024,
    })
    .runtime(RuntimeKind::ThreadPool { workers: 4 })
    .spawn();

    // Fetch every image at a few scales; repeats hit the cache.
    let mut total_bytes = 0usize;
    for round in 0..3 {
        for img in 0..5 {
            for scale in [2u32, 4, 8] {
                let mut conn = net.connect("image-server").unwrap();
                write!(
                    conn,
                    "GET /img{img}-{scale}.jpg HTTP/1.1\r\nConnection: close\r\n\r\n"
                )
                .unwrap();
                let (status, body) = flux::http::read_response(&mut conn).unwrap();
                assert_eq!(status, 200);
                let info = jpeg_probe(&body).expect("server returns valid JPEG");
                total_bytes += body.len();
                if round == 0 && scale == 8 {
                    println!(
                        "img{img} full size: {}x{} JPEG, {} bytes",
                        info.width,
                        info.height,
                        body.len()
                    );
                }
            }
        }
    }
    let cache = server.ctx.cache.lock();
    println!(
        "served {} requests, {} JPEG bytes; cache: {} hits, {} misses ({}% hit rate), {} evictions",
        server.ctx.served.load(Ordering::Relaxed),
        total_bytes,
        cache.hits,
        cache.misses,
        (cache.hit_ratio() * 100.0) as u32,
        cache.evictions,
    );
    drop(cache);

    let ctx = server.ctx.clone();
    flux::servers::image::stop(server);
    println!("done.");
    let _ = Arc::strong_count(&ctx);
}
