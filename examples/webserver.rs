//! The Flux web server over **real TCP**: static pages plus FluxScript
//! dynamic pages, exercised by an HTTP client over localhost.
//!
//! Construction goes through the one typed `ServerBuilder`: the spec
//! names the server (`WebSpec`), `.runtime(...)` picks the concurrency
//! substrate, and `NetConfig` decides the readiness backend — epoll on
//! Linux by default, `FLUX_POLLER=poll` for the portable fallback.
//!
//! ```sh
//! cargo run --example webserver           # self-test against localhost
//! PORT=8080 HOLD=1 cargo run --example webserver   # keep serving
//! FLUX_POLLER=poll cargo run --example webserver   # poll(2) backend
//! ```

use flux::http::DocRoot;
use flux::net::{Listener as _, NetConfig, TcpAcceptor, TcpConn};
use flux::runtime::{AdaptivePolicy, OverloadPolicy, RuntimeKind, ShardQueueKind};
use flux::servers::{web::WebSpec, ServerBuilder};
use std::io::Write as _;
use std::sync::atomic::Ordering;

fn docroot() -> DocRoot {
    let mut root = DocRoot::new();
    root.insert(
        "/index.html",
        "<html><body><h1>Flux web server</h1>\
         <p>Try <a href=\"/fib.fxs?n=20\">/fib.fxs?n=20</a></p></body></html>",
    );
    root.insert("/style.css", "body { font-family: sans-serif; }");
    root.insert(
        "/fib.fxs",
        "<?fx $a = 0; $b = 1; \
         for ($i = 0; $i < $n; $i = $i + 1) { $t = $a + $b; $a = $b; $b = $t; } \
         echo \"fib(\" . $n . \") = \" . $a; ?>",
    );
    root
}

fn main() {
    let port: u16 = std::env::var("PORT")
        .ok()
        .and_then(|p| p.parse().ok())
        .unwrap_or(0);
    let acceptor = TcpAcceptor::bind(&format!("127.0.0.1:{port}")).expect("bind");
    let addr = acceptor.local_addr();
    // One dispatcher shard per core (FLUX_SHARDS overrides); TCP
    // readiness comes from the single poll(2) reactor thread.
    let shards: usize = std::env::var("FLUX_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    // The builder's NetConfig picks the readiness backend (epoll on
    // Linux, FLUX_POLLER overrides), the per-connection write-buffer
    // bound and the Listen source's event-poll timeout.
    let net = NetConfig::default();
    // Adaptive shard scaling by default (FLUX_ADAPTIVE=0 opts out):
    // the controller parks idle dispatchers down to one and wakes them
    // within a sampling interval of a burst, so an idle server costs
    // one hot dispatcher no matter how many cores it was sized for.
    // (With a single shard — e.g. a 1-core host without FLUX_SHARDS —
    // one dispatcher is already the floor, so no controller runs and
    // the startup banner reports "static".)
    let adaptive = if std::env::var("FLUX_ADAPTIVE").as_deref() == Ok("0") {
        AdaptivePolicy::Static
    } else {
        AdaptivePolicy::adaptive()
    };
    let server = ServerBuilder::new(WebSpec::new(Box::new(acceptor), docroot()))
        .runtime(RuntimeKind::EventDriven {
            shards,
            io_workers: 4,
            adaptive,
            // Mutex/Condvar dispatch is still the default; FLUX_SHARD_QUEUE=ring
            // selects the lock-free MPSC ring at startup (see crate docs).
            queue: ShardQueueKind::Mutex,
            overload: OverloadPolicy::Unbounded,
        })
        .net(net)
        .spawn();
    let stats = &server.handle.server().stats;
    println!(
        "Flux web server (event-driven runtime, {shards} shard(s), {}, {} backend) on http://{addr}/",
        stats.adaptive.describe(),
        server.ctx.driver.poller_backend()
    );

    if std::env::var("HOLD").is_ok() {
        println!("serving until interrupted...");
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }

    // Self-test over the loopback.
    for (path, expect) in [
        ("/index.html", "Flux web server"),
        ("/fib.fxs?n=20", "fib(20) = 6765"),
        ("/style.css", "sans-serif"),
    ] {
        let mut conn = TcpConn::connect(&addr).expect("connect");
        write!(
            conn,
            "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let (status, body) = flux::http::read_response(&mut conn).expect("response");
        let text = String::from_utf8_lossy(&body);
        assert_eq!(status, 200, "{path}");
        assert!(text.contains(expect), "{path}: {text}");
        println!("GET {path} -> {status} ({} bytes)", body.len());
    }
    println!(
        "served {} requests over real TCP ({})",
        server.ctx.requests.load(Ordering::Relaxed),
        server.handle.server().stats.adaptive.describe(),
    );
    // Responses ride the reactor's non-blocking write path: every one
    // drains through the driver, hitting POLLOUT only when the socket
    // buffer fills.
    if let Some(net) = server.handle.server().stats.net_counters() {
        println!(
            "write path: {} submitted / {} drained, {} WouldBlock deferrals, {} accept retries",
            net.writes_submitted(),
            net.writes_drained(),
            net.write_would_block(),
            net.accept_retries(),
        );
    }
    flux::servers::web::stop(server);
}
