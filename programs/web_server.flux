    Listen () => (int token);
    ReadRequest (int token)
      => (int token, bool close, http_request *req);
    RunScript (int token, bool close, http_request *req)
      => (int token, bool close, http_response *resp);
    ReadFromDisk (int token, bool close, http_request *req)
      => (int token, bool close, http_response *resp);
    Write (int token, bool close, http_response *resp)
      => (int token, bool close);
    Complete (int token, bool close) => ();
    BadRequest (int token) => ();
    FourOhFour (int token, bool close, http_request *req) => ();
    FiveHundred (int token, bool close, http_request *req) => ();

    typedef script IsScript;

    source Listen => Page;
    Page = ReadRequest -> Handler -> Write -> Complete;
    Handler:[_, _, script] = RunScript;
    Handler:[_, _, _] = ReadFromDisk;

    handle error ReadRequest => BadRequest;
    handle error ReadFromDisk => FourOhFour;
    handle error RunScript => FiveHundred;

    blocking ReadRequest;
