    ReceiveMove () => (game_msg *m);
    AddPlayer (game_msg *m) => ();
    RemovePlayer (game_msg *m) => ();
    Validate (game_msg *m) => (game_msg *m);
    ApplyMove (game_msg *m) => ();
    BadMove (game_msg *m) => ();

    Tick () => (int tick);
    ComputeState (int tick) => (game_state *s);
    Broadcast (game_state *s) => ();

    typedef is_join IsJoin;
    typedef is_leave IsLeave;

    source ReceiveMove => MoveFlow;
    MoveFlow:[is_join] = AddPlayer;
    MoveFlow:[is_leave] = RemovePlayer;
    MoveFlow:[_] = Validate -> ApplyMove;

    source Tick => TickFlow;
    TickFlow = ComputeState -> Broadcast;

    handle error Validate => BadMove;

    atomic AddPlayer: {clients, world};
    atomic RemovePlayer: {clients, world};
    atomic ApplyMove: {world};
    atomic ComputeState: {world};
    atomic Broadcast: {clients?};

    blocking Broadcast;
