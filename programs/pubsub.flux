    Listen () => (int token, pubsub_cmd *cmd);
    Subscribe (int token, pubsub_cmd *cmd) => (int token, pubsub_cmd *cmd);
    Ack (int token, pubsub_cmd *cmd) => ();
    Aggregate (int token, pubsub_cmd *cmd) => (int token, pubsub_cmd *cmd);
    Fanout (int token, pubsub_cmd *cmd) => ();
    Drop (int token, pubsub_cmd *cmd) => ();

    typedef is_sub IsSub;
    typedef is_pub IsPub;

    source Listen => Cmd;
    Cmd:[_, is_sub] = Subscribe -> Ack;
    Cmd:[_, is_pub] = Aggregate -> Fanout;
    Cmd:[_, _] = Drop;

    handle error Subscribe => Drop;
    handle error Aggregate => Drop;

    atomic Subscribe: {topics(session)};
    atomic Aggregate: {topics(session)};
    atomic Fanout: {topics(session)};
