    Listen () => (int socket);
    ReadRequest (int socket)
      => (int socket, bool close, image_tag *request);
    CheckCache (int socket, bool close, image_tag *request)
      => (int socket, bool close, image_tag *request);
    ReadInFromDisk (int socket, bool close, image_tag *request)
      => (int socket, bool close, image_tag *request, __u8 *rgb_data);
    StoreInCache (int socket, bool close, image_tag *request)
      => (int socket, bool close, image_tag *request);
    Compress (int socket, bool close, image_tag *request, __u8 *rgb_data)
      => (int socket, bool close, image_tag *request);
    Write (int socket, bool close, image_tag *request)
      => (int socket, bool close, image_tag *request);
    Complete (int socket, bool close, image_tag *request) => ();
    FourOhFour (int socket, bool close, image_tag *request) => ();

    source Listen => Image;

    Image = ReadRequest -> CheckCache -> Handler -> Write -> Complete;

    typedef hit TestInCache;
    Handler:[_, _, hit] = ;
    Handler:[_, _, _] = ReadInFromDisk -> Compress -> StoreInCache;

    handle error ReadInFromDisk => FourOhFour;

    atomic CheckCache:{cache};
    atomic StoreInCache:{cache};
    atomic Complete:{cache};

    blocking ReadRequest;
    blocking Write;
