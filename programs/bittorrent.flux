    Listen () => (int token, bool isnew);
    GetClients (int token, bool isnew) => (int token, bool isnew);
    SelectSockets (int token, bool isnew) => (int token, bool isnew);
    CheckSockets (int token, bool isnew)
      => (int token, bool isnew, bt_message *msg);

    AcceptHandshake (int token, bool isnew, bt_message *msg)
      => (int token, bool isnew, bt_message *msg);
    SendBitfield (int token, bool isnew, bt_message *msg) => ();

    ReadMessage (int token, bool isnew, bt_message *msg)
      => (int token, bool isnew, bt_message *msg);
    Request (int token, bool isnew, bt_message *msg)
      => (int token, bool isnew, bt_message *msg);
    Piece (int token, bool isnew, bt_message *msg)
      => (int token, bool isnew, bt_message *msg);
    Have (int token, bool isnew, bt_message *msg)
      => (int token, bool isnew, bt_message *msg);
    Bitfield (int token, bool isnew, bt_message *msg)
      => (int token, bool isnew, bt_message *msg);
    Interested (int token, bool isnew, bt_message *msg)
      => (int token, bool isnew, bt_message *msg);
    Uninterested (int token, bool isnew, bt_message *msg)
      => (int token, bool isnew, bt_message *msg);
    Choke (int token, bool isnew, bt_message *msg)
      => (int token, bool isnew, bt_message *msg);
    Unchoke (int token, bool isnew, bt_message *msg)
      => (int token, bool isnew, bt_message *msg);
    Cancel (int token, bool isnew, bt_message *msg)
      => (int token, bool isnew, bt_message *msg);
    UnknownMessage (int token, bool isnew, bt_message *msg)
      => (int token, bool isnew, bt_message *msg);
    MessageDone (int token, bool isnew, bt_message *msg) => ();
    DropPeer (int token, bool isnew, bt_message *msg) => ();

    TrackerTimer () => (int tick);
    CheckinWithTracker (int tick) => (int tick);
    SendRequestToTracker (int tick) => (int tick, tracker_response *resp);
    GetTrackerResponse (int tick, tracker_response *resp) => ();

    ChokeTimer () => (int tick);
    UpdateChokeList (int tick) => (int tick);
    PickChoked (int tick) => (int tick);
    SendChokeUnchoke (int tick) => ();

    KeepAliveTimer () => (int tick);
    SendKeepAlives (int tick) => ();

    typedef is_request IsRequest;
    typedef is_piece IsPiece;
    typedef is_have IsHave;
    typedef is_bitfield IsBitfield;
    typedef is_interested IsInterested;
    typedef is_uninterested IsUninterested;
    typedef is_choke IsChoke;
    typedef is_unchoke IsUnchoke;
    typedef is_cancel IsCancel;
    typedef is_new IsNew;

    source Listen => Peer;
    Peer = GetClients -> SelectSockets -> CheckSockets -> Work;
    Work:[_, is_new, _] = AcceptHandshake -> SendBitfield;
    Work:[_, _, _] = Message;
    Message = ReadMessage -> HandleMessage -> MessageDone;
    HandleMessage:[_, _, is_request] = Request;
    HandleMessage:[_, _, is_piece] = Piece;
    HandleMessage:[_, _, is_have] = Have;
    HandleMessage:[_, _, is_bitfield] = Bitfield;
    HandleMessage:[_, _, is_interested] = Interested;
    HandleMessage:[_, _, is_uninterested] = Uninterested;
    HandleMessage:[_, _, is_choke] = Choke;
    HandleMessage:[_, _, is_unchoke] = Unchoke;
    HandleMessage:[_, _, is_cancel] = Cancel;
    HandleMessage:[_, _, _] = UnknownMessage;

    source TrackerTimer => Announce;
    Announce = CheckinWithTracker -> SendRequestToTracker -> GetTrackerResponse;

    source ChokeTimer => Choking;
    Choking = UpdateChokeList -> PickChoked -> SendChokeUnchoke;

    source KeepAliveTimer => KeepAlive;
    KeepAlive = SendKeepAlives;

    handle error ReadMessage => DropPeer;
    handle error AcceptHandshake => DropPeer;
    handle error UnknownMessage => DropPeer;

    atomic GetClients: {clients?};
    atomic AcceptHandshake: {clients};
    atomic DropPeer: {clients};
    atomic SendKeepAlives: {clients?};
    atomic SendChokeUnchoke: {clients?};
    atomic UpdateChokeList: {choking};
    atomic PickChoked: {choking};

    blocking CheckSockets;
    blocking ReadMessage;
    blocking SendRequestToTracker;
